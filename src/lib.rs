//! `pacer-suite`: umbrella package for the PACER reproduction workspace.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate [integration tests](../tests). It re-exports the workspace
//! crates under short names so examples read naturally.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use pacer_cli as cli;
pub use pacer_clock as clock;
pub use pacer_core as pacer;
pub use pacer_fasttrack as fasttrack;
pub use pacer_harness as harness;
pub use pacer_lang as lang;
pub use pacer_literace as literace;
pub use pacer_runtime as runtime;
pub use pacer_trace as trace;
pub use pacer_workloads as workloads;
