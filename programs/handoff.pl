// Monitor-based handoff with wait/notify: the consumer parks until the
// producer fills the slot. Race-free — and a case where the static
// lockset lint stays quiet because everything happens under `m`.
//
//   pacer run programs/handoff.pl --rate 1.0
//   pacer lint programs/handoff.pl

shared slot;
shared full;
lock m;

fn producer(value) {
    sync m {
        slot = value;
        full = 1;
        notifyall m;
    }
}

fn consumer() {
    let got = 0;
    sync m {
        while (full == 0) {
            wait m;
        }
        got = slot;
    }
    return got;
}

fn main() {
    let c1 = spawn consumer();
    let c2 = spawn consumer();
    let p = spawn producer(42);
    join p;
    join c1;
    join c2;
}
