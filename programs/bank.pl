// A classic lost-update bug: deposits race on `balance` because the
// developer forgot the lock on the fast path.
//
//   pacer run programs/bank.pl --detector fasttrack
//   pacer run programs/bank.pl --rate 0.05 --seed 7

shared balance;
shared audit_log;
lock ledger;

fn deposit_worker(id) {
    let i = 0;
    while (i < 400) {
        balance = balance + 1;            // BUG: unguarded read-modify-write
        sync ledger { audit_log = audit_log + 1; }
        i = i + 1;
    }
}

fn main() {
    let a = spawn deposit_worker(1);
    let b = spawn deposit_worker(2);
    let c = spawn deposit_worker(3);
    join a;
    join b;
    join c;
    return balance;                        // often < 1200
}
