// Correct volatile-flag publication: the producer fills a buffer, then
// sets `ready`; consumers spin on the flag. Race-free under every
// detector at every rate.
//
//   pacer run programs/producer_consumer.pl --rate 1.0

shared buffer[16];
volatile ready;

fn producer() {
    let i = 0;
    while (i < 16) {
        buffer[i] = i * i;
        i = i + 1;
    }
    ready = 1;                             // publishes everything above
}

fn consumer() {
    while (ready == 0) { }
    let sum = 0;
    let i = 0;
    while (i < 16) {
        sum = sum + buffer[i];
        i = i + 1;
    }
    return sum;
}

fn main() {
    let p = spawn producer();
    let c1 = spawn consumer();
    let c2 = spawn consumer();
    join p;
    join c1;
    join c2;
}
