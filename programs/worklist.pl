// A work-stealing-style loop with a subtle bug: the `claimed` counter is
// guarded, but the per-slot result writes collide when the modulus wraps.
//
//   pacer run programs/worklist.pl --detector pacer --rate 0.25 --seed 3
//   pacer check programs/worklist.pl

shared results[6];
shared claimed;
lock queue;

fn steal(id) {
    let mine = 0;
    while (mine < 30) {
        sync queue {
            mine = claimed;
            claimed = claimed + 1;
        }
        // BUG: 6 slots but up to 90 items — concurrent workers wrap onto
        // the same slot without holding the lock.
        results[mine % 6] = id * 1000 + mine;
        let scratch = new obj;             // thread-local: uninstrumented
        scratch.last = mine;
    }
}

fn main() {
    let a = spawn steal(1);
    let b = spawn steal(2);
    let c = spawn steal(3);
    join a;
    join b;
    join c;
}
