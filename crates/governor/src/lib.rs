//! Deterministic resource governor for sampling-based race detection.
//!
//! PACER's detection cost is proportional to the sampling rate `r` (paper
//! §3–§4), which makes `r` a natural control knob when a trial approaches a
//! resource budget: instead of aborting, the runtime can *step the rate down*
//! at the next GC boundary and keep running degraded, escalating to a clean
//! cooperative cancellation only when even the floor rate still breaches the
//! budget.
//!
//! This crate is the pure control-loop half of that story. It is entirely
//! integer-based — rates are expressed in **millionths** (`30_000` = 3%) and
//! budget comparisons use integer ratios — so governor decisions are
//! bit-for-bit reproducible across platforms and at any `--jobs N`. The
//! runtime half (polling budgets at GC boundaries and applying directives)
//! lives in `pacer-runtime`; this crate has no dependencies.
//!
//! Two budget kinds are understood:
//!
//! - **Memory** ([`BudgetKind::Mem`]): bytes of detector metadata (and, when
//!   a fault plan arms an injected heap budget, simulated heap bytes) versus
//!   a hard limit.
//! - **Deadline** ([`BudgetKind::Deadline`]): executed VM steps versus an
//!   event-count deadline — a deterministic stand-in for a wall-clock
//!   watchdog.
//!
//! The policy, evaluated once per GC boundary via [`Governor::on_boundary`]:
//!
//! 1. *Pressure* (usage ≥ 75% of the limit) steps the rate one rung down the
//!    configured ladder and arms a hysteresis cooldown.
//! 2. *Breach* (usage > limit) while already at the ladder floor cancels the
//!    trial cooperatively ([`Directive::Cancel`]); a breach above the floor
//!    just keeps stepping down.
//! 3. *Clear* (usage ≤ 50% of the limit on every armed budget) steps back up
//!    one rung, but only after `cooldown` consecutive clear boundaries — the
//!    hysteresis that prevents rate flapping around a threshold.
//!
//! Memory pressure takes priority over deadline pressure when both fire at
//! the same boundary.

/// One million, the fixed-point denominator for sampling rates.
pub const MILLION: u32 = 1_000_000;

/// Convert a floating-point sampling rate in `[0, 1]` to integer millionths.
pub fn millionths_from_rate(rate: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&rate),
        "sampling rate must be in [0, 1], got {rate}"
    );
    (rate * f64::from(MILLION)).round() as u32
}

/// Convert integer millionths back to a floating-point rate in `[0, 1]`.
pub fn rate_from_millionths(millionths: u32) -> f64 {
    assert!(
        millionths <= MILLION,
        "rate of {millionths} millionths > 1.0"
    );
    f64::from(millionths) / f64::from(MILLION)
}

/// Which budget a governor decision was made against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BudgetKind {
    /// Detector-metadata (and injected heap) byte budget.
    Mem,
    /// Event-count deadline (deterministic watchdog).
    Deadline,
}

impl BudgetKind {
    /// Stable lowercase name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::Mem => "mem",
            BudgetKind::Deadline => "deadline",
        }
    }
}

/// What the runtime should do at this GC boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Keep running at the current rate.
    None,
    /// Lower the sampling rate to `to` millionths before the next window.
    StepDown { to: u32 },
    /// Raise the sampling rate to `to` millionths before the next window.
    StepUp { to: u32 },
    /// Stop the trial cleanly: the floor rate still breaches `kind`.
    Cancel { kind: BudgetKind },
}

/// A governor decision worth reporting, in boundary order.
///
/// Notes are replayed into the observability registry after the run so that
/// `rate_stepped` / `budget_breach` trace events are journaled with the trial
/// and stay byte-identical under checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovernorNote {
    /// The sampling rate moved one rung (`up` = toward the starting rate).
    RateStepped {
        steps: u64,
        from: u32,
        to: u32,
        up: bool,
    },
    /// Usage exceeded the hard limit for `kind`.
    BudgetBreach {
        steps: u64,
        kind: BudgetKind,
        usage: u64,
        limit: u64,
    },
    /// The trial was cancelled cooperatively at the ladder floor.
    Cancelled { steps: u64, kind: BudgetKind },
}

/// Static governor configuration for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Hard limit on detector metadata bytes; `None` leaves memory ungoverned.
    pub mem_budget_bytes: Option<u64>,
    /// Hard limit on executed VM steps; `None` leaves the deadline ungoverned.
    pub deadline_events: Option<u64>,
    /// Descending sampling rates in millionths; `ladder[0]` is the starting
    /// rate, the last entry is the floor. Must be non-empty and strictly
    /// descending.
    pub ladder: Vec<u32>,
    /// Consecutive clear boundaries required before stepping back up.
    pub cooldown: u32,
}

/// Default hysteresis dwell: clear boundaries required before a step-up.
pub const DEFAULT_COOLDOWN: u32 = 4;

impl GovernorConfig {
    /// A governor over the default ladder for `rate` (r, r/2, r/4, r/8) with
    /// no budgets armed; callers set `mem_budget_bytes` / `deadline_events`.
    pub fn for_rate(rate: f64) -> Self {
        GovernorConfig {
            mem_budget_bytes: None,
            deadline_events: None,
            ladder: default_ladder(millionths_from_rate(rate)),
            cooldown: DEFAULT_COOLDOWN,
        }
    }

    /// True when at least one budget is set; an unarmed governor is never
    /// constructed by the runtime (a single `Option` branch skips it).
    pub fn armed(&self) -> bool {
        self.mem_budget_bytes.is_some() || self.deadline_events.is_some()
    }

    /// Validate the ladder shape; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.ladder.is_empty() {
            return Err("governor ladder must not be empty".to_string());
        }
        for w in self.ladder.windows(2) {
            if w[1] >= w[0] {
                return Err(format!(
                    "governor ladder must be strictly descending, got {} then {}",
                    w[0], w[1]
                ));
            }
        }
        if *self.ladder.last().unwrap() == 0 {
            return Err("governor ladder floor must be a nonzero rate".to_string());
        }
        if self.ladder[0] > MILLION {
            return Err(format!("ladder start {} millionths > 1.0", self.ladder[0]));
        }
        Ok(())
    }
}

/// The default four-rung ladder: r, r/2, r/4, r/8 (zero rungs dropped).
pub fn default_ladder(start_millionths: u32) -> Vec<u32> {
    let mut ladder = Vec::with_capacity(4);
    let mut rung = start_millionths;
    for _ in 0..4 {
        if rung == 0 {
            break;
        }
        if ladder.last() != Some(&rung) {
            ladder.push(rung);
        }
        rung /= 2;
    }
    if ladder.is_empty() {
        // A zero starting rate has nothing to govern; keep a single rung so
        // the ladder is well-formed (validate() still rejects a zero floor,
        // so armed configs must start above zero).
        ladder.push(start_millionths);
    }
    ladder
}

/// Parse a comma-separated rate ladder spec (e.g. `"0.03,0.01,0.003"`) into
/// strictly descending millionths.
pub fn parse_ladder(spec: &str) -> Result<Vec<u32>, String> {
    let mut ladder = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let rate: f64 = part
            .parse()
            .map_err(|_| format!("bad ladder rate '{part}'"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("ladder rate {rate} out of [0, 1]"));
        }
        ladder.push(millionths_from_rate(rate));
    }
    if ladder.is_empty() {
        return Err("empty rate ladder".to_string());
    }
    for w in ladder.windows(2) {
        if w[1] >= w[0] {
            return Err(format!(
                "ladder must be strictly descending, got {} then {} (millionths)",
                w[0], w[1]
            ));
        }
    }
    if *ladder.last().unwrap() == 0 {
        return Err("ladder floor must be nonzero".to_string());
    }
    Ok(ladder)
}

/// End-of-trial roll-up of governor activity, carried on the run outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GovernorSummary {
    /// Rate steps taken toward the floor.
    pub steps_down: u64,
    /// Rate steps taken back toward the starting rate.
    pub steps_up: u64,
    /// Hard-limit breaches observed (including the cancelling one).
    pub breaches: u64,
    /// Set when the trial was cancelled cooperatively at the floor.
    pub cancelled: Option<BudgetKind>,
    /// Rate in effect when the trial ended, in millionths.
    pub final_rate_millionths: u32,
    /// Decision log in boundary order, for trace-event replay.
    pub notes: Vec<GovernorNote>,
}

impl GovernorSummary {
    /// True when the governor changed the rate or cancelled the trial —
    /// i.e. the trial ran *degraded* rather than at its configured rate.
    pub fn degraded(&self) -> bool {
        self.steps_down > 0 || self.cancelled.is_some()
    }
}

/// Pressure classification of one `(usage, limit)` pair, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Pressure {
    /// usage ≤ limit/2: eligible for a step back up.
    Clear,
    /// Between the clear and pressure thresholds: hold the current rung.
    Neutral,
    /// usage ≥ 3·limit/4: step down at this boundary.
    High,
    /// usage > limit: cancel if already at the floor.
    Breach,
}

fn classify(usage: u64, limit: u64) -> Pressure {
    // Integer thresholds, overflow-safe via u128 widening: breach when
    // usage > limit, pressure at 75% (usage·4 ≥ limit·3), clear at 50%
    // (usage·2 ≤ limit).
    if usage > limit {
        Pressure::Breach
    } else if u128::from(usage) * 4 >= u128::from(limit) * 3 {
        Pressure::High
    } else if u128::from(usage) * 2 <= u128::from(limit) {
        Pressure::Clear
    } else {
        Pressure::Neutral
    }
}

/// The per-trial governor state machine.
#[derive(Debug, Clone)]
pub struct Governor {
    cfg: GovernorConfig,
    /// Index of the current rung in `cfg.ladder`.
    rung: usize,
    /// Clear boundaries still required before the next step-up.
    cooldown_left: u32,
    cancelled: Option<BudgetKind>,
    summary: GovernorSummary,
}

impl Governor {
    /// Build a governor; panics on a malformed ladder (callers validate CLI
    /// input with [`GovernorConfig::validate`] first).
    pub fn new(cfg: GovernorConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid governor config: {e}");
        }
        let start = cfg.ladder[0];
        let mut summary = GovernorSummary::default();
        summary.final_rate_millionths = start;
        Governor {
            cfg,
            rung: 0,
            cooldown_left: 0,
            cancelled: None,
            summary,
        }
    }

    /// Current sampling rate in millionths.
    pub fn rate_millionths(&self) -> u32 {
        self.cfg.ladder[self.rung]
    }

    /// The governed configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// True once a [`Directive::Cancel`] has been issued.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_some()
    }

    /// Evaluate budgets at a GC boundary. `mem` / `deadline` carry the
    /// `(usage, limit)` pair for each armed budget (`None` = unarmed).
    /// `steps` is the VM step count, recorded in notes for trace replay.
    pub fn on_boundary(
        &mut self,
        steps: u64,
        mem: Option<(u64, u64)>,
        deadline: Option<(u64, u64)>,
    ) -> Directive {
        if self.cancelled.is_some() {
            return Directive::None;
        }
        // Memory outranks deadline when both fire at the same boundary.
        let ranked = [(BudgetKind::Mem, mem), (BudgetKind::Deadline, deadline)];
        let mut worst = Pressure::Clear;
        let mut worst_kind = None;
        let mut worst_pair = (0u64, 0u64);
        for (kind, pair) in ranked {
            let Some((usage, limit)) = pair else { continue };
            let p = classify(usage, limit);
            if worst_kind.is_none() || p > worst {
                worst = p;
                worst_kind = Some(kind);
                worst_pair = (usage, limit);
            }
        }
        let Some(kind) = worst_kind else {
            return Directive::None; // nothing armed
        };
        let (usage, limit) = worst_pair;
        match worst {
            Pressure::Breach => {
                self.summary.breaches += 1;
                self.summary.notes.push(GovernorNote::BudgetBreach {
                    steps,
                    kind,
                    usage,
                    limit,
                });
                if self.rung + 1 == self.cfg.ladder.len() {
                    self.cancelled = Some(kind);
                    self.summary.cancelled = Some(kind);
                    self.summary
                        .notes
                        .push(GovernorNote::Cancelled { steps, kind });
                    Directive::Cancel { kind }
                } else {
                    self.step_down(steps)
                }
            }
            Pressure::High => {
                if self.rung + 1 == self.cfg.ladder.len() {
                    // Already at the floor and not breaching: hold.
                    Directive::None
                } else {
                    self.step_down(steps)
                }
            }
            Pressure::Neutral => Directive::None,
            Pressure::Clear => {
                if self.rung == 0 {
                    return Directive::None;
                }
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    return Directive::None;
                }
                let from = self.cfg.ladder[self.rung];
                self.rung -= 1;
                let to = self.cfg.ladder[self.rung];
                self.cooldown_left = self.cfg.cooldown;
                self.summary.steps_up += 1;
                self.summary.final_rate_millionths = to;
                self.summary.notes.push(GovernorNote::RateStepped {
                    steps,
                    from,
                    to,
                    up: true,
                });
                Directive::StepUp { to }
            }
        }
    }

    fn step_down(&mut self, steps: u64) -> Directive {
        let from = self.cfg.ladder[self.rung];
        self.rung += 1;
        let to = self.cfg.ladder[self.rung];
        self.cooldown_left = self.cfg.cooldown;
        self.summary.steps_down += 1;
        self.summary.final_rate_millionths = to;
        self.summary.notes.push(GovernorNote::RateStepped {
            steps,
            from,
            to,
            up: false,
        });
        Directive::StepDown { to }
    }

    /// Consume the governor and return the end-of-trial summary.
    pub fn into_summary(self) -> GovernorSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mem: Option<u64>, deadline: Option<u64>) -> GovernorConfig {
        GovernorConfig {
            mem_budget_bytes: mem,
            deadline_events: deadline,
            ladder: vec![30_000, 15_000, 7_500],
            cooldown: 2,
        }
    }

    #[test]
    fn millionths_round_trip() {
        assert_eq!(millionths_from_rate(0.03), 30_000);
        assert_eq!(millionths_from_rate(0.0), 0);
        assert_eq!(millionths_from_rate(1.0), MILLION);
        assert!((rate_from_millionths(30_000) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn default_ladder_halves_and_drops_zero() {
        assert_eq!(default_ladder(30_000), vec![30_000, 15_000, 7_500, 3_750]);
        assert_eq!(default_ladder(4), vec![4, 2, 1]);
        assert_eq!(default_ladder(1), vec![1]);
        assert_eq!(default_ladder(0), vec![0]);
    }

    #[test]
    fn parse_ladder_accepts_descending_rates() {
        assert_eq!(
            parse_ladder("0.03,0.01,0.003").unwrap(),
            vec![30_000, 10_000, 3_000]
        );
        assert!(parse_ladder("").is_err());
        assert!(parse_ladder("0.01,0.03").is_err());
        assert!(parse_ladder("0.01,0").is_err());
        assert!(parse_ladder("nope").is_err());
    }

    #[test]
    fn validate_rejects_malformed_ladders() {
        let mut c = cfg(Some(1000), None);
        assert!(c.validate().is_ok());
        c.ladder = vec![];
        assert!(c.validate().is_err());
        c.ladder = vec![10, 10];
        assert!(c.validate().is_err());
        c.ladder = vec![10, 0];
        assert!(c.validate().is_err());
    }

    #[test]
    fn pressure_steps_down_then_cancels_at_floor() {
        let mut g = Governor::new(cfg(Some(1000), None));
        // 75% of budget: step down twice to the floor.
        assert_eq!(
            g.on_boundary(10, Some((750, 1000)), None),
            Directive::StepDown { to: 15_000 }
        );
        assert_eq!(
            g.on_boundary(20, Some((800, 1000)), None),
            Directive::StepDown { to: 7_500 }
        );
        // Still under the limit at the floor: hold.
        assert_eq!(g.on_boundary(30, Some((900, 1000)), None), Directive::None);
        // Breach at the floor: cancel.
        assert_eq!(
            g.on_boundary(40, Some((1001, 1000)), None),
            Directive::Cancel {
                kind: BudgetKind::Mem
            }
        );
        assert!(g.is_cancelled());
        let s = g.into_summary();
        assert_eq!(s.steps_down, 2);
        assert_eq!(s.breaches, 1);
        assert_eq!(s.cancelled, Some(BudgetKind::Mem));
        assert_eq!(s.final_rate_millionths, 7_500);
        assert!(s.degraded());
    }

    #[test]
    fn breach_above_floor_steps_down_instead_of_cancelling() {
        let mut g = Governor::new(cfg(Some(100), None));
        assert_eq!(
            g.on_boundary(1, Some((150, 100)), None),
            Directive::StepDown { to: 15_000 }
        );
        assert!(!g.is_cancelled());
        let s = g.into_summary();
        assert_eq!(s.breaches, 1);
        assert_eq!(s.steps_down, 1);
    }

    #[test]
    fn hysteresis_requires_consecutive_clear_boundaries() {
        let mut g = Governor::new(cfg(Some(1000), None));
        assert_eq!(
            g.on_boundary(1, Some((800, 1000)), None),
            Directive::StepDown { to: 15_000 }
        );
        // cooldown = 2: two clear boundaries burn the dwell, third steps up.
        assert_eq!(g.on_boundary(2, Some((100, 1000)), None), Directive::None);
        assert_eq!(g.on_boundary(3, Some((100, 1000)), None), Directive::None);
        assert_eq!(
            g.on_boundary(4, Some((100, 1000)), None),
            Directive::StepUp { to: 30_000 }
        );
        // Back at the top: clear boundaries are a no-op.
        assert_eq!(g.on_boundary(5, Some((0, 1000)), None), Directive::None);
        let s = g.into_summary();
        assert_eq!(s.steps_down, 1);
        assert_eq!(s.steps_up, 1);
        assert_eq!(s.final_rate_millionths, 30_000);
        assert!(s.degraded());
    }

    #[test]
    fn neutral_band_holds_rate_and_preserves_cooldown() {
        let mut g = Governor::new(cfg(Some(1000), None));
        assert_eq!(
            g.on_boundary(1, Some((760, 1000)), None),
            Directive::StepDown { to: 15_000 }
        );
        // 60% is between clear (50%) and pressure (75%): hold, keep cooldown.
        assert_eq!(g.on_boundary(2, Some((600, 1000)), None), Directive::None);
        assert_eq!(g.on_boundary(3, Some((500, 1000)), None), Directive::None);
        assert_eq!(g.on_boundary(4, Some((500, 1000)), None), Directive::None);
        assert_eq!(
            g.on_boundary(5, Some((500, 1000)), None),
            Directive::StepUp { to: 30_000 }
        );
    }

    #[test]
    fn mem_outranks_deadline_on_simultaneous_breach() {
        let mut g = Governor::new(GovernorConfig {
            mem_budget_bytes: Some(100),
            deadline_events: Some(100),
            ladder: vec![30_000],
            cooldown: 0,
        });
        assert_eq!(
            g.on_boundary(1, Some((200, 100)), Some((200, 100))),
            Directive::Cancel {
                kind: BudgetKind::Mem
            }
        );
    }

    #[test]
    fn deadline_alone_governs_when_mem_unarmed() {
        let mut g = Governor::new(cfg(None, Some(1000)));
        assert_eq!(
            g.on_boundary(750, None, Some((750, 1000))),
            Directive::StepDown { to: 15_000 }
        );
        assert_eq!(
            g.on_boundary(800, None, Some((800, 1000))),
            Directive::StepDown { to: 7_500 }
        );
        assert_eq!(
            g.on_boundary(1100, None, Some((1100, 1000))),
            Directive::Cancel {
                kind: BudgetKind::Deadline
            }
        );
    }

    #[test]
    fn cancelled_governor_ignores_further_boundaries() {
        let mut g = Governor::new(GovernorConfig {
            mem_budget_bytes: Some(10),
            deadline_events: None,
            ladder: vec![30_000],
            cooldown: 0,
        });
        assert_eq!(
            g.on_boundary(1, Some((20, 10)), None),
            Directive::Cancel {
                kind: BudgetKind::Mem
            }
        );
        assert_eq!(g.on_boundary(2, Some((20, 10)), None), Directive::None);
        assert_eq!(g.into_summary().breaches, 1);
    }

    #[test]
    fn nothing_armed_is_a_no_op() {
        let mut g = Governor::new(cfg(None, None));
        assert!(!g.config().armed());
        assert_eq!(g.on_boundary(1, None, None), Directive::None);
        let s = g.into_summary();
        assert!(!s.degraded());
        assert_eq!(s.final_rate_millionths, 30_000);
    }

    #[test]
    fn notes_record_every_decision_in_order() {
        let mut g = Governor::new(GovernorConfig {
            mem_budget_bytes: Some(100),
            deadline_events: None,
            ladder: vec![20_000, 10_000],
            cooldown: 0,
        });
        g.on_boundary(5, Some((80, 100)), None);
        g.on_boundary(9, Some((120, 100)), None);
        let s = g.into_summary();
        assert_eq!(
            s.notes,
            vec![
                GovernorNote::RateStepped {
                    steps: 5,
                    from: 20_000,
                    to: 10_000,
                    up: false
                },
                GovernorNote::BudgetBreach {
                    steps: 9,
                    kind: BudgetKind::Mem,
                    usage: 120,
                    limit: 100
                },
                GovernorNote::Cancelled {
                    steps: 9,
                    kind: BudgetKind::Mem
                },
            ]
        );
    }
}
