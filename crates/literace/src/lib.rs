//! An online implementation of LITERACE, the code-sampling baseline.
//!
//! LITERACE (Marino, Musuvathi, Narayanasamy, PLDI 2009) lowers race
//! detection overhead with a *cold-region hypothesis* heuristic: most races
//! occur in cold code, so it samples each code region at a rate inversely
//! proportional to how often that region executes — from 100% for a cold
//! region down to a floor of 0.1% for hot ones — using per-thread, bursty
//! sampling. Synchronization operations are always fully instrumented so no
//! happens-before edges are lost (§2.3, §5.3 of the PACER paper).
//!
//! Because it samples *code* rather than *data*:
//!
//! * there is no proportionality guarantee — a race between two hot
//!   accesses is caught with probability ≈ 0.1%² = one in a million;
//! * metadata is never discarded, so space overhead is proportional to the
//!   data touched, not to the sampling rate (Figure 10);
//! * an online version still pays `O(n)` at every synchronization
//!   operation.
//!
//! Following §5.3, this implementation adds randomness when resetting the
//! sampling counter (the original is deterministic) so repeated trials can
//! catch different races, and uses a configurable burst length (the paper
//! uses 1,000 for most benchmarks).
//!
//! # Examples
//!
//! ```
//! use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
//! use pacer_trace::{Detector, Trace};
//!
//! let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2")?;
//! let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), 42);
//! d.run(&trace);
//! assert_eq!(d.races().len(), 1, "cold code starts at a 100% rate");
//! # Ok::<(), pacer_trace::ParseTraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pacer_collections::IdMap;
use pacer_prng::Rng;

use pacer_clock::ThreadId;
use pacer_fasttrack::FastTrackDetector;
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_trace::{Action, Detector, RaceReport};

/// Tuning parameters for the adaptive bursty sampler.
#[derive(Clone, Copy, Debug)]
pub struct LiteRaceConfig {
    /// Accesses analyzed per burst. §5.3 initially used 10, then switched
    /// to 1,000 to reach ≈1% effective rates.
    pub burst_length: u64,
    /// Floor of the per-region sampling rate (0.001 = 0.1% in the papers).
    pub min_rate: f64,
    /// Multiplier applied to a region's rate after each completed burst.
    pub decay: f64,
    /// Sites per code region — the "method" granularity. The lang crate
    /// pads site ids to 64 at function boundaries, so the default of 64
    /// makes regions coincide exactly with functions.
    pub sites_per_region: u32,
}

impl Default for LiteRaceConfig {
    fn default() -> Self {
        LiteRaceConfig {
            burst_length: 1000,
            min_rate: 0.001,
            decay: 0.5,
            sites_per_region: 64,
        }
    }
}

#[derive(Clone, Debug)]
struct RegionState {
    rate: f64,
    /// Accesses left in the current burst (analyzing while > 0).
    burst_left: u64,
    /// Accesses to skip before the next burst (when burst_left == 0).
    skip_left: u64,
}

/// The online LITERACE detector: a FASTTRACK backend fed through an
/// adaptive, per-(region × thread), bursty code sampler.
#[derive(Clone, Debug)]
pub struct LiteRaceDetector {
    config: LiteRaceConfig,
    backend: FastTrackDetector,
    /// Per-region, per-thread bursty sampler state, slab-indexed by the
    /// dense region id and then by thread.
    regions: IdMap<u32, IdMap<ThreadId, RegionState>>,
    rng: Rng,
    analyzed_accesses: u64,
    total_accesses: u64,
    /// Governor cap on the admission fraction, in millionths. LITERACE
    /// samples internally (the runtime's GC sampler cannot throttle it), so
    /// the resource governor delivers rate steps here; `MILLION` = no cap.
    throttle_millionths: u32,
    /// Bresenham-style accumulator implementing the cap without RNG, so
    /// governed runs stay deterministic for a given action sequence.
    admit_acc: u64,
}

/// One million — the fixed-point scale for governed admission caps.
const MILLION: u64 = 1_000_000;

impl LiteRaceDetector {
    /// Creates a detector; `seed` randomizes burst resets across trials.
    pub fn new(config: LiteRaceConfig, seed: u64) -> Self {
        LiteRaceDetector {
            config,
            backend: FastTrackDetector::new(),
            regions: IdMap::new(),
            rng: Rng::seed_from_u64(seed),
            analyzed_accesses: 0,
            total_accesses: 0,
            throttle_millionths: MILLION as u32,
            admit_acc: 0,
        }
    }

    /// Fraction of data accesses actually analyzed (the effective sampling
    /// rate §5.3 reports, e.g. 1.1% for eclipse with burst length 1,000).
    ///
    /// Returns `None` before the first access.
    pub fn effective_rate(&self) -> Option<f64> {
        (self.total_accesses > 0)
            .then(|| self.analyzed_accesses as f64 / self.total_accesses as f64)
    }

    /// Live metadata footprint in machine words. LITERACE never discards
    /// metadata, so this grows with the data the program touches.
    pub fn footprint_words(&self) -> usize {
        self.space_breakdown().total_words() as usize
    }

    /// Decides whether this access is analyzed, advancing the region's
    /// bursty counter.
    fn sample(&mut self, region: u32, t: ThreadId) -> bool {
        let cfg = self.config;
        let state = self
            .regions
            .get_or_insert_with(region, IdMap::new)
            .get_or_insert_with(t, || RegionState {
                rate: 1.0,
                burst_left: cfg.burst_length,
                skip_left: 0,
            });
        if state.burst_left > 0 {
            state.burst_left -= 1;
            if state.burst_left == 0 {
                // Burst over: decay the rate and schedule the skip phase,
                // with randomness in the reset (§5.3).
                state.rate = (state.rate * cfg.decay).max(cfg.min_rate);
                let skip = cfg.burst_length as f64 * (1.0 - state.rate) / state.rate;
                let jitter = self.rng.gen_range(0.5..1.5);
                state.skip_left = (skip * jitter).round() as u64;
            }
            true
        } else if state.skip_left > 1 {
            state.skip_left -= 1;
            false
        } else {
            // Skip phase over: start the next burst (this access begins it).
            state.burst_left = cfg.burst_length.saturating_sub(1);
            if state.burst_left == 0 {
                state.skip_left = 1; // degenerate burst length 1
            }
            true
        }
    }

    /// Applies the governor's admission cap to an access the bursty
    /// sampler already admitted: admit `throttle_millionths / MILLION` of
    /// them, evenly spaced by an error accumulator.
    fn admit_throttled(&mut self) -> bool {
        if u64::from(self.throttle_millionths) >= MILLION {
            return true;
        }
        self.admit_acc += u64::from(self.throttle_millionths);
        if self.admit_acc >= MILLION {
            self.admit_acc -= MILLION;
            true
        } else {
            false
        }
    }
}

impl Detector for LiteRaceDetector {
    fn name(&self) -> String {
        format!("literace(burst={})", self.config.burst_length)
    }

    fn on_action(&mut self, action: &Action) {
        match *action {
            Action::Read { t, site, .. } | Action::Write { t, site, .. } => {
                self.total_accesses += 1;
                let region = site.raw() / self.config.sites_per_region.max(1);
                if self.sample(region, t) && self.admit_throttled() {
                    self.analyzed_accesses += 1;
                    self.backend.on_action(action);
                }
            }
            // LITERACE ignores PACER's global sampling periods.
            Action::SampleBegin | Action::SampleEnd => {}
            // All synchronization is fully instrumented.
            _ => self.backend.on_action(action),
        }
    }

    fn races(&self) -> &[RaceReport] {
        self.backend.races()
    }
}

impl ObservableDetector for LiteRaceDetector {
    fn space_breakdown(&self) -> SpaceBreakdown {
        let mut b = self.backend.space_breakdown();
        // Per-(region × thread) bursty sampler state, 3 words each — cost
        // unique to code sampling, charged as "other".
        let samplers: usize = self.regions.values().map(IdMap::len).sum();
        b.other_words += 3 * samplers as u64;
        b
    }

    fn on_rate_change(&mut self, rate_millionths: u32) {
        self.throttle_millionths = rate_millionths.min(MILLION as u32);
    }

    fn clock_overflow(&self) -> Option<ThreadId> {
        self.backend.clock_overflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::{SiteId, Trace, VarId};

    fn wr(t: u32, x: u32, s: u32) -> Action {
        Action::Write {
            t: ThreadId::new(t),
            x: VarId::new(x),
            site: SiteId::new(s),
        }
    }

    #[test]
    fn cold_code_is_fully_analyzed() {
        let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\nrd t1 x0 s2").unwrap();
        let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), 0);
        d.run(&trace);
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.effective_rate(), Some(1.0));
    }

    #[test]
    fn hot_code_rate_decays_toward_floor() {
        let cfg = LiteRaceConfig {
            burst_length: 10,
            min_rate: 0.001,
            decay: 0.5,
            sites_per_region: 16,
        };
        let mut d = LiteRaceDetector::new(cfg, 1);
        // Hammer a single region from one thread.
        for _ in 0..200_000 {
            d.on_action(&wr(0, 0, 1));
        }
        let rate = d.effective_rate().unwrap();
        assert!(
            rate < 0.05,
            "hot region should be sampled rarely, got {rate}"
        );
        let region = d.regions.get(0).unwrap().get(ThreadId::new(0)).unwrap();
        assert!(region.rate <= 0.002, "rate decayed to the floor");
    }

    #[test]
    fn hot_hot_races_are_usually_missed() {
        // Two hot accesses racing: after warmup, the chance either side is
        // sampled is tiny — this is the failure mode PACER fixes (Fig. 6).
        let cfg = LiteRaceConfig {
            burst_length: 10,
            ..LiteRaceConfig::default()
        };
        let mut missed = 0;
        for seed in 0..10 {
            let mut d = LiteRaceDetector::new(cfg, seed);
            d.on_action(&Action::Fork {
                t: ThreadId::new(0),
                u: ThreadId::new(1),
            });
            // Warm both (region, thread) pairs on disjoint variables.
            for i in 0..50_000 {
                d.on_action(&wr(0, 1 + (i % 8), 1));
                d.on_action(&wr(1, 9 + (i % 8), 2));
            }
            // The actual racy pair, once, in the now-hot regions.
            d.on_action(&wr(0, 0, 1));
            d.on_action(&wr(1, 0, 2));
            if d.races().is_empty() {
                missed += 1;
            }
        }
        assert!(missed >= 8, "expected hot races mostly missed, {missed}/10");
    }

    #[test]
    fn sync_is_never_sampled_no_false_positives() {
        // Heavy lock traffic keeps accesses ordered; even with hot regions
        // the detector must not report false races.
        let mut text = String::from("fork t0 t1\n");
        for i in 0..500 {
            let t = i % 2;
            text.push_str(&format!("acq t{t} m0\nwr t{t} x0 s1\nrel t{t} m0\n"));
        }
        let trace = Trace::parse(&text).unwrap();
        let mut d = LiteRaceDetector::new(
            LiteRaceConfig {
                burst_length: 5,
                ..LiteRaceConfig::default()
            },
            3,
        );
        d.run(&trace);
        assert!(d.races().is_empty());
    }

    #[test]
    fn per_thread_region_states_are_independent() {
        let cfg = LiteRaceConfig {
            burst_length: 10,
            ..LiteRaceConfig::default()
        };
        let mut d = LiteRaceDetector::new(cfg, 0);
        d.on_action(&Action::Fork {
            t: ThreadId::new(0),
            u: ThreadId::new(1),
        });
        for _ in 0..10_000 {
            d.on_action(&wr(0, 1, 1)); // heat t0's copy of the region
        }
        // t1's first access to the same region is still cold → analyzed.
        let analyzed_before = d.analyzed_accesses;
        d.on_action(&wr(1, 2, 1));
        assert_eq!(d.analyzed_accesses, analyzed_before + 1);
    }

    #[test]
    fn footprint_grows_with_data_not_rate() {
        let cfg = LiteRaceConfig {
            burst_length: 10,
            ..LiteRaceConfig::default()
        };
        let mut d = LiteRaceDetector::new(cfg, 0);
        d.on_action(&Action::Fork {
            t: ThreadId::new(0),
            u: ThreadId::new(1),
        });
        // Reads from two threads inflate read maps; nothing is ever freed.
        for i in 0..1000u32 {
            d.on_action(&Action::Read {
                t: ThreadId::new(0),
                x: VarId::new(i),
                site: SiteId::new(1),
            });
            d.on_action(&Action::Read {
                t: ThreadId::new(1),
                x: VarId::new(i),
                site: SiteId::new(2),
            });
        }
        // Even with deeply decayed sampling, every analyzed access leaves
        // permanent metadata; dozens of distinct variables stay tracked.
        assert!(
            d.footprint_words() > 100,
            "space scales with touched data: {}",
            d.footprint_words()
        );
        let tracked = d.backend.tracked_vars();
        assert!(
            tracked > 20,
            "many variables permanently tracked: {tracked}"
        );
    }

    #[test]
    fn effective_rate_none_before_accesses() {
        let d = LiteRaceDetector::new(LiteRaceConfig::default(), 0);
        assert_eq!(d.effective_rate(), None);
        assert!(d.name().contains("literace"));
    }

    #[test]
    fn governor_throttle_decimates_admissions_deterministically() {
        let mk = || {
            let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), 7);
            // Cold region: the bursty sampler admits everything, so the
            // throttle alone controls the admitted fraction.
            for i in 0..1000u32 {
                d.on_action(&wr(0, i, 1));
            }
            d
        };
        let full = mk();
        assert_eq!(full.analyzed_accesses, 1000);

        let mut quarter = LiteRaceDetector::new(LiteRaceConfig::default(), 7);
        quarter.on_rate_change(250_000);
        for i in 0..1000u32 {
            quarter.on_action(&wr(0, i, 1));
        }
        assert_eq!(quarter.analyzed_accesses, 250, "evenly spaced 25% cap");
        assert_eq!(quarter.total_accesses, 1000);
        assert_eq!(quarter.effective_rate(), Some(0.25));

        // Stepping back up to the full rate removes the cap.
        let mut restored = LiteRaceDetector::new(LiteRaceConfig::default(), 7);
        restored.on_rate_change(250_000);
        restored.on_rate_change(1_000_000);
        for i in 0..1000u32 {
            restored.on_action(&wr(0, i, 1));
        }
        assert_eq!(restored.analyzed_accesses, 1000);
    }

    #[test]
    fn clock_overflow_delegates_to_backend() {
        let d = LiteRaceDetector::new(LiteRaceConfig::default(), 0);
        assert_eq!(d.clock_overflow(), None);
    }

    #[test]
    fn markers_are_ignored() {
        let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), 0);
        d.on_action(&Action::SampleBegin);
        d.on_action(&Action::SampleEnd);
        assert_eq!(d.total_accesses, 0);
    }
}
