//! The regression-corpus file format: one minimized reproducer per file.
//!
//! A corpus entry is a plain `pacer-lang` source file whose leading `//`
//! comments carry the replay metadata — the seed that reproduces the
//! schedule and, for the record, the violations the program originally
//! triggered. Because the lexer skips comments, the whole file parses
//! directly as a program; [`parse`] just also extracts the seed header.
//!
//! Entries live in `tests/corpus/*.pacer` at the workspace root and are
//! replayed by `tests/corpus.rs` on every CI run (see FUZZING.md for the
//! workflow, including how to regenerate them).

use std::fmt::Write as _;

use pacer_lang::ast::Program;

/// Serializes one reproducer: metadata headers plus the canonical program.
pub fn render(seed: u64, violations: &[String], program: &Program) -> String {
    let mut out = String::new();
    out.push_str("// pacer-fuzz reproducer — replayed by tests/corpus.rs\n");
    let _ = writeln!(out, "// seed: {seed}");
    for v in violations {
        // Violation strings are single-line by construction (oracle.rs).
        let _ = writeln!(out, "// violation: {}", v.replace('\n', " "));
    }
    out.push('\n');
    out.push_str(&pacer_lang::print(program));
    out
}

/// Parses a corpus entry back into its seed and program.
///
/// # Errors
///
/// Returns a message if the `// seed: N` header is missing or malformed,
/// or if the program body does not parse.
pub fn parse(source: &str) -> Result<(u64, Program), String> {
    let seed = source
        .lines()
        .find_map(|l| l.trim().strip_prefix("// seed:"))
        .ok_or("missing `// seed: N` header")?
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("malformed seed header: {e}"))?;
    let program = pacer_lang::parse(source).map_err(|e| format!("program does not parse: {e}"))?;
    Ok((seed, program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn render_parse_round_trips() {
        let program = generate(11, &GenConfig::default());
        let text = render(
            11,
            &["seed 1 rate 0.5: something went wrong".to_string()],
            &program,
        );
        assert!(text.starts_with("// pacer-fuzz reproducer"));
        let (seed, back) = parse(&text).unwrap();
        assert_eq!(seed, 11);
        assert_eq!(pacer_lang::print(&back), pacer_lang::print(&program));
    }

    #[test]
    fn parse_rejects_missing_or_bad_headers() {
        assert!(parse("fn main() { }").is_err(), "no seed header");
        assert!(parse("// seed: banana\nfn main() { }").is_err());
        assert!(parse("// seed: 3\nfn main() { oops").is_err());
    }

    #[test]
    fn parse_survives_truncated_and_bit_flipped_entries() {
        // A corpus file that arrives damaged (partial download, disk
        // corruption) must produce a structured error, never a panic.
        let program = generate(11, &GenConfig::default());
        let good = render(11, &["seed 1 rate 0.5: boom".to_string()], &program);
        for cut in 0..good.len() {
            if !good.is_char_boundary(cut) {
                continue;
            }
            let _ = parse(&good[..cut]); // Ok or Err, never a panic
        }
        let bytes = good.as_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x20;
            if let Ok(text) = String::from_utf8(flipped) {
                let _ = parse(&text);
            }
        }
    }
}
