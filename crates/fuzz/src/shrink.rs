//! Delta-debugging minimization of failing programs.
//!
//! The shrinker greedily applies the smallest-first sequence of structural
//! edits that keeps the caller's predicate failing: drop whole functions
//! and declarations, delete statement chunks (ddmin-style sizes 8, 4, 2,
//! 1) from every body — including bodies nested inside `if`/`while`/`sync`
//! — and flatten compound statements into their contents. After every
//! accepted edit it restarts, so the result is a local minimum: no single
//! remaining edit preserves the failure.
//!
//! Edits that break the program (say, deleting a `spawn` while its `join`
//! remains) are harmless: the predicate is expected to reject programs
//! that no longer compile, so such candidates are simply not taken.
//!
//! Everything is deterministic — candidate order is a pure function of the
//! program — so a shrink of the same failure always lands on the same
//! reproducer.

use pacer_lang::ast::{Function, Program, Stmt};

use crate::oracle::{check_program, OracleConfig};

/// How hard the shrinker worked, for fuzzing reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate programs tested against the predicate.
    pub attempts: u64,
    /// Candidates accepted (each strictly smaller than its predecessor).
    pub successes: u64,
}

/// A path to one (possibly nested) statement body inside a function:
/// each step selects a statement index and a branch within it
/// (0 = `then`/`sync`/`while` body, 1 = `else`).
type BodyPath = Vec<(usize, u8)>;

/// Minimizes `program` while `still_fails` keeps returning `true`.
///
/// The caller guarantees `still_fails(program)` holds on entry; the
/// predicate must treat non-compiling candidates as *not* failing.
pub fn shrink(
    program: &Program,
    mut still_fails: impl FnMut(&Program) -> bool,
) -> (Program, ShrinkStats) {
    let mut best = program.clone();
    let mut stats = ShrinkStats::default();
    let mut progress = true;
    while progress {
        progress = false;
        for candidate in candidates(&best) {
            stats.attempts += 1;
            if still_fails(&candidate) {
                stats.successes += 1;
                best = candidate;
                progress = true;
                break;
            }
        }
    }
    (best, stats)
}

/// Minimizes a program that fails the differential oracle, using "compiles
/// and still produces at least one oracle violation" as the predicate.
pub fn shrink_failure(
    program: &Program,
    base_seed: u64,
    cfg: &OracleConfig,
) -> (Program, ShrinkStats) {
    shrink(program, |p| {
        pacer_lang::compile(p).is_ok() && !check_program(p, base_seed, cfg).violations.is_empty()
    })
}

/// Total number of `Stmt` nodes in the program, nested ones included.
pub fn stmt_count(program: &Program) -> usize {
    fn count(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| {
                1 + match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } | Stmt::Sync { body, .. } => count(body),
                    _ => 0,
                }
            })
            .sum()
    }
    program.functions.iter().map(|f| count(&f.body)).sum()
}

/// All single-edit reductions of `program`, coarsest first.
fn candidates(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // Whole functions (main must stay: it is the entry point).
    for i in 0..program.functions.len() {
        if program.functions[i].name != "main" {
            let mut c = program.clone();
            c.functions.remove(i);
            out.push(c);
        }
    }
    // Declarations. Unused ones are free wins; used ones fail to compile
    // and are rejected by the predicate.
    for i in 0..program.shareds.len() {
        let mut c = program.clone();
        c.shareds.remove(i);
        out.push(c);
    }
    for i in 0..program.locks.len() {
        let mut c = program.clone();
        c.locks.remove(i);
        out.push(c);
    }
    for i in 0..program.volatiles.len() {
        let mut c = program.clone();
        c.volatiles.remove(i);
        out.push(c);
    }

    for (fi, f) in program.functions.iter().enumerate() {
        for path in body_paths(f) {
            let len = subbody(&f.body, &path).map_or(0, <[Stmt]>::len);
            // ddmin-style chunk deletion, large chunks first.
            for &size in &[8usize, 4, 2, 1] {
                if size > len || (size > 1 && size == len && path.is_empty()) {
                    // Never propose emptying `main` wholesale; single-stmt
                    // deletions can still get there if the failure allows.
                    continue;
                }
                let mut start = 0;
                while start + size <= len {
                    out.push(edit_body(program, fi, &path, |body| {
                        body.drain(start..start + size);
                    }));
                    start += size;
                }
            }
            // Structure flattening: replace a compound statement with its
            // contents (and separately, drop an `else` branch).
            for i in 0..len {
                match &subbody(&f.body, &path).unwrap()[i] {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        let inner = then_branch.clone();
                        out.push(edit_body(program, fi, &path, |body| {
                            body.splice(i..=i, inner);
                        }));
                        if !else_branch.is_empty() {
                            out.push(edit_body(program, fi, &path, |body| {
                                if let Stmt::If { else_branch, .. } = &mut body[i] {
                                    else_branch.clear();
                                }
                            }));
                        }
                    }
                    Stmt::While { body: inner, .. } | Stmt::Sync { body: inner, .. } => {
                        let inner = inner.clone();
                        out.push(edit_body(program, fi, &path, |body| {
                            body.splice(i..=i, inner);
                        }));
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Clones the program and applies `edit` to the body at (`func`, `path`).
fn edit_body(
    program: &Program,
    func: usize,
    path: &BodyPath,
    edit: impl FnOnce(&mut Vec<Stmt>),
) -> Program {
    let mut c = program.clone();
    let body = subbody_mut(&mut c.functions[func].body, path)
        .expect("paths are derived from this very program");
    edit(body);
    c
}

/// Every body in `f`, outermost first: the function body itself plus the
/// bodies of all (transitively) nested compound statements.
fn body_paths(f: &Function) -> Vec<BodyPath> {
    fn walk(body: &[Stmt], prefix: &BodyPath, out: &mut Vec<BodyPath>) {
        for (i, s) in body.iter().enumerate() {
            let mut descend = |branch: u8, inner: &[Stmt]| {
                let mut path = prefix.clone();
                path.push((i, branch));
                out.push(path.clone());
                walk(inner, &path, out);
            };
            match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    descend(0, then_branch);
                    if !else_branch.is_empty() {
                        descend(1, else_branch);
                    }
                }
                Stmt::While { body, .. } | Stmt::Sync { body, .. } => descend(0, body),
                _ => {}
            }
        }
    }
    let mut out = vec![Vec::new()];
    walk(&f.body, &Vec::new(), &mut out);
    out
}

fn subbody<'a>(body: &'a [Stmt], path: &[(usize, u8)]) -> Option<&'a [Stmt]> {
    let Some(&(i, branch)) = path.first() else {
        return Some(body);
    };
    let inner = match body.get(i)? {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            if branch == 0 {
                then_branch
            } else {
                else_branch
            }
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => body,
        _ => return None,
    };
    subbody(inner, &path[1..])
}

fn subbody_mut<'a>(body: &'a mut Vec<Stmt>, path: &[(usize, u8)]) -> Option<&'a mut Vec<Stmt>> {
    let Some(&(i, branch)) = path.first() else {
        return Some(body);
    };
    let inner = match body.get_mut(i)? {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            if branch == 0 {
                then_branch
            } else {
                else_branch
            }
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => body,
        _ => return None,
    };
    subbody_mut(inner, &path[1..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::Fault;

    /// A generated program that races under the oracle's schedules.
    fn racy_program(cfg: &OracleConfig) -> (Program, u64) {
        for seed in 0..40 {
            let p = generate(seed, &GenConfig::default());
            if check_program(&p, seed, cfg).truth_races > 0 {
                return (p, seed);
            }
        }
        panic!("no racy program in 40 seeds");
    }

    #[test]
    fn injected_fault_shrinks_to_a_tiny_program() {
        let cfg = OracleConfig {
            schedule_seeds: 2,
            fault: Some(Fault::PhantomRace),
            ..OracleConfig::default()
        };
        let (program, seed) = racy_program(&cfg);
        assert!(
            stmt_count(&program) > 12,
            "generated program should start out non-trivial"
        );
        let (small, stats) = shrink_failure(&program, seed, &cfg);
        assert!(
            !check_program(&small, seed, &cfg).violations.is_empty(),
            "shrinking must preserve the failure"
        );
        assert!(
            stmt_count(&small) <= 12,
            "expected ≤ 12 statements, got {} in:\n{}",
            stmt_count(&small),
            pacer_lang::print(&small)
        );
        assert!(stats.successes > 0, "shrinker made no progress");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let cfg = OracleConfig {
            schedule_seeds: 1,
            fault: Some(Fault::PhantomRace),
            ..OracleConfig::default()
        };
        let (program, seed) = racy_program(&cfg);
        let (a, sa) = shrink_failure(&program, seed, &cfg);
        let (b, sb) = shrink_failure(&program, seed, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn stmt_count_sees_nested_statements() {
        let p = pacer_lang::parse(
            "shared s;\nlock m;\nfn main() {\n  if (1) { s = 1; s = 2; } else { s = 3; }\n  sync m { s = 4; }\n}\n",
        )
        .unwrap();
        // if + 3 assigns + sync + 1 assign = 6.
        assert_eq!(stmt_count(&p), 6);
    }

    #[test]
    fn shrink_keeps_programs_compiling() {
        let cfg = OracleConfig {
            schedule_seeds: 1,
            fault: Some(Fault::PhantomRace),
            ..OracleConfig::default()
        };
        let (program, seed) = racy_program(&cfg);
        let (small, _) = shrink_failure(&program, seed, &cfg);
        assert!(pacer_lang::compile(&small).is_ok());
    }
}
