//! Differential race-oracle fuzzer for the PACER detector family.
//!
//! Pipeline: [`gen`] draws a random well-formed `pacer-lang` program from a
//! seed; [`oracle`] executes it under every detector and cross-checks the
//! results; [`mod@shrink`] minimizes failing cases into committed
//! reproducers.
//!
//! [`run_fuzz`] drives the whole thing over
//! [`pacer_harness::parallel`]: program `i` uses seed
//! `derive_seed(base, i)`, per-program reports merge in index order, and
//! failures shrink sequentially after the merge — so the report (and its
//! [`summary`](FuzzReport::summary) text) is byte-identical at any
//! `--jobs` setting.

use pacer_harness::parallel;
use pacer_lang::ast::Program;
use pacer_prng::derive_seed;

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{generate, GenConfig};
pub use oracle::{check_program, CheckReport, Fault, OracleConfig, RateTally};
pub use shrink::{shrink, shrink_failure, stmt_count, ShrinkStats};

/// A whole fuzzing campaign's configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; program `i` is generated from `derive_seed(seed, i)`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Generator shape knobs.
    pub gen: GenConfig,
    /// Oracle rate ladder, schedule seeds, and fault injection.
    pub oracle: OracleConfig,
    /// Minimize failing programs before reporting them.
    pub shrink_failures: bool,
}

impl FuzzConfig {
    /// A campaign of `iters` programs from `seed` with default knobs.
    pub fn new(seed: u64, iters: u64) -> Self {
        FuzzConfig {
            seed,
            iters,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            shrink_failures: true,
        }
    }
}

/// One failing program, minimized when shrinking is enabled.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The program's generation seed (also the oracle's schedule base).
    pub program_seed: u64,
    /// The failing program — the shrunk reproducer if shrinking ran.
    pub program: Program,
    /// The oracle's violation descriptions for the *original* program.
    pub violations: Vec<String>,
    /// Shrinking effort spent on this failure.
    pub shrink: ShrinkStats,
}

/// Everything a campaign produced.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub programs: u64,
    /// All per-program oracle reports, merged in index order.
    pub aggregate: CheckReport,
    /// Failing programs, in generation order.
    pub failures: Vec<Failure>,
    /// Proportionality-bound violations found in the aggregated tallies.
    pub proportionality_violations: Vec<String>,
}

impl FuzzReport {
    /// Total shrinking effort across all failures.
    pub fn shrink_totals(&self) -> ShrinkStats {
        let mut total = ShrinkStats::default();
        for f in &self.failures {
            total.attempts += f.shrink.attempts;
            total.successes += f.shrink.successes;
        }
        total
    }

    /// Number of violations of any kind (oracle + proportionality).
    pub fn violation_count(&self) -> u64 {
        self.failures
            .iter()
            .map(|f| f.violations.len() as u64)
            .sum::<u64>()
            + self.proportionality_violations.len() as u64
    }

    /// This campaign's contribution to an observability snapshot.
    pub fn fuzz_counters(&self) -> pacer_obs::FuzzCounters {
        let shrink = self.shrink_totals();
        pacer_obs::FuzzCounters {
            programs: self.programs,
            vm_runs: self.aggregate.vm_runs,
            vm_errors: self.aggregate.vm_errors,
            truth_races: self.aggregate.truth_races,
            violations: self.violation_count(),
            shrink_attempts: shrink.attempts,
            shrink_successes: shrink.successes,
        }
    }

    /// Deterministic human-readable campaign summary: counters, the
    /// per-rate detection table, and every failure with its reproducer.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let agg = &self.aggregate;
        let _ = writeln!(
            out,
            "pacer-fuzz: {} programs, {} vm runs ({} vm errors), {} truth races",
            self.programs, agg.vm_runs, agg.vm_errors, agg.truth_races
        );
        for t in &agg.tallies {
            if t.opportunities == 0 {
                let _ = writeln!(out, "rate {:.4}: no race opportunities", t.rate);
            } else {
                let _ = writeln!(
                    out,
                    "rate {:.4}: {}/{} detectable races found ({:.4}) over {} racy runs",
                    t.rate,
                    t.detected,
                    t.opportunities,
                    t.detected as f64 / t.opportunities as f64,
                    t.racy_runs
                );
            }
        }
        let shrink = self.shrink_totals();
        let _ = writeln!(
            out,
            "violations: {} ({} failing programs, shrink accepted {}/{} edits)",
            self.violation_count(),
            self.failures.len(),
            shrink.successes,
            shrink.attempts
        );
        for v in &self.proportionality_violations {
            let _ = writeln!(out, "proportionality: {v}");
        }
        for f in &self.failures {
            let _ = writeln!(out, "\nfailure: program seed {}", f.program_seed);
            for v in &f.violations {
                let _ = writeln!(out, "  {v}");
            }
            let _ = writeln!(out, "  reproducer ({} statements):", stmt_count(&f.program));
            for line in pacer_lang::print(&f.program).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// Runs a fuzzing campaign. See the module docs for the determinism
/// contract; configure parallelism via [`parallel::set_jobs`].
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let results: Vec<(u64, Program, CheckReport)> =
        parallel::run_indexed(cfg.iters as usize, |i| {
            let seed = derive_seed(cfg.seed, i as u64);
            let program = generate(seed, &cfg.gen);
            let report = check_program(&program, seed, &cfg.oracle);
            (seed, program, report)
        });

    let mut report = FuzzReport {
        programs: cfg.iters,
        ..FuzzReport::default()
    };
    for (seed, program, check) in results {
        report.aggregate.merge(&check);
        if !check.violations.is_empty() {
            // Shrinking runs sequentially after the parallel sweep, in
            // index order, so its stats are jobs-independent too.
            let (program, shrink) = if cfg.shrink_failures {
                shrink_failure(&program, seed, &cfg.oracle)
            } else {
                (program, ShrinkStats::default())
            };
            report.failures.push(Failure {
                program_seed: seed,
                program,
                violations: check.violations,
                shrink,
            });
        }
    }
    report.proportionality_violations = check_proportionality(&report.aggregate.tallies);
    report
}

/// One recorded truth trace from [`record_truth_traces`].
#[derive(Clone, Debug)]
pub struct TruthTrace {
    /// Campaign index `i`; the program seed is `derive_seed(base, i)`.
    pub index: u64,
    /// The program's generation seed (sufficient to reproduce it).
    pub program_seed: u64,
    /// The rate-1.0 truth trace, encoded in the binary trace format
    /// (`TRACE_FORMAT.md`).
    pub bytes: Vec<u8>,
}

/// Records the rate-1.0 truth trace of every program in the campaign and
/// encodes each in the compact binary trace format.
///
/// Program `i` is regenerated from `derive_seed(cfg.seed, i)` and executed
/// under the oracle's *first* schedule seed (`derive_seed(program_seed, 0)`),
/// so each trace is exactly the truth execution [`check_program`] compares
/// detectors against. Recording runs in parallel but results come back in
/// index order, so writing them out sequentially is byte-identical at any
/// `--jobs` setting. Programs that fail to compile or hit a VM error are
/// skipped (matching the oracle, which counts them without traces).
pub fn record_truth_traces(cfg: &FuzzConfig) -> Vec<TruthTrace> {
    use pacer_runtime::{Vm, VmConfig};
    use pacer_trace::RecordingDetector;

    let results: Vec<Option<TruthTrace>> = parallel::run_indexed(cfg.iters as usize, |i| {
        let seed = derive_seed(cfg.seed, i as u64);
        let program = generate(seed, &cfg.gen);
        let compiled = pacer_lang::compile(&program).ok()?;
        let vm_cfg = VmConfig::new(derive_seed(seed, 0))
            .with_sampling_rate(1.0)
            .with_max_steps(cfg.oracle.max_steps);
        let mut rec = RecordingDetector::new();
        Vm::run(&compiled, &mut rec, &vm_cfg).ok()?;
        Some(TruthTrace {
            index: i as u64,
            program_seed: seed,
            bytes: pacer_trace::binary::encode_trace(rec.trace()),
        })
    });
    results.into_iter().flatten().collect()
}

/// The paper's proportionality claim, as a one-sided binomial bound: the
/// observed detection rate must not fall below the sampling rate `r` by
/// more than a fixed slack plus four standard errors. The independent
/// trial is the *run*, not the race — generated programs usually fit in
/// one sampling window, so all of a run's races are detected or missed
/// together (see [`RateTally::racy_runs`]). Only rungs with enough runs
/// for the bound to mean anything are checked.
fn check_proportionality(tallies: &[RateTally]) -> Vec<String> {
    let mut out = Vec::new();
    for t in tallies {
        if t.racy_runs < 200 {
            continue;
        }
        let observed = t.detected as f64 / t.opportunities as f64;
        let sigma = (t.rate * (1.0 - t.rate) / t.racy_runs as f64).sqrt();
        let floor = t.rate - (0.10 + 4.0 * sigma);
        if observed < floor {
            out.push(format!(
                "rate {:.4}: detected {}/{} = {:.4} over {} runs, below floor {:.4}",
                t.rate, t.detected, t.opportunities, observed, t.racy_runs, floor
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_jobs` mutates process-wide state shared with other tests in
    /// this binary, so every test that touches it holds this lock.
    static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn campaign_is_clean_and_jobs_independent() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let mut cfg = FuzzConfig::new(42, 20);
        cfg.oracle.schedule_seeds = 2;

        parallel::set_jobs(1);
        let serial = run_fuzz(&cfg);
        parallel::set_jobs(4);
        let threaded = run_fuzz(&cfg);
        parallel::set_jobs(1);

        assert_eq!(serial.summary(), threaded.summary());
        assert_eq!(serial.violation_count(), 0, "{}", serial.summary());
        assert!(serial.aggregate.vm_runs > 0);
        assert_eq!(serial.fuzz_counters().programs, 20);
    }

    #[test]
    fn injected_fault_surfaces_as_shrunk_failures() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let mut cfg = FuzzConfig::new(1, 10);
        cfg.oracle.schedule_seeds = 1;
        cfg.oracle.fault = Some(Fault::PhantomRace);
        let report = run_fuzz(&cfg);
        assert!(
            !report.failures.is_empty(),
            "10 programs should include a racy one"
        );
        for f in &report.failures {
            assert!(stmt_count(&f.program) <= 12, "{}", report.summary());
            assert!(f.shrink.successes > 0);
        }
        let counters = report.fuzz_counters();
        assert_eq!(counters.programs, 10);
        assert!(counters.violations > 0);
        assert!(counters.shrink_successes > 0);
    }

    #[test]
    fn proportionality_floor_trips_on_fabricated_tallies() {
        let tallies = [
            RateTally {
                rate: 0.5,
                detected: 10,
                opportunities: 1000,
                racy_runs: 500,
            },
            RateTally {
                rate: 0.5,
                detected: 490,
                opportunities: 1000,
                racy_runs: 500,
            },
            RateTally {
                rate: 0.5,
                detected: 0,
                opportunities: 10,
                racy_runs: 10,
            },
        ];
        let v = check_proportionality(&tallies);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("0.0100"), "{v:?}");
    }
}
