//! The differential oracle: one program, every detector, cross-checked.
//!
//! For each schedule seed the oracle executes the program once at rate 1.0
//! with a *tee* detector fanning the action stream out to every analysis at
//! once (one VM run instead of six), then once per sub-1.0 rung of the rate
//! ladder. The recorded trace's [`HbOracle`] analysis is ground truth.
//!
//! Checks, in the order they run:
//!
//! * **Full-rate equivalence.** PACER at r = 1.0 reports exactly
//!   FASTTRACK's distinct race set (the paper's accuracy claim), and the
//!   accordion variant reports exactly PACER's.
//! * **Soundness.** Every detector's distinct races are a subset of the
//!   HB oracle's, at every rate; GENERIC's racy-variable set equals the
//!   oracle's exactly.
//! * **Schedule stability.** Runs at different rates under one seed retire
//!   the same instruction count and start the same threads — sampling must
//!   never perturb the interleaving.
//! * **State invariants.** Each detector's `assert_invariants` passes
//!   after the run (caught via `catch_unwind`, reported as a violation).
//! * **Space accounting.** `footprint_words()` agrees with
//!   `space_breakdown().total_words()` and `tracked_vars` agrees with the
//!   breakdown, for the detectors that compute the two independently.
//! * **Proportionality.** Detections per rung are tallied against truth
//!   opportunities so the caller can check the binomial detection-rate
//!   bound across many programs.
//!
//! All violation strings are deterministic functions of (program, seed,
//! rate), so fuzzing output is byte-identical across runs and job counts.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_lang::ast::Program;
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_prng::derive_seed;
use pacer_runtime::{RunOutcome, Vm, VmConfig};
use pacer_trace::{Action, Detector, HbOracle, RaceReport, RecordingDetector, SiteId, VarId};

/// A deliberately injected detector defect, for testing that the oracle
/// (and the shrinker behind it) actually catches violations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Adds a fabricated race pair to PACER's sub-1.0 race sets whenever
    /// the ground truth is non-empty — a subset violation on every racy
    /// program, which the shrinker should minimize to the smallest program
    /// that still races.
    PhantomRace,
}

/// The race-pair key `PhantomRace` fabricates (no real site uses it).
pub const PHANTOM_KEY: (SiteId, SiteId) = (SiteId::new(0xFFFF), SiteId::new(0xFFFF));

/// Oracle configuration: which rates and how many schedules to check.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Sampling rates to exercise. Entries below 1.0 each get their own VM
    /// run; the truth run at 1.0 always happens regardless.
    pub rate_ladder: Vec<f64>,
    /// Scheduler seeds per program (derived from the program's base seed).
    pub schedule_seeds: u32,
    /// Per-run instruction budget (generated programs terminate far below
    /// this; the limit guards oracle runs on hand-written inputs).
    pub max_steps: u64,
    /// Optional injected defect, for self-tests.
    pub fault: Option<Fault>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            rate_ladder: vec![1.0, 0.5, 0.1, 0.01],
            schedule_seeds: 3,
            max_steps: 2_000_000,
            fault: None,
        }
    }
}

/// Detections versus opportunities at one sampling rate, aggregated over
/// seeds (and, by [`CheckReport::merge`], over programs).
///
/// An *opportunity* is a race the full-rate detector reports for that
/// (program, seed) — not an HB-oracle race: FASTTRACK intentionally
/// reports at most one race per variable, and PACER's proportionality
/// claim is relative to what full-rate detection finds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RateTally {
    /// The sampling rate this row describes.
    pub rate: f64,
    /// Detectable races PACER reported at this rate.
    pub detected: u64,
    /// Detectable races that existed (per seed × per race).
    pub opportunities: u64,
    /// Runs contributing at least one opportunity. Short programs often
    /// fit in a single sampling window, making detection all-or-nothing
    /// per run — so this, not `opportunities`, is the independent-trial
    /// count for any statistical bound.
    pub racy_runs: u64,
}

/// Everything the oracle learned about one program.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Human-readable, deterministic descriptions of every failed check.
    pub violations: Vec<String>,
    /// Per-rate detection tallies, aligned with the config's rate ladder.
    pub tallies: Vec<RateTally>,
    /// VM executions performed.
    pub vm_runs: u64,
    /// Seeds abandoned because the VM returned an error.
    pub vm_errors: u64,
    /// Total ground-truth races across seeds (seeds × distinct pairs).
    pub truth_races: u64,
}

impl CheckReport {
    /// Folds another report (same rate ladder) into this one.
    pub fn merge(&mut self, other: &CheckReport) {
        self.violations.extend_from_slice(&other.violations);
        self.vm_runs += other.vm_runs;
        self.vm_errors += other.vm_errors;
        self.truth_races += other.truth_races;
        if self.tallies.is_empty() {
            self.tallies = other.tallies.clone();
        } else {
            for (mine, theirs) in self.tallies.iter_mut().zip(&other.tallies) {
                debug_assert_eq!(mine.rate, theirs.rate, "reports use one ladder");
                mine.detected += theirs.detected;
                mine.opportunities += theirs.opportunities;
                mine.racy_runs += theirs.racy_runs;
            }
        }
    }
}

/// Fans one action stream out to several detectors so a single VM run
/// drives every analysis under the exact same schedule.
struct Tee<'a> {
    parts: Vec<&'a mut dyn Detector>,
}

impl Detector for Tee<'_> {
    fn name(&self) -> String {
        "tee".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        for part in &mut self.parts {
            part.on_action(action);
        }
    }

    fn races(&self) -> &[RaceReport] {
        &[]
    }
}

/// Runs the full differential check on one program.
///
/// `base_seed` parameterizes the schedule seeds (`derive_seed(base_seed,
/// k)` for each of `cfg.schedule_seeds`); reusing the program's generation
/// seed keeps one number sufficient to reproduce a failure.
pub fn check_program(program: &Program, base_seed: u64, cfg: &OracleConfig) -> CheckReport {
    let mut report = CheckReport {
        tallies: cfg
            .rate_ladder
            .iter()
            .map(|&rate| RateTally {
                rate,
                ..RateTally::default()
            })
            .collect(),
        ..CheckReport::default()
    };
    let compiled = match pacer_lang::compile(program) {
        Ok(c) => c,
        Err(e) => {
            report
                .violations
                .push(format!("program does not compile: {e:?}"));
            return report;
        }
    };
    for k in 0..cfg.schedule_seeds {
        let seed = derive_seed(base_seed, k as u64);
        check_seed(&compiled, seed, cfg, &mut report);
    }
    report
}

/// One schedule seed: truth run plus one run per sub-1.0 rung.
fn check_seed(compiled: &CompiledProgram, seed: u64, cfg: &OracleConfig, report: &mut CheckReport) {
    let mk = |rate: f64| {
        VmConfig::new(seed)
            .with_sampling_rate(rate)
            .with_max_steps(cfg.max_steps)
    };

    // Truth run at rate 1.0: record the trace and drive every detector.
    let mut rec = RecordingDetector::new();
    let mut ft = FastTrackDetector::new();
    let mut generic = GenericDetector::new();
    let mut pacer = PacerDetector::new();
    let mut accordion = AccordionPacerDetector::new();
    let mut literace = LiteRaceDetector::new(LiteRaceConfig::default(), derive_seed(seed, 0x117e));
    let truth_outcome = {
        let mut tee = Tee {
            parts: vec![
                &mut rec,
                &mut ft,
                &mut generic,
                &mut pacer,
                &mut accordion,
                &mut literace,
            ],
        };
        match Vm::run(compiled, &mut tee, &mk(1.0)) {
            Ok(outcome) => outcome,
            Err(_) => {
                report.vm_errors += 1;
                return;
            }
        }
    };
    report.vm_runs += 1;

    let trace = rec.into_trace();
    let oracle = HbOracle::analyze(&trace);
    let truth: BTreeSet<(SiteId, SiteId)> = oracle.distinct_races().into_iter().collect();
    report.truth_races += truth.len() as u64;

    let v = &mut report.violations;
    let ft_set = race_set(&ft);
    let pacer_set = race_set(&pacer);
    if pacer_set != ft_set {
        v.push(format!(
            "seed {seed}: pacer@1.0 races {pacer_set:?} != fasttrack races {ft_set:?}"
        ));
    }
    let accordion_set = race_set(&accordion);
    if accordion_set != pacer_set {
        v.push(format!(
            "seed {seed}: accordion@1.0 races {accordion_set:?} != pacer@1.0 races {pacer_set:?}"
        ));
    }
    check_subset(v, seed, 1.0, "fasttrack", &ft_set, &truth);
    check_subset(v, seed, 1.0, "generic", &race_set(&generic), &truth);
    check_subset(v, seed, 1.0, "literace", &race_set(&literace), &truth);

    // GENERIC is the textbook precise detector: its racy-variable set must
    // equal the oracle's exactly (site pairs can differ because GENERIC
    // overwrites per-thread access history in place).
    let mut generic_vars: Vec<VarId> = generic.races().iter().map(|r| r.x).collect();
    generic_vars.sort();
    generic_vars.dedup();
    if generic_vars != oracle.racy_vars() {
        v.push(format!(
            "seed {seed}: generic racy vars {generic_vars:?} != oracle racy vars {:?}",
            oracle.racy_vars()
        ));
    }

    check_invariants(v, seed, 1.0, "fasttrack", || ft.assert_invariants());
    check_invariants(v, seed, 1.0, "generic", || generic.assert_invariants());
    check_invariants(v, seed, 1.0, "pacer", || pacer.assert_invariants());
    check_invariants(v, seed, 1.0, "accordion", || accordion.assert_invariants());
    check_space(v, seed, 1.0, "pacer", &pacer);
    check_space(v, seed, 1.0, "accordion-inner", accordion.inner());

    // The proportionality baseline: what full-rate PACER detects under
    // this schedule. (Equal to `pacer_set` whenever soundness holds; the
    // intersection only matters if a subset check above already failed.)
    let detectable: BTreeSet<(SiteId, SiteId)> = pacer_set.intersection(&truth).copied().collect();
    if let Some(tally) = report.tallies.iter_mut().find(|t| t.rate == 1.0) {
        tally.detected += detectable.len() as u64;
        tally.opportunities += detectable.len() as u64;
        tally.racy_runs += u64::from(!detectable.is_empty());
    }

    // Sub-1.0 rungs: PACER and accordion under the same schedule.
    for (rung, &rate) in cfg.rate_ladder.iter().enumerate() {
        if rate >= 1.0 {
            continue;
        }
        let mut p = PacerDetector::new();
        let mut a = AccordionPacerDetector::new();
        let outcome = {
            let mut tee = Tee {
                parts: vec![&mut p, &mut a],
            };
            Vm::run(compiled, &mut tee, &mk(rate))
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(_) => {
                report.vm_errors += 1;
                continue;
            }
        };
        report.vm_runs += 1;
        check_schedule_stability(&mut report.violations, seed, rate, &truth_outcome, &outcome);

        let v = &mut report.violations;
        let p_raw = race_set(&p);
        let a_set = race_set(&a);
        if a_set != p_raw {
            v.push(format!(
                "seed {seed} rate {rate}: accordion races {a_set:?} != pacer races {p_raw:?}"
            ));
        }
        let mut p_set = p_raw;
        if cfg.fault == Some(Fault::PhantomRace) && !truth.is_empty() {
            p_set.insert(PHANTOM_KEY);
        }
        check_subset(v, seed, rate, "pacer", &p_set, &truth);
        check_invariants(v, seed, rate, "pacer", || p.assert_invariants());
        check_invariants(v, seed, rate, "accordion", || a.assert_invariants());
        check_space(v, seed, rate, "pacer", &p);

        let tally = &mut report.tallies[rung];
        tally.detected += p_set.intersection(&detectable).count() as u64;
        tally.opportunities += detectable.len() as u64;
        tally.racy_runs += u64::from(!detectable.is_empty());
    }
}

/// A detector's distinct race set as an ordered set (deterministic Debug).
fn race_set(d: &dyn Detector) -> BTreeSet<(SiteId, SiteId)> {
    d.distinct_races().into_iter().collect()
}

fn check_subset(
    violations: &mut Vec<String>,
    seed: u64,
    rate: f64,
    what: &str,
    observed: &BTreeSet<(SiteId, SiteId)>,
    truth: &BTreeSet<(SiteId, SiteId)>,
) {
    let extra: Vec<_> = observed.difference(truth).collect();
    if !extra.is_empty() {
        violations.push(format!(
            "seed {seed} rate {rate}: {what} reported races outside ground truth: {extra:?}"
        ));
    }
}

/// Sampling must not perturb the schedule: equal seeds retire equal step
/// counts and thread counts at every rate.
fn check_schedule_stability(
    violations: &mut Vec<String>,
    seed: u64,
    rate: f64,
    truth: &RunOutcome,
    rung: &RunOutcome,
) {
    if rung.steps != truth.steps {
        violations.push(format!(
            "seed {seed} rate {rate}: schedule instability: {} steps vs {} at rate 1.0",
            rung.steps, truth.steps
        ));
    }
    if rung.threads_started != truth.threads_started {
        violations.push(format!(
            "seed {seed} rate {rate}: schedule instability: {} threads vs {} at rate 1.0",
            rung.threads_started, truth.threads_started
        ));
    }
}

fn check_invariants(
    violations: &mut Vec<String>,
    seed: u64,
    rate: f64,
    what: &str,
    f: impl FnOnce(),
) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_else(|| "non-string panic".to_string());
        violations.push(format!(
            "seed {seed} rate {rate}: {what} invariants violated: {msg}"
        ));
    }
}

/// Cross-checks the two independently computed space measures.
fn check_space(violations: &mut Vec<String>, seed: u64, rate: f64, what: &str, d: &PacerDetector) {
    let breakdown: SpaceBreakdown = d.space_breakdown();
    if d.footprint_words() as u64 != breakdown.total_words() {
        violations.push(format!(
            "seed {seed} rate {rate}: {what} footprint_words {} != space_breakdown total {}",
            d.footprint_words(),
            breakdown.total_words()
        ));
    }
    if d.tracked_vars() as u64 != breakdown.tracked_vars {
        violations.push(format!(
            "seed {seed} rate {rate}: {what} tracked_vars {} != space_breakdown tracked_vars {}",
            d.tracked_vars(),
            breakdown.tracked_vars
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn generated_programs_pass_the_oracle() {
        let cfg = OracleConfig {
            schedule_seeds: 2,
            ..OracleConfig::default()
        };
        for seed in 0..40 {
            let program = generate(seed, &GenConfig::default());
            let report = check_program(&program, seed, &cfg);
            assert_eq!(
                report.violations,
                Vec::<String>::new(),
                "seed {seed} produced oracle violations"
            );
            assert!(report.vm_runs > 0, "seed {seed} never ran");
        }
    }

    #[test]
    fn phantom_fault_is_caught_on_racy_programs() {
        let cfg = OracleConfig {
            schedule_seeds: 2,
            fault: Some(Fault::PhantomRace),
            ..OracleConfig::default()
        };
        let mut caught = 0;
        for seed in 0..20 {
            let program = generate(seed, &GenConfig::default());
            let report = check_program(&program, seed, &cfg);
            if report.truth_races > 0 {
                assert!(
                    report
                        .violations
                        .iter()
                        .any(|v| v.contains("outside ground truth")),
                    "seed {seed}: fault not caught despite {} truth races",
                    report.truth_races
                );
                caught += 1;
            }
        }
        assert!(caught > 0, "no generated program raced in 20 seeds");
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = OracleConfig::default();
        let program = generate(7, &GenConfig::default());
        let a = check_program(&program, 7, &cfg);
        let b = check_program(&program, 7, &cfg);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.vm_runs, b.vm_runs);
    }

    #[test]
    fn merge_accumulates_tallies() {
        let cfg = OracleConfig {
            schedule_seeds: 1,
            ..OracleConfig::default()
        };
        let program = generate(3, &GenConfig::default());
        let one = check_program(&program, 3, &cfg);
        let mut two = CheckReport::default();
        two.merge(&one);
        two.merge(&one);
        assert_eq!(two.vm_runs, 2 * one.vm_runs);
        for (t2, t1) in two.tallies.iter().zip(&one.tallies) {
            assert_eq!(t2.detected, 2 * t1.detected);
            assert_eq!(t2.opportunities, 2 * t1.opportunities);
        }
    }
}
