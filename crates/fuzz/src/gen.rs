//! Seeded grammar-based generation of well-formed concurrent programs.
//!
//! Every program this module emits is *safe by construction*:
//!
//! * **No deadlocks.** Nested `sync` blocks only ever acquire locks with a
//!   strictly larger index than the enclosing block (a total lock order),
//!   and `wait`/`notify` appear only inside the guarded-handoff template
//!   below, which cannot lose a wakeup.
//! * **Termination.** Loops are bounded counter loops, and the product of
//!   nested trip counts is capped, so the VM's step budget is never a
//!   concern.
//! * **No runtime type errors.** Thread handles are only joined, object
//!   references are only dereferenced via `.f`/`.g`, integer expressions
//!   avoid `/` and `%` (the only trapping operators), and the VM wraps
//!   array indices.
//!
//! The guarded handoff template (Java's canonical monitor idiom):
//!
//! ```text
//! fn waiter() { sync hm { while (hflag == 0) { wait hm; } } }
//! fn main()  { ... sync hm { hflag = 1; notifyall hm; } ... }
//! ```
//!
//! If the waiter checks first, `main` cannot set the flag until the waiter
//! releases the monitor inside `wait`; if `main` sets the flag first, the
//! waiter sees it and never waits. The handoff flag and monitor are
//! reserved names, excluded from the random access pool, so no generated
//! statement can reset the flag.

use pacer_lang::ast::{BinOp, Expr, Function, LValue, Program, SharedDecl, Stmt, UnOp};
use pacer_prng::Rng;

/// Tunable shape knobs for generated programs. All maxima are inclusive.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Worker threads spawned by `main` (at least 1).
    pub max_threads: u32,
    /// Locks available to random `sync` blocks.
    pub max_locks: u32,
    /// Volatile variables.
    pub max_volatiles: u32,
    /// Shared scalar variables (at least 1).
    pub max_shared_scalars: u32,
    /// Shared arrays.
    pub max_shared_arrays: u32,
    /// Length of each shared array (at least 2 when present).
    pub max_array_len: u32,
    /// Random statement budget per worker body.
    pub max_stmts: u32,
    /// Maximum block-nesting depth of generated `sync`/`if`/`while`.
    pub max_depth: u32,
    /// Trip count of one counter loop; nested products are capped at 16.
    pub max_loop_iters: u32,
    /// Allow the guarded wait/notify handoff template.
    pub wait_notify: bool,
    /// Allow an object created in `main` to escape into workers (field
    /// races + the escape-analysis instrumentation path).
    pub escaping_objects: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_threads: 3,
            max_locks: 2,
            max_volatiles: 1,
            max_shared_scalars: 3,
            max_shared_arrays: 1,
            max_array_len: 4,
            max_stmts: 10,
            max_depth: 2,
            max_loop_iters: 4,
            wait_notify: true,
            escaping_objects: true,
        }
    }
}

/// Names reserved for the guarded handoff; the random pools never use
/// them, so nothing can interfere with the template's protocol.
const HANDOFF_LOCK: &str = "hm";
const HANDOFF_FLAG: &str = "hflag";

/// Draws one well-formed program from `cfg`'s grammar, fully determined
/// by `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    Gen::new(seed, cfg).program()
}

struct Gen<'a> {
    rng: Rng,
    cfg: &'a GenConfig,
    n_threads: u32,
    n_locks: u32,
    n_volatiles: u32,
    n_scalars: u32,
    arrays: Vec<(String, u32)>,
    handoff: bool,
    escaping: bool,
    /// Fresh-name counters for locals, loop counters, and objects.
    next_local: u32,
    next_loop: u32,
    next_obj: u32,
}

/// Lexical scope carried down the statement grammar.
#[derive(Clone, Default)]
struct Scope {
    /// Integer-typed names readable here (params, `let` locals, loop
    /// counters).
    ints: Vec<String>,
    /// Object-typed names readable here (the escaping param, `new obj`
    /// locals).
    objs: Vec<String>,
    /// Nested `sync` may only use lock indices above this (total order).
    min_lock: u32,
    /// Current block depth.
    depth: u32,
    /// Product of enclosing loop trip counts.
    iter_mult: u32,
}

impl<'a> Gen<'a> {
    fn new(seed: u64, cfg: &'a GenConfig) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let n_threads = 1 + rng.gen_range(0..cfg.max_threads.max(1));
        let n_locks = rng.gen_range(0..=cfg.max_locks);
        let n_volatiles = rng.gen_range(0..=cfg.max_volatiles);
        let n_scalars = 1 + rng.gen_range(0..cfg.max_shared_scalars.max(1));
        let n_arrays = rng.gen_range(0..=cfg.max_shared_arrays);
        let arrays = (0..n_arrays)
            .map(|i| {
                (
                    format!("a{i}"),
                    2 + rng.gen_range(0..cfg.max_array_len.max(2) - 1),
                )
            })
            .collect();
        let handoff = cfg.wait_notify && rng.gen_bool(0.5);
        let escaping = cfg.escaping_objects && rng.gen_bool(0.5);
        Gen {
            rng,
            cfg,
            n_threads,
            n_locks,
            n_volatiles,
            n_scalars,
            arrays,
            handoff,
            escaping,
            next_local: 0,
            next_loop: 0,
            next_obj: 0,
        }
    }

    fn program(&mut self) -> Program {
        let mut shareds: Vec<SharedDecl> = (0..self.n_scalars)
            .map(|i| SharedDecl {
                name: format!("s{i}"),
                len: None,
            })
            .collect();
        for (name, len) in &self.arrays {
            shareds.push(SharedDecl {
                name: name.clone(),
                len: Some(*len),
            });
        }
        let mut locks: Vec<String> = (0..self.n_locks).map(|i| format!("m{i}")).collect();
        if self.handoff {
            shareds.push(SharedDecl {
                name: HANDOFF_FLAG.into(),
                len: None,
            });
            locks.push(HANDOFF_LOCK.into());
        }
        let volatiles = (0..self.n_volatiles).map(|i| format!("v{i}")).collect();

        let mut functions: Vec<Function> = (0..self.n_threads).map(|k| self.worker(k)).collect();
        functions.push(self.main_fn());

        Program {
            shareds,
            locks,
            volatiles,
            functions,
        }
    }

    fn worker(&mut self, k: u32) -> Function {
        let mut params = vec!["id".to_string()];
        if self.escaping {
            params.push("p".to_string());
        }
        let mut scope = Scope {
            ints: vec!["id".into()],
            objs: if self.escaping {
                vec!["p".into()]
            } else {
                vec![]
            },
            ..Scope::default()
        };
        let mut body = Vec::new();
        // Workers other than the last may wait; the designation is drawn
        // before the random body so the handoff shape is seed-stable.
        if self.handoff && k + 1 < self.n_threads && self.rng.gen_bool(0.5) {
            body.push(self.waiter_template());
        }
        let budget = 1 + self.rng.gen_range(0..self.cfg.max_stmts.max(1));
        self.stmts(budget, &mut scope, &mut body);
        Function {
            name: format!("worker{k}"),
            params,
            body,
        }
    }

    /// `sync hm { while (hflag == 0) { wait hm; } }`
    fn waiter_template(&mut self) -> Stmt {
        Stmt::Sync {
            lock: HANDOFF_LOCK.into(),
            body: vec![Stmt::While {
                cond: Expr::Binary(
                    BinOp::Eq,
                    Box::new(Expr::Name(HANDOFF_FLAG.into())),
                    Box::new(Expr::Int(0)),
                ),
                body: vec![Stmt::Wait {
                    lock: HANDOFF_LOCK.into(),
                }],
            }],
        }
    }

    /// `sync hm { hflag = 1; notifyall hm; }`
    fn notifier_template(&self) -> Stmt {
        Stmt::Sync {
            lock: HANDOFF_LOCK.into(),
            body: vec![
                Stmt::Assign {
                    target: LValue::Name(HANDOFF_FLAG.into()),
                    value: Expr::Int(1),
                },
                Stmt::Notify {
                    lock: HANDOFF_LOCK.into(),
                    all: true,
                },
            ],
        }
    }

    fn main_fn(&mut self) -> Function {
        let mut body = Vec::new();
        let mut scope = Scope::default();
        if self.escaping {
            body.push(Stmt::Let {
                name: "eo".into(),
                init: Expr::New,
            });
            body.push(Stmt::Assign {
                target: LValue::Field("eo".into(), "f".into()),
                value: Expr::Int(0),
            });
            scope.objs.push("eo".into());
        }
        for k in 0..self.n_threads {
            let mut args = vec![Expr::Int(i64::from(k))];
            if self.escaping {
                args.push(Expr::Name("eo".into()));
            }
            body.push(Stmt::Let {
                name: format!("t{k}"),
                init: Expr::Spawn {
                    func: format!("worker{k}"),
                    args,
                },
            });
        }
        if self.handoff {
            body.push(self.notifier_template());
        }
        // Main races with its workers too, sometimes.
        if self.rng.gen_bool(0.5) {
            let budget = 1 + self.rng.gen_range(0..3u32);
            scope.ints.push("dummy".into());
            body.push(Stmt::Let {
                name: "dummy".into(),
                init: Expr::Int(1),
            });
            self.stmts(budget, &mut scope, &mut body);
        }
        for k in 0..self.n_threads {
            body.push(Stmt::Join {
                thread: Expr::Name(format!("t{k}")),
            });
        }
        Function {
            name: "main".into(),
            params: vec![],
            body,
        }
    }

    /// Appends `budget` random statements to `out` under `scope`.
    fn stmts(&mut self, budget: u32, scope: &mut Scope, out: &mut Vec<Stmt>) {
        let locals_before = (scope.ints.len(), scope.objs.len());
        for _ in 0..budget {
            let stmt = self.stmt(scope);
            out.push(stmt);
        }
        // Names declared in this block go out of scope with it.
        scope.ints.truncate(locals_before.0);
        scope.objs.truncate(locals_before.1);
    }

    fn stmt(&mut self, scope: &mut Scope) -> Stmt {
        let can_nest = scope.depth < self.cfg.max_depth;
        let can_loop = can_nest && scope.iter_mult * self.cfg.max_loop_iters.max(1) <= 16;
        let can_sync = can_nest && scope.min_lock < self.lock_pool_len();
        loop {
            match self.rng.gen_range(0..10u32) {
                // Shared scalar write.
                0 | 1 => {
                    let value = self.int_expr(scope, 2);
                    return Stmt::Assign {
                        target: LValue::Name(self.scalar()),
                        value,
                    };
                }
                // Local declaration.
                2 => {
                    let init = self.int_expr(scope, 2);
                    let name = format!("l{}", self.next_local);
                    self.next_local += 1;
                    scope.ints.push(name.clone());
                    return Stmt::Let { name, init };
                }
                // Array element write.
                3 if !self.arrays.is_empty() => {
                    let (name, _) = self.array();
                    let index = Box::new(self.int_expr(scope, 1));
                    let value = self.int_expr(scope, 2);
                    return Stmt::Assign {
                        target: LValue::Index(name, index),
                        value,
                    };
                }
                // Volatile write (a synchronization edge).
                4 if self.n_volatiles > 0 => {
                    let value = self.int_expr(scope, 1);
                    return Stmt::Assign {
                        target: LValue::Name(self.volatile()),
                        value,
                    };
                }
                // Guarded block; nested syncs respect the lock order.
                5 if can_sync => {
                    let lock_idx = self.rng.gen_range(scope.min_lock..self.lock_pool_len());
                    let mut inner = Scope {
                        min_lock: lock_idx + 1,
                        depth: scope.depth + 1,
                        ..scope.clone()
                    };
                    let mut body = Vec::new();
                    let budget = 1 + self.rng.gen_range(0..3u32);
                    self.stmts(budget, &mut inner, &mut body);
                    return Stmt::Sync {
                        lock: self.lock_name(lock_idx),
                        body,
                    };
                }
                // Branch on data (schedule-dependent divergence is fine:
                // the schedule is fixed by the seed, not by the detector).
                6 if can_nest => {
                    let cond = self.int_expr(scope, 2);
                    let mut inner = Scope {
                        depth: scope.depth + 1,
                        ..scope.clone()
                    };
                    let mut then_branch = Vec::new();
                    let n = 1 + self.rng.gen_range(0..2u32);
                    self.stmts(n, &mut inner, &mut then_branch);
                    let mut else_branch = Vec::new();
                    if self.rng.gen_bool(0.4) {
                        let mut inner = Scope {
                            depth: scope.depth + 1,
                            ..scope.clone()
                        };
                        self.stmts(1, &mut inner, &mut else_branch);
                    }
                    return Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    };
                }
                // Bounded counter loop. Emitted via a wrapper statement so
                // one grammar draw stays one `Stmt`: the counter is
                // declared by an `if (1)` prelude around let + while.
                7 if can_loop => {
                    let iters = 1 + self.rng.gen_range(0..self.cfg.max_loop_iters.max(1));
                    let counter = format!("i{}", self.next_loop);
                    self.next_loop += 1;
                    let mut inner = Scope {
                        depth: scope.depth + 1,
                        iter_mult: scope.iter_mult.max(1) * iters,
                        ..scope.clone()
                    };
                    inner.ints.push(counter.clone());
                    let mut body = Vec::new();
                    let n = 1 + self.rng.gen_range(0..3u32);
                    self.stmts(n, &mut inner, &mut body);
                    body.push(Stmt::Assign {
                        target: LValue::Name(counter.clone()),
                        value: Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::Name(counter.clone())),
                            Box::new(Expr::Int(1)),
                        ),
                    });
                    return Stmt::If {
                        cond: Expr::Int(1),
                        then_branch: vec![
                            Stmt::Let {
                                name: counter.clone(),
                                init: Expr::Int(0),
                            },
                            Stmt::While {
                                cond: Expr::Binary(
                                    BinOp::Lt,
                                    Box::new(Expr::Name(counter)),
                                    Box::new(Expr::Int(i64::from(iters))),
                                ),
                                body,
                            },
                        ],
                        else_branch: vec![],
                    };
                }
                // Thread-local object: the escape-analysis elision path.
                8 => {
                    let name = format!("o{}", self.next_obj);
                    self.next_obj += 1;
                    scope.objs.push(name.clone());
                    return Stmt::Let {
                        name,
                        init: Expr::New,
                    };
                }
                // Field write on an object in scope (escaping `p`/`eo`
                // races; `o*` locals exercise elision).
                9 if !scope.objs.is_empty() => {
                    let obj = self.pick(&scope.objs);
                    let field = if self.rng.gen_bool(0.5) { "f" } else { "g" };
                    let value = self.int_expr(scope, 1);
                    return Stmt::Assign {
                        target: LValue::Field(obj, field.into()),
                        value,
                    };
                }
                _ => {}
            }
        }
    }

    fn int_expr(&mut self, scope: &Scope, depth: u32) -> Expr {
        if depth == 0 {
            return self.int_leaf(scope);
        }
        match self.rng.gen_range(0..8u32) {
            0 | 1 => self.int_leaf(scope),
            2 => {
                let op = if self.rng.gen_bool(0.5) {
                    UnOp::Neg
                } else {
                    UnOp::Not
                };
                let inner = self.int_expr(scope, depth - 1);
                match (op, inner) {
                    // The parser folds negated literals into `Expr::Int`,
                    // so do the same here to keep round trips exact.
                    (UnOp::Neg, Expr::Int(v)) => Expr::Int(v.wrapping_neg()),
                    (op, inner) => Expr::Unary(op, Box::new(inner)),
                }
            }
            _ => {
                // `/` and `%` are excluded: the only trapping operators.
                const OPS: [BinOp; 11] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                Expr::Binary(
                    op,
                    Box::new(self.int_expr(scope, depth - 1)),
                    Box::new(self.int_expr(scope, depth - 1)),
                )
            }
        }
    }

    fn int_leaf(&mut self, scope: &Scope) -> Expr {
        loop {
            match self.rng.gen_range(0..6u32) {
                0 => return Expr::Int(i64::from(self.rng.gen_range(0..8u32))),
                1 if !scope.ints.is_empty() => {
                    return Expr::Name(self.pick(&scope.ints));
                }
                2 => return Expr::Name(self.scalar()),
                3 if !self.arrays.is_empty() => {
                    let (name, len) = self.array();
                    let idx = self.rng.gen_range(0..len);
                    return Expr::Index(name, Box::new(Expr::Int(i64::from(idx))));
                }
                4 if self.n_volatiles > 0 => return Expr::Name(self.volatile()),
                5 if !scope.objs.is_empty() => {
                    let obj = self.pick(&scope.objs);
                    let field = if self.rng.gen_bool(0.5) { "f" } else { "g" };
                    return Expr::Field(obj, field.into());
                }
                _ => {}
            }
        }
    }

    /// Random-pool locks plus, when the handoff is active, the handoff
    /// monitor as the highest-ordered lock (safe to `sync`, never waited
    /// on outside the template).
    fn lock_pool_len(&self) -> u32 {
        self.n_locks + u32::from(self.handoff)
    }

    fn lock_name(&self, idx: u32) -> String {
        if idx < self.n_locks {
            format!("m{idx}")
        } else {
            HANDOFF_LOCK.into()
        }
    }

    fn scalar(&mut self) -> String {
        format!("s{}", self.rng.gen_range(0..self.n_scalars))
    }

    fn volatile(&mut self) -> String {
        format!("v{}", self.rng.gen_range(0..self.n_volatiles))
    }

    fn array(&mut self) -> (String, u32) {
        let i = self.rng.gen_range(0..self.arrays.len());
        self.arrays[i].clone()
    }

    fn pick(&mut self, pool: &[String]) -> String {
        pool[self.rng.gen_range(0..pool.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_lang::{compile, parse, print};

    #[test]
    fn generated_programs_compile_and_round_trip() {
        let cfg = GenConfig::default();
        for seed in 0..300 {
            let p = generate(seed, &cfg);
            let compiled = compile(&p);
            assert!(
                compiled.is_ok(),
                "seed {seed}: {:?}\n{}",
                compiled.err(),
                print(&p)
            );
            let text = print(&p);
            let reparsed = parse(&text).expect("printer output parses");
            assert_eq!(reparsed, p, "seed {seed}: print/parse round trip");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0, 7, 99] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn knobs_change_the_population() {
        let small = GenConfig {
            max_threads: 1,
            max_locks: 0,
            max_volatiles: 0,
            max_shared_arrays: 0,
            wait_notify: false,
            escaping_objects: false,
            ..GenConfig::default()
        };
        for seed in 0..50 {
            let p = generate(seed, &small);
            assert_eq!(p.functions.len(), 2, "one worker + main");
            assert!(p.locks.is_empty());
            assert!(p.volatiles.is_empty());
            assert!(p.shareds.iter().all(|s| s.len.is_none()));
        }
    }

    #[test]
    fn handoff_template_appears_and_terminates() {
        let cfg = GenConfig {
            max_threads: 3,
            wait_notify: true,
            ..GenConfig::default()
        };
        let mut saw_wait = false;
        for seed in 0..200 {
            let p = generate(seed, &cfg);
            if print(&p).contains("wait hm") {
                saw_wait = true;
                break;
            }
        }
        assert!(saw_wait, "handoff template should appear in the population");
    }
}
