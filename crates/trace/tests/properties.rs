//! Property tests for traces: format round-trips, generator
//! well-formedness, and oracle invariants.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_clock::ThreadId;
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Action, HbOracle, LockId, SiteId, Trace, VarId, VolatileId};

fn arb_action() -> impl Strategy<Value = Action> {
    let t = (0u32..6).prop_map(ThreadId::new);
    let u = (0u32..6).prop_map(ThreadId::new);
    let x = (0u32..10).prop_map(VarId::new);
    let m = (0u32..4).prop_map(LockId::new);
    let v = (0u32..3).prop_map(VolatileId::new);
    let s = (0u32..1000).prop_map(SiteId::new);
    prop_oneof![
        (t.clone(), x.clone(), s.clone()).prop_map(|(t, x, site)| Action::Read { t, x, site }),
        (t.clone(), x, s).prop_map(|(t, x, site)| Action::Write { t, x, site }),
        (t.clone(), m.clone()).prop_map(|(t, m)| Action::Acquire { t, m }),
        (t.clone(), m).prop_map(|(t, m)| Action::Release { t, m }),
        (t.clone(), u.clone()).prop_map(|(t, u)| Action::Fork { t, u }),
        (t.clone(), u).prop_map(|(t, u)| Action::Join { t, u }),
        (t.clone(), v.clone()).prop_map(|(t, v)| Action::VolRead { t, v }),
        (t, v).prop_map(|(t, v)| Action::VolWrite { t, v }),
        Just(Action::SampleBegin),
        Just(Action::SampleEnd),
    ]
}

proptest! {
    // ---- Text format ----

    #[test]
    fn text_format_round_trips_arbitrary_actions(
        actions in prop::collection::vec(arb_action(), 0..60)
    ) {
        // Round-tripping does not require well-formedness: the format is
        // purely syntactic.
        let trace = Trace::from_actions(actions);
        let parsed = Trace::parse(&trace.to_text()).expect("own output parses");
        prop_assert_eq!(parsed, trace);
    }

    // ---- Generator ----

    #[test]
    fn generated_traces_are_always_well_formed(
        seed in 0u64..500,
        discipline in 0.0f64..=1.0,
        threads in 2usize..6,
    ) {
        let trace = GenConfig::small(seed)
            .with_threads(threads)
            .with_lock_discipline(discipline)
            .generate();
        prop_assert!(trace.validate().is_ok());
    }

    #[test]
    fn sampling_overlay_preserves_program_actions(
        seed in 0u64..200,
        rate in 0.01f64..=1.0,
    ) {
        let base = GenConfig::small(seed).generate();
        let sampled = insert_sampling_periods(&base, rate, 25, seed);
        prop_assert!(sampled.validate().is_ok());
        let stripped: Vec<Action> = sampled
            .iter()
            .copied()
            .filter(|a| !a.is_sampling_marker())
            .collect();
        prop_assert_eq!(stripped, base.actions().to_vec());
    }

    // ---- Oracle invariants ----

    #[test]
    fn oracle_race_sets_are_consistent(seed in 0u64..150) {
        let trace = GenConfig::small(seed).with_lock_discipline(0.5).generate();
        let oracle = HbOracle::analyze(&trace);
        let all: std::collections::HashSet<_> =
            oracle.all_races().iter().copied().collect();
        // Shortest ⊆ all.
        for r in oracle.shortest_races() {
            prop_assert!(all.contains(r));
        }
        // Race pairs are ordered and conflict.
        let actions = trace.actions();
        for r in oracle.all_races() {
            prop_assert!(r.first < r.second);
            prop_assert!(actions[r.first].conflicts_with(&actions[r.second]));
            prop_assert_ne!(actions[r.first].thread(), actions[r.second].thread());
            prop_assert!(!oracle.access_happens_before(r.first, r.second));
        }
    }

    #[test]
    fn guaranteed_races_are_shortest_races(seed in 0u64..100, rate in 0.1f64..=0.9) {
        let base = GenConfig::small(seed).with_lock_discipline(0.5).generate();
        let trace = insert_sampling_periods(&base, rate, 20, seed + 1);
        let oracle = HbOracle::analyze(&trace);
        let shortest: std::collections::HashSet<_> =
            oracle.sampled_shortest_races(&trace).into_iter().collect();
        for r in oracle.sampled_guaranteed_races(&trace) {
            prop_assert!(shortest.contains(&r), "guaranteed ⊆ sampled shortest");
        }
    }

    #[test]
    fn full_sampling_guarantees_every_shortest_race(seed in 0u64..100) {
        let base = GenConfig::small(seed).with_lock_discipline(0.5).generate();
        let trace = insert_sampling_periods(&base, 1.0, 20, 0);
        let oracle = HbOracle::analyze(&trace);
        // Under 100% sampling, sampled-shortest = shortest.
        prop_assert_eq!(
            oracle.sampled_shortest_races(&trace).len(),
            oracle.shortest_races().len()
        );
    }

    #[test]
    fn race_free_traces_have_empty_oracle(seed in 0u64..150) {
        let trace = GenConfig::small(seed).race_free().generate();
        let oracle = HbOracle::analyze(&trace);
        prop_assert!(oracle.is_race_free());
        prop_assert!(oracle.shortest_races().is_empty());
        prop_assert!(oracle.racy_vars().is_empty());
        prop_assert!(oracle.distinct_races().is_empty());
    }

    // ---- Stats ----

    #[test]
    fn stats_total_matches_length(actions in prop::collection::vec(arb_action(), 0..80)) {
        let trace = Trace::from_actions(actions);
        prop_assert_eq!(trace.stats().total(), trace.len() as u64);
    }
}
