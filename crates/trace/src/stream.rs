//! One shared frame-decode entry point for trace streams.
//!
//! `pacer replay` and the `pacer serve` ingest path both accept "a trace,
//! by content": binary `.ptrace` streams (TRACE_FORMAT.md) are decoded
//! frame by frame with bounded memory, anything else is parsed as the
//! text fixture format. [`AnyTraceReader`] owns that sniff-and-dispatch
//! step; [`ValidatedActions`] layers the §A well-formedness check
//! ([`TraceValidator`]) plus the action/thread accounting every consumer
//! reports, so the CLI and the service cannot drift apart on either.
//!
//! The split between the two types is deliberate: resampling overlays
//! (`ResampleSampling`) rewrite sampling markers *between* decoding and
//! validation, so decode and validate must be separately stackable.

use std::io::{self, Read};

use crate::binary::{is_binary_trace, BinaryTraceError};
use crate::{
    Action, ActionStats, ParseTraceError, Trace, TraceReader, TraceValidator, ValidateTraceError,
};

/// How many leading bytes the encoding sniff examines (the `PTRC` magic).
const SNIFF_LEN: usize = 4;

/// A failure while decoding a trace stream, from either encoding.
#[derive(Debug)]
pub enum TraceStreamError {
    /// Frame-level failure in a binary stream (bad magic, checksum
    /// mismatch, corrupt payload, …).
    Binary(BinaryTraceError),
    /// Malformed text trace.
    Parse(ParseTraceError),
    /// A text-sniffed stream that is not valid UTF-8.
    NotUtf8(std::string::FromUtf8Error),
    /// I/O failure reading the stream.
    Io(io::Error),
}

impl std::fmt::Display for TraceStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStreamError::Binary(e) => write!(f, "{e}"),
            TraceStreamError::Parse(e) => write!(f, "{e}"),
            TraceStreamError::NotUtf8(e) => write!(f, "not UTF-8: {e}"),
            TraceStreamError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceStreamError {}

impl From<BinaryTraceError> for TraceStreamError {
    fn from(e: BinaryTraceError) -> Self {
        TraceStreamError::Binary(e)
    }
}

impl From<io::Error> for TraceStreamError {
    fn from(e: io::Error) -> Self {
        TraceStreamError::Io(e)
    }
}

impl TraceStreamError {
    /// True for binary frame-level failures — the "corrupt complete
    /// frame is a hard error" half of the TRACE_FORMAT.md contract (a
    /// truncated tail never surfaces here; it ends the stream cleanly
    /// and sets [`AnyTraceReader::truncated`]).
    pub fn is_binary(&self) -> bool {
        matches!(self, TraceStreamError::Binary(_))
    }
}

enum Inner<R: Read> {
    Binary(TraceReader<io::Chain<io::Cursor<Vec<u8>>, R>>),
    Text(std::vec::IntoIter<Action>),
}

/// A streaming action reader over either trace encoding, auto-detected
/// by content.
///
/// Binary streams never materialize: frames decode one at a time, a
/// mid-frame cut is a clean partial stop ([`truncated`]), and a corrupt
/// complete frame is a hard error from the iterator. Text streams are
/// read to the end and parsed once (the fixture format has no framing to
/// stream over).
///
/// [`truncated`]: AnyTraceReader::truncated
///
/// # Examples
///
/// ```
/// use pacer_trace::{stream::AnyTraceReader, Trace};
///
/// let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\njoin t0 t1\n").unwrap();
/// let bytes = trace.to_binary();
/// let mut reader = AnyTraceReader::new(&bytes[..]).unwrap();
/// let decoded: Result<Vec<_>, _> = reader.by_ref().collect();
/// assert_eq!(decoded.unwrap(), trace.actions());
/// assert!(reader.is_binary() && !reader.truncated());
/// ```
pub struct AnyTraceReader<R: Read> {
    inner: Inner<R>,
}

impl<R: Read> AnyTraceReader<R> {
    /// Sniffs the first bytes of `src` and opens the matching decoder.
    ///
    /// # Errors
    ///
    /// Binary header errors, text parse/UTF-8 errors, or I/O.
    pub fn new(mut src: R) -> Result<Self, TraceStreamError> {
        let mut head = [0u8; SNIFF_LEN];
        let mut got = 0;
        while got < head.len() {
            match src.read(&mut head[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TraceStreamError::Io(e)),
            }
        }
        let inner = if is_binary_trace(&head[..got]) {
            // Re-chain the sniffed bytes in front so TraceReader sees the
            // full header; sources need not be seekable (sockets aren't).
            let chained = io::Cursor::new(head[..got].to_vec()).chain(src);
            Inner::Binary(TraceReader::new(chained)?)
        } else {
            let mut bytes = head[..got].to_vec();
            src.read_to_end(&mut bytes)?;
            let text = String::from_utf8(bytes).map_err(TraceStreamError::NotUtf8)?;
            let trace = Trace::parse(&text).map_err(TraceStreamError::Parse)?;
            Inner::Text(trace.actions().to_vec().into_iter())
        };
        Ok(AnyTraceReader { inner })
    }

    /// Whether the sniff chose the binary decoder.
    pub fn is_binary(&self) -> bool {
        matches!(self.inner, Inner::Binary(_))
    }

    /// Whether a binary stream ended mid-header or mid-frame (a crash or
    /// disconnect artifact). Meaningful once iteration has returned
    /// `None`; always `false` for text streams.
    pub fn truncated(&self) -> bool {
        match &self.inner {
            Inner::Binary(r) => r.truncated(),
            Inner::Text(_) => false,
        }
    }

    /// Complete binary frames consumed so far (0 for text).
    pub fn frames(&self) -> u64 {
        match &self.inner {
            Inner::Binary(r) => r.frames(),
            Inner::Text(_) => 0,
        }
    }

    /// Events yielded from complete binary frames so far (0 for text).
    pub fn events(&self) -> u64 {
        match &self.inner {
            Inner::Binary(r) => r.events(),
            Inner::Text(_) => 0,
        }
    }

    /// The user-facing truncation note both `pacer replay` and `pacer
    /// serve` print for a mid-frame cut, or `None` for an intact stream.
    pub fn truncation_note(&self) -> Option<String> {
        if !self.truncated() {
            return None;
        }
        Some(format!(
            "note: trace ends mid-frame; analyzed the {} complete frame(s) ({} events)",
            self.frames(),
            self.events()
        ))
    }
}

impl<R: Read> Iterator for AnyTraceReader<R> {
    type Item = Result<Action, TraceStreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            Inner::Binary(r) => r.next().map(|res| res.map_err(TraceStreamError::from)),
            Inner::Text(iter) => iter.next().map(Ok),
        }
    }
}

/// Wraps an action iterator with the §A well-formedness check and the
/// stream accounting every report line needs: [`ActionStats`] per action
/// kind and the number of threads mentioned.
///
/// Iteration stops at the first invalid action; the violation is held in
/// [`error`](ValidatedActions::error) so the consumer can surface it
/// after draining (matching how a sequential check-then-apply loop would
/// have stopped).
pub struct ValidatedActions<I> {
    inner: I,
    validator: TraceValidator,
    stats: ActionStats,
    max_thread: Option<usize>,
    error: Option<ValidateTraceError>,
}

impl<I: Iterator<Item = Action>> ValidatedActions<I> {
    /// Wraps `inner` with a fresh validator and zeroed counters.
    pub fn new(inner: I) -> Self {
        ValidatedActions {
            inner,
            validator: TraceValidator::new(),
            stats: ActionStats::default(),
            max_thread: None,
            error: None,
        }
    }

    /// Counts of the actions yielded so far.
    pub fn stats(&self) -> &ActionStats {
        &self.stats
    }

    /// Number of threads mentioned so far (max dense index + 1, counting
    /// fork/join targets that never act themselves).
    pub fn threads(&self) -> usize {
        self.max_thread.map_or(0, |m| m + 1)
    }

    /// The validation failure that stopped iteration, if any.
    pub fn error(&self) -> Option<&ValidateTraceError> {
        self.error.as_ref()
    }
}

impl<I: Iterator<Item = Action>> Iterator for ValidatedActions<I> {
    type Item = Action;

    fn next(&mut self) -> Option<Action> {
        if self.error.is_some() {
            return None;
        }
        let action = self.inner.next()?;
        if let Err(e) = self.validator.check(&action) {
            self.error = Some(e);
            return None;
        }
        self.stats.count(&action);
        let see = |idx: usize, max: &mut Option<usize>| {
            *max = Some(max.map_or(idx, |m| m.max(idx)));
        };
        if let Some(t) = action.thread() {
            see(t.index(), &mut self.max_thread);
        }
        match action {
            Action::Fork { u, .. } | Action::Join { u, .. } => {
                see(u.index(), &mut self.max_thread);
            }
            _ => {}
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::encode_trace;

    fn sample() -> Trace {
        Trace::parse(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s0
            rd t1 x0 s1
            send
            join t0 t1
        ",
        )
        .unwrap()
    }

    #[test]
    fn binary_and_text_decode_identically() {
        let trace = sample();
        let binary = encode_trace(&trace);
        let text = trace.to_text();

        let from_bin: Vec<_> = AnyTraceReader::new(&binary[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let from_text: Vec<_> = AnyTraceReader::new(text.as_bytes())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(from_bin, trace.actions());
        assert_eq!(from_text, trace.actions());
    }

    #[test]
    fn sniff_picks_encoding() {
        let trace = sample();
        assert!(AnyTraceReader::new(&trace.to_binary()[..])
            .unwrap()
            .is_binary());
        assert!(!AnyTraceReader::new(trace.to_text().as_bytes())
            .unwrap()
            .is_binary());
    }

    #[test]
    fn truncated_binary_is_a_clean_partial_stop() {
        let trace = sample();
        let bytes = trace.to_binary();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = AnyTraceReader::new(cut).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        assert!(decoded.len() < trace.len());
        assert!(reader.truncated());
        let note = reader.truncation_note().unwrap();
        assert!(note.starts_with("note: trace ends mid-frame"), "{note}");
    }

    #[test]
    fn corrupt_complete_frame_is_a_hard_error() {
        let trace = sample();
        let mut bytes = trace.to_binary();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit, length intact
        let reader = AnyTraceReader::new(&bytes[..]).unwrap();
        let result: Result<Vec<_>, _> = reader.collect();
        assert!(
            matches!(result, Err(e) if e.is_binary()),
            "checksum must fail hard"
        );
    }

    #[test]
    fn garbage_falls_back_to_text_and_fails_to_parse() {
        let result = AnyTraceReader::new(&b"not a trace\n"[..]);
        assert!(matches!(result, Err(TraceStreamError::Parse(_))));
    }

    #[test]
    fn validated_actions_count_and_stop_on_violation() {
        let trace = sample();
        let mut v = ValidatedActions::new(trace.iter().copied());
        let n = v.by_ref().count();
        assert_eq!(n, trace.len());
        assert!(v.error().is_none());
        assert_eq!(v.stats().total(), trace.len() as u64);
        assert_eq!(v.threads(), 2);

        // `send` without `sbegin` violates marker alternation.
        let bad = [Action::SampleEnd];
        let mut v = ValidatedActions::new(bad.iter().copied());
        assert_eq!(v.by_ref().count(), 0);
        assert!(v.error().is_some());
    }
}
