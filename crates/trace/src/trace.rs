//! Trace containers and well-formedness validation.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use pacer_clock::ThreadId;

use crate::{Action, ActionStats, ParseTraceError};

/// A sequence of [`Action`]s: the trace `α` of Appendix A.
///
/// Traces can be recorded by the simulated runtime, generated randomly, or
/// parsed from the text fixture format (see [`Trace::parse`]). The
/// well-formedness conditions of §A (lock ownership, fork-before-first-use,
/// no-action-after-join, …) are checked by [`Trace::validate`].
///
/// # Examples
///
/// ```
/// use pacer_trace::{Action, Trace, VarId, SiteId};
/// use pacer_clock::ThreadId;
///
/// let mut trace = Trace::new();
/// trace.push(Action::Write {
///     t: ThreadId::new(0),
///     x: VarId::new(0),
///     site: SiteId::new(1),
/// });
/// assert_eq!(trace.len(), 1);
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    actions: Vec<Action>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            actions: Vec::new(),
        }
    }

    /// Creates a trace from a vector of actions.
    pub fn from_actions(actions: Vec<Action>) -> Self {
        Trace { actions }
    }

    /// Appends one action: `α.b`.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// The actions, in program order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the trace has no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.actions.iter()
    }

    /// The number of distinct threads that appear (including fork targets).
    pub fn thread_count(&self) -> usize {
        let mut max = 0usize;
        let mut any = false;
        for a in &self.actions {
            let mut see = |t: ThreadId| {
                any = true;
                max = max.max(t.index());
            };
            if let Some(t) = a.thread() {
                see(t);
            }
            match *a {
                Action::Fork { u, .. } | Action::Join { u, .. } => see(u),
                _ => {}
            }
        }
        if any {
            max + 1
        } else {
            0
        }
    }

    /// Per-action-kind counts.
    pub fn stats(&self) -> ActionStats {
        ActionStats::of(&self.actions)
    }

    /// Parses a trace from the text fixture format; see the
    /// [crate docs](crate) for an example.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] with the offending line number on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
        crate::text::parse(text)
    }

    /// Renders the trace in the text fixture format, one action per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for a in &self.actions {
            out.push_str(&a.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the trace to a file in the text fixture format. The write
    /// is atomic (write-temp-then-rename): a crash mid-save never leaves
    /// a truncated trace behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        pacer_collections::atomic_write(path, self.to_text())
    }

    /// Reads a trace from a file in the text fixture format.
    ///
    /// # Errors
    ///
    /// Returns an `InvalidData` error wrapping the [`ParseTraceError`] on
    /// malformed content, or the underlying I/O error.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Encodes the trace in the binary `.ptrace` format (TRACE_FORMAT.md).
    pub fn to_binary(&self) -> Vec<u8> {
        crate::binary::encode_trace(self)
    }

    /// Strictly decodes a trace from the binary `.ptrace` format.
    ///
    /// # Errors
    ///
    /// Any [`BinaryTraceError`](crate::BinaryTraceError); a truncated tail
    /// is an error here (use [`TraceReader`](crate::TraceReader) to
    /// tolerate crash-truncated streams).
    pub fn from_binary(bytes: &[u8]) -> Result<Trace, crate::BinaryTraceError> {
        crate::binary::decode_trace(bytes)
    }

    /// Writes the trace to a file in the binary `.ptrace` format,
    /// atomically (write-temp-then-rename), like [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn save_binary(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        pacer_collections::atomic_write(path, self.to_binary())
    }

    /// Reads a trace from a file in the binary `.ptrace` format.
    ///
    /// # Errors
    ///
    /// Returns an `InvalidData` error wrapping the
    /// [`BinaryTraceError`](crate::BinaryTraceError) on damaged content
    /// (including a truncated tail), or the underlying I/O error.
    pub fn load_binary(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        Trace::from_binary(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Reads a trace from a file in either format, auto-detected by
    /// content: files beginning with the `PTRC` magic are decoded as
    /// binary, everything else is parsed as text.
    ///
    /// # Errors
    ///
    /// As [`Trace::load`] / [`Trace::load_binary`] for the detected
    /// format.
    pub fn load_any(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        if crate::binary::is_binary_trace(&bytes) {
            return Trace::from_binary(&bytes)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
        let text = String::from_utf8(bytes).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("not UTF-8: {e}"))
        })?;
        Trace::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Checks the §A well-formedness conditions:
    ///
    /// * a lock is never acquired while another thread holds it, and never
    ///   released by a non-holder;
    /// * a thread is forked at most once and never performs actions before
    ///   its fork or after being joined;
    /// * sampling markers are properly alternating (`sbegin` only outside a
    ///   sampling period, `send` only inside).
    ///
    /// Thread 0 is the implicit main thread and needs no fork.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition with its action index.
    pub fn validate(&self) -> Result<(), ValidateTraceError> {
        let mut validator = TraceValidator::new();
        for a in &self.actions {
            validator.check(a)?;
        }
        Ok(())
    }

    /// Returns, for each action index, whether the analysis is inside a
    /// sampling period at that action (markers themselves are attributed to
    /// the period they open/close: `sbegin` counts as sampling, `send` as
    /// not).
    pub fn sampling_mask(&self) -> Vec<bool> {
        let mut mask = Vec::with_capacity(self.actions.len());
        let mut sampling = false;
        for a in &self.actions {
            match a {
                Action::SampleBegin => {
                    sampling = true;
                    mask.push(true);
                }
                Action::SampleEnd => {
                    sampling = false;
                    mask.push(false);
                }
                _ => mask.push(sampling),
            }
        }
        mask
    }
}

impl FromIterator<Action> for Trace {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        Trace {
            actions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Action> for Trace {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

/// Incremental checker for the §A well-formedness conditions.
///
/// [`Trace::validate`] is this validator run over a materialized trace;
/// streaming consumers (the binary replay path, most importantly) feed it
/// one action at a time instead, so arbitrarily large `.ptrace` files can
/// be validated in bounded memory while the detector runs.
///
/// After the first error the validator is poisoned: state updates from the
/// offending action were not applied, so further `check` calls have
/// unspecified (but panic-free) results. Stop at the first `Err`, as
/// [`Trace::validate`] does.
///
/// # Examples
///
/// ```
/// use pacer_trace::{Action, TraceValidator};
///
/// let mut v = TraceValidator::new();
/// assert!(v.check(&Action::SampleBegin).is_ok());
/// assert!(v.check(&Action::SampleBegin).is_err()); // already sampling
/// ```
#[derive(Clone, Debug)]
pub struct TraceValidator {
    lock_holder: std::collections::HashMap<crate::LockId, ThreadId>,
    forked: HashSet<ThreadId>,
    /// Threads allowed to act: thread 0 (the implicit main thread, seeded
    /// at construction) plus every fork target seen so far.
    started: HashSet<ThreadId>,
    joined: HashSet<ThreadId>,
    sampling: bool,
    index: usize,
}

impl Default for TraceValidator {
    fn default() -> Self {
        TraceValidator::new()
    }
}

impl TraceValidator {
    /// Creates a validator in the initial state: no locks held, only
    /// thread 0 started, not sampling.
    pub fn new() -> Self {
        TraceValidator {
            lock_holder: std::collections::HashMap::new(),
            forked: HashSet::new(),
            started: HashSet::from([ThreadId::new(0)]),
            joined: HashSet::new(),
            sampling: false,
            index: 0,
        }
    }

    /// Number of actions checked so far (the index reported in errors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Checks the next action of the trace.
    ///
    /// # Errors
    ///
    /// The violated condition, carrying the action's index.
    pub fn check(&mut self, a: &Action) -> Result<(), ValidateTraceError> {
        use ValidateTraceError as E;
        let i = self.index;
        if let Some(t) = a.thread() {
            if self.joined.contains(&t) {
                return Err(E::ActionAfterJoin { index: i, t });
            }
            if !self.started.contains(&t) {
                return Err(E::ActionBeforeFork { index: i, t });
            }
        }
        match *a {
            Action::Acquire { t, m } => {
                if let Some(&holder) = self.lock_holder.get(&m) {
                    return Err(E::AcquireHeldLock {
                        index: i,
                        t,
                        m,
                        holder,
                    });
                }
                self.lock_holder.insert(m, t);
            }
            Action::Release { t, m } => {
                if self.lock_holder.get(&m) != Some(&t) {
                    return Err(E::ReleaseUnheldLock { index: i, t, m });
                }
                self.lock_holder.remove(&m);
            }
            Action::Fork { t, u } => {
                if t == u {
                    return Err(E::SelfFork { index: i, t });
                }
                if !self.forked.insert(u) || u == ThreadId::new(0) {
                    return Err(E::DoubleFork { index: i, u });
                }
                self.started.insert(u);
            }
            Action::Join { t, u } => {
                if t == u {
                    return Err(E::SelfJoin { index: i, t });
                }
                if !self.started.contains(&u) {
                    return Err(E::JoinUnstarted { index: i, u });
                }
                self.joined.insert(u);
            }
            Action::SampleBegin => {
                if self.sampling {
                    return Err(E::UnbalancedSampling { index: i });
                }
                self.sampling = true;
            }
            Action::SampleEnd => {
                if !self.sampling {
                    return Err(E::UnbalancedSampling { index: i });
                }
                self.sampling = false;
            }
            _ => {}
        }
        self.index += 1;
        Ok(())
    }
}

/// A violation of the §A trace well-formedness conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateTraceError {
    /// A thread acquired a lock already held by another thread.
    AcquireHeldLock {
        /// Action index.
        index: usize,
        /// Acquiring thread.
        t: ThreadId,
        /// The lock.
        m: crate::LockId,
        /// Current holder.
        holder: ThreadId,
    },
    /// A thread released a lock it does not hold.
    ReleaseUnheldLock {
        /// Action index.
        index: usize,
        /// Releasing thread.
        t: ThreadId,
        /// The lock.
        m: crate::LockId,
    },
    /// A thread acted before being forked.
    ActionBeforeFork {
        /// Action index.
        index: usize,
        /// The offending thread.
        t: ThreadId,
    },
    /// A thread acted after being joined.
    ActionAfterJoin {
        /// Action index.
        index: usize,
        /// The offending thread.
        t: ThreadId,
    },
    /// A thread was forked twice (or thread 0 was forked).
    DoubleFork {
        /// Action index.
        index: usize,
        /// The forked thread.
        u: ThreadId,
    },
    /// A join of a thread that never started.
    JoinUnstarted {
        /// Action index.
        index: usize,
        /// The joined thread.
        u: ThreadId,
    },
    /// A thread forked itself.
    SelfFork {
        /// Action index.
        index: usize,
        /// The thread.
        t: ThreadId,
    },
    /// A thread joined itself.
    SelfJoin {
        /// Action index.
        index: usize,
        /// The thread.
        t: ThreadId,
    },
    /// `sbegin` inside a sampling period or `send` outside one.
    UnbalancedSampling {
        /// Action index.
        index: usize,
    },
}

impl fmt::Display for ValidateTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidateTraceError as E;
        match self {
            E::AcquireHeldLock {
                index,
                t,
                m,
                holder,
            } => write!(f, "action {index}: {t} acquires {m} held by {holder}"),
            E::ReleaseUnheldLock { index, t, m } => {
                write!(f, "action {index}: {t} releases {m} it does not hold")
            }
            E::ActionBeforeFork { index, t } => {
                write!(f, "action {index}: {t} acts before being forked")
            }
            E::ActionAfterJoin { index, t } => {
                write!(f, "action {index}: {t} acts after being joined")
            }
            E::DoubleFork { index, u } => write!(f, "action {index}: {u} forked twice"),
            E::JoinUnstarted { index, u } => {
                write!(f, "action {index}: join of unstarted thread {u}")
            }
            E::SelfFork { index, t } => write!(f, "action {index}: {t} forks itself"),
            E::SelfJoin { index, t } => write!(f, "action {index}: {t} joins itself"),
            E::UnbalancedSampling { index } => {
                write!(f, "action {index}: unbalanced sampling marker")
            }
        }
    }
}

impl Error for ValidateTraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockId, SiteId, VarId};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    fn rd(ti: u32, x: u32) -> Action {
        Action::Read {
            t: t(ti),
            x: VarId::new(x),
            site: SiteId::new(0),
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.thread_count(), 0);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn thread_count_includes_fork_targets() {
        let trace = Trace::from_actions(vec![Action::Fork { t: t(0), u: t(3) }]);
        assert_eq!(trace.thread_count(), 4);
    }

    #[test]
    fn double_acquire_is_rejected() {
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::Acquire {
                t: t(0),
                m: LockId::new(0),
            },
            Action::Acquire {
                t: t(1),
                m: LockId::new(0),
            },
        ]);
        assert!(matches!(
            trace.validate(),
            Err(ValidateTraceError::AcquireHeldLock { index: 2, .. })
        ));
    }

    #[test]
    fn release_by_nonholder_is_rejected() {
        let trace = Trace::from_actions(vec![Action::Release {
            t: t(0),
            m: LockId::new(0),
        }]);
        assert!(matches!(
            trace.validate(),
            Err(ValidateTraceError::ReleaseUnheldLock { .. })
        ));
    }

    #[test]
    fn act_before_fork_is_rejected() {
        let trace = Trace::from_actions(vec![rd(1, 0)]);
        assert!(matches!(
            trace.validate(),
            Err(ValidateTraceError::ActionBeforeFork { t, .. }) if t == ThreadId::new(1)
        ));
    }

    #[test]
    fn act_after_join_is_rejected() {
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::Join { t: t(0), u: t(1) },
            rd(1, 0),
        ]);
        assert!(matches!(
            trace.validate(),
            Err(ValidateTraceError::ActionAfterJoin { index: 2, .. })
        ));
    }

    #[test]
    fn self_fork_and_join_rejected() {
        assert!(matches!(
            Trace::from_actions(vec![Action::Fork { t: t(0), u: t(0) }]).validate(),
            Err(ValidateTraceError::SelfFork { .. })
        ));
        assert!(matches!(
            Trace::from_actions(vec![Action::Join { t: t(0), u: t(0) }]).validate(),
            Err(ValidateTraceError::SelfJoin { .. })
        ));
    }

    #[test]
    fn unbalanced_sampling_markers_rejected() {
        assert!(matches!(
            Trace::from_actions(vec![Action::SampleEnd]).validate(),
            Err(ValidateTraceError::UnbalancedSampling { index: 0 })
        ));
        assert!(matches!(
            Trace::from_actions(vec![Action::SampleBegin, Action::SampleBegin]).validate(),
            Err(ValidateTraceError::UnbalancedSampling { index: 1 })
        ));
    }

    #[test]
    fn valid_locked_program() {
        let m = LockId::new(0);
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::Acquire { t: t(0), m },
            rd(0, 0),
            Action::Release { t: t(0), m },
            Action::Acquire { t: t(1), m },
            rd(1, 0),
            Action::Release { t: t(1), m },
            Action::Join { t: t(0), u: t(1) },
        ]);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn sampling_mask_attributes_markers() {
        let trace = Trace::from_actions(vec![
            rd(0, 0),
            Action::SampleBegin,
            rd(0, 0),
            Action::SampleEnd,
            rd(0, 0),
        ]);
        assert_eq!(trace.sampling_mask(), vec![false, true, true, false, false]);
    }

    #[test]
    fn text_round_trip() {
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::SampleBegin,
            rd(1, 2),
            Action::SampleEnd,
        ]);
        let parsed = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn collect_and_extend() {
        let mut trace: Trace = vec![rd(0, 0)].into_iter().collect();
        trace.extend(vec![rd(0, 1)]);
        assert_eq!(trace.len(), 2);
        assert_eq!((&trace).into_iter().count(), 2);
    }

    #[test]
    fn error_messages_render() {
        let err = Trace::from_actions(vec![Action::SampleEnd])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("unbalanced"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::SampleBegin,
            rd(1, 2),
            Action::SampleEnd,
        ]);
        let path = std::env::temp_dir().join("pacer_trace_io_test.trace");
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_malformed_content() {
        let path = std::env::temp_dir().join("pacer_trace_io_bad.trace");
        std::fs::write(&path, "bogus t0").unwrap();
        let err = Trace::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bogus"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_not_found() {
        let err = Trace::load("/nonexistent/pacer.trace").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn parse_survives_truncated_and_bit_flipped_traces() {
        // A trace file that arrives damaged must produce a structured
        // parse error, never a panic.
        let trace = Trace::from_actions(vec![
            Action::Fork { t: t(0), u: t(1) },
            Action::SampleBegin,
            rd(1, 2),
            Action::Write {
                t: t(1),
                x: VarId::new(2),
                site: SiteId::new(1),
            },
            Action::SampleEnd,
            Action::Join { t: t(0), u: t(1) },
        ]);
        let good = trace.to_text();
        for cut in 0..good.len() {
            let _ = Trace::parse(&good[..cut]); // Ok or Err, never a panic
        }
        let bytes = good.as_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x04;
            if let Ok(text) = String::from_utf8(flipped) {
                let _ = Trace::parse(&text);
            }
        }
    }
}
