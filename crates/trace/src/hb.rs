//! A ground-truth happens-before oracle.
//!
//! [`HbOracle`] replays a trace with the full GENERIC vector-clock semantics
//! (Algorithms 1–4, 14–15 of the paper) and stamps every data access with
//! its thread's vector clock. From the stamps it enumerates **all** races
//! and all **shortest** races (Definition 5), independently of any detector
//! implementation. The test suites use it to check precision (detectors
//! report only true races), completeness (race-free traces produce no
//! reports), and PACER's guarantee (every *sampled shortest* race is
//! reported, Definition 4 / Theorem 2).
//!
//! The oracle is `O(k²)` per variable with `k` accesses, so it is meant for
//! test-sized traces, not production monitoring.

use std::collections::HashMap;

use pacer_clock::{ThreadId, VectorClock};

use crate::{AccessKind, Action, SiteId, Trace, VarId};

/// A race between the accesses at two trace indices (`first < second`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RacePair {
    /// Index of the earlier access in the trace.
    pub first: usize,
    /// Index of the later access.
    pub second: usize,
}

#[derive(Clone, Debug)]
struct AccessEvent {
    index: usize,
    tid: ThreadId,
    x: VarId,
    kind: AccessKind,
    site: SiteId,
    stamp: VectorClock,
    /// The thread's own clock component under PACER's increment rules
    /// (timeless non-sampling periods, global increment at `sbegin`):
    /// accesses with equal `(tid, pacer_comp)` are one *epoch group* that
    /// epoch-based detectors cannot tell apart.
    pacer_comp: u64,
}

/// The happens-before analysis of one trace; see the module docs above.
#[derive(Clone, Debug)]
pub struct HbOracle {
    accesses: Vec<AccessEvent>,
    /// Map from trace index to position in `accesses`.
    by_index: HashMap<usize, usize>,
    all: Vec<RacePair>,
    shortest: Vec<RacePair>,
}

impl HbOracle {
    /// Replays `trace` with GENERIC semantics and computes every race.
    pub fn analyze(trace: &Trace) -> Self {
        let n = trace.thread_count().max(1);
        let mut threads: Vec<VectorClock> = (0..n)
            .map(|i| {
                let mut c = VectorClock::new();
                c.increment(ThreadId::new(i as u32));
                c
            })
            .collect();
        let mut locks: HashMap<crate::LockId, VectorClock> = HashMap::new();
        let mut volatiles: HashMap<crate::VolatileId, VectorClock> = HashMap::new();

        // PACER-semantics epoch components: frozen outside sampling
        // periods, bumped for every seen thread at sbegin (Table 5).
        let mut pacer_comp: Vec<u64> = vec![1; n];
        let mut seen: Vec<bool> = vec![false; n];
        let mut sampling = false;
        let pacer_inc = |pacer_comp: &mut Vec<u64>, sampling: bool, t: ThreadId| {
            if sampling {
                pacer_comp[t.index()] += 1;
            }
        };

        let mut accesses: Vec<AccessEvent> = Vec::new();
        for (index, action) in trace.iter().enumerate() {
            if let Some(t) = action.thread() {
                seen[t.index()] = true;
            }
            match *action {
                Action::Read { t, x, site } | Action::Write { t, x, site } => {
                    let kind = if matches!(action, Action::Read { .. }) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    accesses.push(AccessEvent {
                        index,
                        tid: t,
                        x,
                        kind,
                        site,
                        stamp: threads[t.index()].clone(),
                        pacer_comp: pacer_comp[t.index()],
                    });
                }
                Action::Acquire { t, m } => {
                    if let Some(cm) = locks.get(&m) {
                        threads[t.index()].join(cm);
                    }
                }
                Action::Release { t, m } => {
                    locks.insert(m, threads[t.index()].clone());
                    threads[t.index()].increment(t);
                    pacer_inc(&mut pacer_comp, sampling, t);
                }
                Action::Fork { t, u } => {
                    seen[u.index()] = true;
                    let ct = threads[t.index()].clone();
                    let cu = &mut threads[u.index()];
                    *cu = ct;
                    cu.increment(u);
                    threads[t.index()].increment(t);
                    pacer_inc(&mut pacer_comp, sampling, t);
                }
                Action::Join { t, u } => {
                    let cu = threads[u.index()].clone();
                    threads[t.index()].join(&cu);
                    threads[u.index()].increment(u);
                    pacer_inc(&mut pacer_comp, sampling, u);
                }
                Action::VolRead { t, v } => {
                    if let Some(cv) = volatiles.get(&v) {
                        threads[t.index()].join(cv);
                    }
                }
                Action::VolWrite { t, v } => {
                    let ct = threads[t.index()].clone();
                    let cv = volatiles.entry(v).or_default();
                    cv.join(&ct);
                    threads[t.index()].increment(t);
                    pacer_inc(&mut pacer_comp, sampling, t);
                }
                Action::SampleBegin => {
                    sampling = true;
                    for (i, comp) in pacer_comp.iter_mut().enumerate() {
                        if seen[i] {
                            *comp += 1;
                        }
                    }
                }
                Action::SampleEnd => {
                    sampling = false;
                }
            }
        }

        let by_index: HashMap<usize, usize> = accesses
            .iter()
            .enumerate()
            .map(|(pos, e)| (e.index, pos))
            .collect();

        // Group accesses per variable, in trace order.
        let mut per_var: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (pos, e) in accesses.iter().enumerate() {
            per_var.entry(e.x).or_default().push(pos);
        }

        let races_between = |a: &AccessEvent, b: &AccessEvent| -> bool {
            debug_assert!(a.index < b.index);
            a.kind.conflicts_with(b.kind) && a.tid != b.tid && !hb(a, b)
        };

        let mut all = Vec::new();
        let mut shortest = Vec::new();
        for positions in per_var.values() {
            for (bi, &bpos) in positions.iter().enumerate() {
                let b = &accesses[bpos];
                let mut nearest_found = false;
                // Walk backwards: the nearest racing partner gives the
                // shortest race (Definition 5 — no intervening conflicting
                // access concurrent with `b`).
                for &apos in positions[..bi].iter().rev() {
                    let a = &accesses[apos];
                    if races_between(a, b) {
                        all.push(RacePair {
                            first: a.index,
                            second: b.index,
                        });
                        if !nearest_found {
                            shortest.push(RacePair {
                                first: a.index,
                                second: b.index,
                            });
                            nearest_found = true;
                        }
                    }
                }
            }
        }
        all.sort();
        shortest.sort();

        HbOracle {
            accesses,
            by_index,
            all,
            shortest,
        }
    }

    /// All races: every pair of conflicting concurrent accesses.
    pub fn all_races(&self) -> &[RacePair] {
        &self.all
    }

    /// All *shortest* races (Definition 5): races with no intervening access
    /// that conflicts with and is concurrent with the second access.
    pub fn shortest_races(&self) -> &[RacePair] {
        &self.shortest
    }

    /// Returns `true` if the trace contains no data race.
    pub fn is_race_free(&self) -> bool {
        self.all.is_empty()
    }

    /// The shortest races whose **first** access lies in a sampling period.
    pub fn sampled_shortest_races(&self, trace: &Trace) -> Vec<RacePair> {
        let mask = trace.sampling_mask();
        self.shortest
            .iter()
            .copied()
            .filter(|r| mask[r.first])
            .collect()
    }

    /// The races a continuing (report-and-go-on) PACER implementation
    /// *guarantees* to report: sampled races with **no intervening racy
    /// access** to the same variable (§1's definition of shortest).
    ///
    /// This is slightly stronger than Definition 5: an intervening access
    /// `d` disqualifies `(a, b)` if it races with the *second* access
    /// (`d ∦ b`, Definition 5) **or** with the *first* (`a ∦ d`). In the
    /// formal semantics the analysis becomes stuck at the `(a, d)` race, so
    /// the distinction never arises; an implementation that reports `(a, d)`
    /// and continues has already discarded `a`'s metadata by the time `b`
    /// executes, and reports `(a, d)` instead of `(a, b)`.
    pub fn sampled_guaranteed_races(&self, trace: &Trace) -> Vec<RacePair> {
        let mask = trace.sampling_mask();
        let mut per_var: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (pos, e) in self.accesses.iter().enumerate() {
            per_var.entry(e.x).or_default().push(pos);
        }
        self.shortest
            .iter()
            .copied()
            .filter(|r| mask[r.first])
            .filter(|r| {
                let a = &self.accesses[self.by_index[&r.first]];
                let b = &self.accesses[self.by_index[&r.second]];
                let no_intervening_racer = per_var[&a.x]
                    .iter()
                    .map(|&pos| &self.accesses[pos])
                    .filter(|d| d.index > a.index && d.index < b.index)
                    .all(|d| {
                        let races_first =
                            a.kind.conflicts_with(d.kind) && a.tid != d.tid && !hb(a, d);
                        !races_first
                    });
                // Epoch coalescing: if an access `d` in `b`'s epoch group
                // (same thread, kind, and PACER clock component) precedes
                // `a`, the detector's metadata already represented that
                // epoch when it analyzed `a`, and `b` itself hits a
                // "same epoch, no action" gate — the race is reported via
                // `d`'s representative pair instead. Compare group-wise
                // (see [`HbOracle::epoch_group`]).
                let no_earlier_epoch_sibling = per_var[&a.x]
                    .iter()
                    .map(|&pos| &self.accesses[pos])
                    .filter(|d| d.index < a.index)
                    .all(|d| !(d.tid == b.tid && d.kind == b.kind && d.pacer_comp == b.pacer_comp));
                no_intervening_racer && no_earlier_epoch_sibling
            })
            .collect()
    }

    /// The variables involved in at least one race, sorted.
    pub fn racy_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<_> = self
            .all
            .iter()
            .map(|r| self.accesses[self.by_index[&r.first]].x)
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// The distinct (static) races among all races, as normalized site
    /// pairs, sorted and deduplicated.
    pub fn distinct_races(&self) -> Vec<(SiteId, SiteId)> {
        let mut keys: Vec<_> = self
            .all
            .iter()
            .map(|r| {
                let (a, b) = self.race_sites(*r);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// The `(first, second)` sites of a race pair.
    ///
    /// # Panics
    ///
    /// Panics if either index of `race` is not a data access of the
    /// analyzed trace.
    pub fn race_sites(&self, race: RacePair) -> (SiteId, SiteId) {
        (
            self.accesses[self.by_index[&race.first]].site,
            self.accesses[self.by_index[&race.second]].site,
        )
    }

    /// The variable a race pair races on.
    ///
    /// # Panics
    ///
    /// Panics if `race.first` is not a data access of the analyzed trace.
    pub fn race_var(&self, race: RacePair) -> VarId {
        self.accesses[self.by_index[&race.first]].x
    }

    /// The `(first, second)` performing threads of a race pair.
    ///
    /// # Panics
    ///
    /// Panics if either index of `race` is not a data access of the
    /// analyzed trace.
    pub fn race_threads(&self, race: RacePair) -> (ThreadId, ThreadId) {
        (
            self.accesses[self.by_index[&race.first]].tid,
            self.accesses[self.by_index[&race.second]].tid,
        )
    }

    /// The *epoch group* of the access at trace index `i`: its thread and
    /// that thread's own clock component under PACER's increment rules.
    ///
    /// Accesses in the same group are indistinguishable to epoch-based
    /// detectors (FASTTRACK's and PACER's "same epoch, no action" gates):
    /// a detector reports a race between two groups through *some*
    /// representative pair, not necessarily a specific one. Guarantee
    /// tests should therefore compare at group granularity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a data access of the analyzed trace.
    pub fn epoch_group(&self, i: usize) -> (ThreadId, u64) {
        let a = &self.accesses[self.by_index[&i]];
        (a.tid, a.pacer_comp)
    }

    /// Maps a site to the epoch group of the *first* access carrying it.
    /// Only meaningful for traces whose sites are unique per event (e.g.
    /// [`SiteMode::UniquePerEvent`](crate::gen::SiteMode) generation).
    pub fn epoch_group_of_site(&self, site: SiteId) -> Option<(ThreadId, u64)> {
        self.accesses
            .iter()
            .find(|a| a.site == site)
            .map(|a| (a.tid, a.pacer_comp))
    }

    /// Tests whether the access at trace index `i` happens before the access
    /// at trace index `j` (`i < j`; both must be data accesses).
    ///
    /// # Panics
    ///
    /// Panics if either index is not a data access, or `i >= j`.
    pub fn access_happens_before(&self, i: usize, j: usize) -> bool {
        assert!(i < j, "first index must precede second");
        let a = &self.accesses[self.by_index[&i]];
        let b = &self.accesses[self.by_index[&j]];
        a.tid == b.tid || hb(a, b)
    }
}

/// Cross-thread happens-before via the standard component test: `a` (by
/// thread `t`) happens before a later `b` iff `C_b(t) ≥ C_a(t)`.
fn hb(a: &AccessEvent, b: &AccessEvent) -> bool {
    if a.tid == b.tid {
        return true;
    }
    b.stamp.get(a.tid) >= a.stamp.get(a.tid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(text: &str) -> HbOracle {
        let trace = Trace::parse(text).unwrap();
        trace.validate().unwrap();
        HbOracle::analyze(&trace)
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let o = oracle(
            "
            fork t0 t1
            wr t0 x0 s1
            wr t1 x0 s2
        ",
        );
        assert_eq!(
            o.all_races(),
            &[RacePair {
                first: 1,
                second: 2
            }]
        );
        assert_eq!(o.shortest_races(), o.all_races());
        assert_eq!(o.racy_vars(), vec![VarId::new(0)]);
        assert_eq!(o.distinct_races(), vec![(SiteId::new(1), SiteId::new(2))]);
    }

    #[test]
    fn lock_ordering_prevents_race() {
        let o = oracle(
            "
            fork t0 t1
            acq t0 m0
            wr t0 x0 s1
            rel t0 m0
            acq t1 m0
            wr t1 x0 s2
            rel t1 m0
        ",
        );
        assert!(o.is_race_free());
    }

    #[test]
    fn fork_and_join_create_edges() {
        let o = oracle(
            "
            wr t0 x0 s1
            fork t0 t1
            wr t1 x0 s2
            join t0 t1
            wr t0 x0 s3
        ",
        );
        assert!(o.is_race_free(), "fork/join fully order the writes");
    }

    #[test]
    fn volatile_creates_edge_only_write_to_read() {
        // t0 writes x then volatile v; t1 reads volatile v then x: ordered.
        let o = oracle(
            "
            fork t0 t1
            wr t0 x0 s1
            vwr t0 v0
            vrd t1 v0
            rd t1 x0 s2
        ",
        );
        assert!(o.is_race_free());
    }

    #[test]
    fn volatile_read_before_write_is_no_edge() {
        // t1 reads the volatile *before* t0 writes it: no edge, so the data
        // accesses race.
        let o = oracle(
            "
            fork t0 t1
            vrd t1 v0
            wr t0 x0 s1
            vwr t0 v0
            rd t1 x0 s2
        ",
        );
        assert_eq!(o.all_races().len(), 1);
    }

    #[test]
    fn read_read_never_races() {
        let o = oracle(
            "
            fork t0 t1
            rd t0 x0 s1
            rd t1 x0 s2
        ",
        );
        assert!(o.is_race_free());
    }

    #[test]
    fn shortest_race_excludes_intervening_racer() {
        // Figure 1 shape: both w1 (t0) and a later w2 (t1) race with w3
        // (t2); only (w2, w3) is shortest for w3, but w2 also races with w1.
        let o = oracle(
            "
            fork t0 t1
            fork t0 t2
            wr t0 x0 s1
            wr t1 x0 s2
            wr t2 x0 s3
        ",
        );
        assert_eq!(o.all_races().len(), 3, "all three writes pairwise race");
        let shortest: Vec<_> = o.shortest_races().to_vec();
        assert!(shortest.contains(&RacePair {
            first: 2,
            second: 3
        }));
        assert!(shortest.contains(&RacePair {
            first: 3,
            second: 4
        }));
        assert!(
            !shortest.contains(&RacePair {
                first: 2,
                second: 4
            }),
            "w1–w3 has the intervening racer w2"
        );
    }

    #[test]
    fn paper_figure_1_hb_ordered_first_access() {
        // A read of x on t2 is ordered (via a lock) after a write on t1;
        // a later unordered write on t1... simplified: write t1, HB edge,
        // read t2, then t1 writes again without synchronization. The
        // write-write race is shortest; the read's race with the second
        // write is real only if read and write are concurrent.
        let o = oracle(
            "
            fork t0 t1
            fork t0 t2
            acq t1 m0
            wr t1 x0 s1
            rel t1 m0
            acq t2 m0
            rd t2 x0 s2
            rel t2 m0
            wr t1 x0 s3
        ",
        );
        // rd t2 (index 6) and second wr t1 (index 8) are concurrent: race.
        assert_eq!(
            o.all_races(),
            &[RacePair {
                first: 6,
                second: 8
            }]
        );
    }

    #[test]
    fn sampled_shortest_races_filters_by_mask() {
        let trace = Trace::parse(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            wr t1 x0 s2
            wr t0 x1 s3
            wr t1 x1 s4
        ",
        )
        .unwrap();
        let o = HbOracle::analyze(&trace);
        assert_eq!(o.all_races().len(), 2);
        let sampled = o.sampled_shortest_races(&trace);
        assert_eq!(sampled.len(), 1, "only the x0 race starts in a sample");
        assert_eq!(o.race_var(sampled[0]), VarId::new(0));
    }

    #[test]
    fn access_happens_before_component_test() {
        let trace = Trace::parse(
            "
            fork t0 t1
            wr t0 x0 s1
            rel t0 m0
            acq t1 m0
            rd t1 x0 s2
            rd t1 x1 s3
        ",
        )
        .unwrap();
        let o = HbOracle::analyze(&trace);
        assert!(o.access_happens_before(1, 4));
        assert!(o.access_happens_before(4, 5), "same-thread program order");
    }

    #[test]
    fn sampling_markers_do_not_affect_hb() {
        let with = oracle(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            wr t1 x0 s2
        ",
        );
        let without = oracle(
            "
            fork t0 t1
            wr t0 x0 s1
            wr t1 x0 s2
        ",
        );
        assert_eq!(with.all_races().len(), without.all_races().len());
    }
}
