//! The detector interface and race reports.

use std::fmt;

use pacer_clock::ThreadId;

use crate::{AccessKind, Action, SiteId, Trace, VarId};

/// One side of a reported race: who accessed what, where.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// The accessing thread.
    pub tid: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
    /// Static program location. For the *first* access this comes from the
    /// metadata PACER records with each write epoch and read-map entry
    /// (§4 "Reporting Races"); for the *second* it is the current location.
    pub site: SiteId,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {} at {}", self.kind, self.tid, self.site)
    }
}

/// A reported data race on variable `x` between two concurrent conflicting
/// accesses.
///
/// Two dynamic reports with the same (unordered) pair of sites are the same
/// *distinct* (static) race; §5.1 "reports each pair of program references
/// once even if the race occurs multiple times".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RaceReport {
    /// The racing variable.
    pub x: VarId,
    /// The earlier access (recorded in metadata).
    pub first: Access,
    /// The later access (the one whose race check failed).
    pub second: Access,
}

impl RaceReport {
    /// The normalized site pair identifying the *distinct* race.
    pub fn distinct_key(&self) -> (SiteId, SiteId) {
        let (a, b) = (self.first.site, self.second.site);
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race on {}: {} vs {}", self.x, self.first, self.second)
    }
}

/// A dynamic race detector: GENERIC, FASTTRACK, PACER, or LITERACE.
///
/// Detectors consume [`Action`]s one at a time and accumulate
/// [`RaceReport`]s. Unlike the formal semantics — which becomes *stuck* at
/// the first race — implementations report the race and continue, updating
/// metadata as if the check had passed, so one run can observe many races
/// (mirroring the real FASTTRACK/PACER implementations).
///
/// # Examples
///
/// ```no_run
/// use pacer_trace::{Detector, Trace};
///
/// fn count_races<D: Detector>(mut d: D, trace: &Trace) -> usize {
///     d.run(trace);
///     d.races().len()
/// }
/// ```
pub trait Detector {
    /// A short human-readable name ("fasttrack", "pacer@3%", …).
    fn name(&self) -> String;

    /// Processes one dynamic action.
    fn on_action(&mut self, action: &Action);

    /// The races reported so far, in detection order.
    fn races(&self) -> &[RaceReport];

    /// Convenience: processes every action of `trace` in order.
    fn run(&mut self, trace: &Trace) {
        for action in trace {
            self.on_action(action);
        }
    }

    /// The distinct (static) races among [`races`](Self::races), as
    /// normalized site pairs, deduplicated and sorted.
    fn distinct_races(&self) -> Vec<(SiteId, SiteId)> {
        let mut keys: Vec<_> = self.races().iter().map(RaceReport::distinct_key).collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// A detector that records every action into a [`Trace`] and reports no
/// races.
///
/// Useful for capturing the event stream of a live run (e.g. from the
/// simulated runtime) for offline analysis, oracle comparison, or fixture
/// generation.
///
/// # Examples
///
/// ```
/// use pacer_trace::{Action, Detector, RecordingDetector};
/// use pacer_clock::ThreadId;
///
/// let mut rec = RecordingDetector::new();
/// rec.on_action(&Action::Fork {
///     t: ThreadId::new(0),
///     u: ThreadId::new(1),
/// });
/// assert_eq!(rec.trace().len(), 1);
/// let trace = rec.into_trace();
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RecordingDetector {
    trace: Trace,
}

impl RecordingDetector {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RecordingDetector::default()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Detector for RecordingDetector {
    fn name(&self) -> String {
        "recorder".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        self.trace.push(*action);
    }

    fn races(&self) -> &[RaceReport] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial detector that flags every write to the same variable by a
    /// different thread than the previous writer — only to exercise the
    /// trait's provided methods.
    struct LastWriter {
        last: Option<(VarId, ThreadId, SiteId)>,
        races: Vec<RaceReport>,
    }

    impl Detector for LastWriter {
        fn name(&self) -> String {
            "last-writer".to_string()
        }

        fn on_action(&mut self, action: &Action) {
            if let Action::Write { t, x, site } = *action {
                if let Some((px, pt, ps)) = self.last {
                    if px == x && pt != t {
                        self.races.push(RaceReport {
                            x,
                            first: Access {
                                tid: pt,
                                kind: AccessKind::Write,
                                site: ps,
                            },
                            second: Access {
                                tid: t,
                                kind: AccessKind::Write,
                                site,
                            },
                        });
                    }
                }
                self.last = Some((x, t, site));
            }
        }

        fn races(&self) -> &[RaceReport] {
            &self.races
        }
    }

    fn wr(t: u32, x: u32, s: u32) -> Action {
        Action::Write {
            t: ThreadId::new(t),
            x: VarId::new(x),
            site: SiteId::new(s),
        }
    }

    #[test]
    fn run_feeds_every_action() {
        let trace = Trace::from_actions(vec![
            Action::Fork {
                t: ThreadId::new(0),
                u: ThreadId::new(1),
            },
            wr(0, 0, 1),
            wr(1, 0, 2),
            wr(0, 0, 1),
            wr(1, 0, 2),
        ]);
        let mut d = LastWriter {
            last: None,
            races: Vec::new(),
        };
        d.run(&trace);
        assert_eq!(d.races().len(), 3);
        assert_eq!(
            d.distinct_races(),
            vec![(SiteId::new(1), SiteId::new(2))],
            "all three dynamic races share one distinct site pair"
        );
    }

    #[test]
    fn distinct_key_is_order_insensitive() {
        let a = Access {
            tid: ThreadId::new(0),
            kind: AccessKind::Write,
            site: SiteId::new(5),
        };
        let b = Access {
            tid: ThreadId::new(1),
            kind: AccessKind::Read,
            site: SiteId::new(2),
        };
        let r1 = RaceReport {
            x: VarId::new(0),
            first: a,
            second: b,
        };
        let r2 = RaceReport {
            x: VarId::new(0),
            first: b,
            second: a,
        };
        assert_eq!(r1.distinct_key(), r2.distinct_key());
    }

    #[test]
    fn reports_display() {
        let r = RaceReport {
            x: VarId::new(3),
            first: Access {
                tid: ThreadId::new(0),
                kind: AccessKind::Write,
                site: SiteId::new(5),
            },
            second: Access {
                tid: ThreadId::new(1),
                kind: AccessKind::Read,
                site: SiteId::new(2),
            },
        };
        assert_eq!(
            r.to_string(),
            "race on x3: write by t0 at s5 vs read by t1 at s2"
        );
    }
}
