//! Dynamic program actions (Appendix A).

use std::fmt;

use pacer_clock::ThreadId;

use crate::{LockId, SiteId, VarId, VolatileId};

/// Whether an access reads or writes its variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// `rd(t, x)`.
    Read,
    /// `wr(t, x)`.
    Write,
}

impl AccessKind {
    /// Two accesses *conflict* when they touch the same variable and at
    /// least one writes (§A): this tests the kind half of that condition.
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        matches!(self, AccessKind::Write) || matches!(other, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One dynamic action of a multithreaded execution (§A).
///
/// `SampleBegin`/`SampleEnd` are the paper's `sbegin()`/`send()`: they are
/// not performed by any thread and do not affect happens-before; they only
/// switch the analysis between sampling and non-sampling periods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// `rd(t, x)` at program location `site`: thread `t` reads data
    /// variable `x`.
    Read {
        /// Reading thread.
        t: ThreadId,
        /// Variable read.
        x: VarId,
        /// Static program location of the read.
        site: SiteId,
    },
    /// `wr(t, x)` at program location `site`.
    Write {
        /// Writing thread.
        t: ThreadId,
        /// Variable written.
        x: VarId,
        /// Static program location of the write.
        site: SiteId,
    },
    /// `acq(t, m)`: thread `t` acquires lock `m`.
    Acquire {
        /// Acquiring thread.
        t: ThreadId,
        /// The lock.
        m: LockId,
    },
    /// `rel(t, m)`: thread `t` releases lock `m`.
    Release {
        /// Releasing thread.
        t: ThreadId,
        /// The lock.
        m: LockId,
    },
    /// `fork(t, u)`: thread `t` forks new thread `u`.
    Fork {
        /// Forking thread.
        t: ThreadId,
        /// The new thread.
        u: ThreadId,
    },
    /// `join(t, u)`: thread `t` blocks until thread `u` terminates.
    Join {
        /// Joining thread.
        t: ThreadId,
        /// The terminated thread.
        u: ThreadId,
    },
    /// `vol_rd(t, v)`: thread `t` reads volatile variable `v`.
    VolRead {
        /// Reading thread.
        t: ThreadId,
        /// The volatile.
        v: VolatileId,
    },
    /// `vol_wr(t, v)`: thread `t` writes volatile variable `v`.
    VolWrite {
        /// Writing thread.
        t: ThreadId,
        /// The volatile.
        v: VolatileId,
    },
    /// `sbegin()`: the analysis enters a sampling period.
    SampleBegin,
    /// `send()`: the analysis leaves a sampling period.
    SampleEnd,
}

impl Action {
    /// The thread that performs the action, if any (`sbegin`/`send` are not
    /// initiated by any thread).
    pub fn thread(&self) -> Option<ThreadId> {
        match *self {
            Action::Read { t, .. }
            | Action::Write { t, .. }
            | Action::Acquire { t, .. }
            | Action::Release { t, .. }
            | Action::Fork { t, .. }
            | Action::Join { t, .. }
            | Action::VolRead { t, .. }
            | Action::VolWrite { t, .. } => Some(t),
            Action::SampleBegin | Action::SampleEnd => None,
        }
    }

    /// Returns the accessed data variable and access kind, for `rd`/`wr`
    /// actions.
    pub fn access(&self) -> Option<(VarId, AccessKind, SiteId)> {
        match *self {
            Action::Read { x, site, .. } => Some((x, AccessKind::Read, site)),
            Action::Write { x, site, .. } => Some((x, AccessKind::Write, site)),
            _ => None,
        }
    }

    /// Is this a synchronization action (`acq`, `rel`, `fork`, `join`,
    /// `vol_rd`, `vol_wr`)?
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Action::Acquire { .. }
                | Action::Release { .. }
                | Action::Fork { .. }
                | Action::Join { .. }
                | Action::VolRead { .. }
                | Action::VolWrite { .. }
        )
    }

    /// Is this a data-variable access (`rd`/`wr`)?
    pub fn is_access(&self) -> bool {
        matches!(self, Action::Read { .. } | Action::Write { .. })
    }

    /// Is this a sampling-period marker (`sbegin`/`send`)?
    pub fn is_sampling_marker(&self) -> bool {
        matches!(self, Action::SampleBegin | Action::SampleEnd)
    }

    /// Do two actions *conflict*: same data variable, at least one write?
    pub fn conflicts_with(&self, other: &Action) -> bool {
        match (self.access(), other.access()) {
            (Some((x1, k1, _)), Some((x2, k2, _))) => x1 == x2 && k1.conflicts_with(k2),
            _ => false,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Read { t, x, site } => write!(f, "rd {t} {x} {site}"),
            Action::Write { t, x, site } => write!(f, "wr {t} {x} {site}"),
            Action::Acquire { t, m } => write!(f, "acq {t} {m}"),
            Action::Release { t, m } => write!(f, "rel {t} {m}"),
            Action::Fork { t, u } => write!(f, "fork {t} {u}"),
            Action::Join { t, u } => write!(f, "join {t} {u}"),
            Action::VolRead { t, v } => write!(f, "vrd {t} {v}"),
            Action::VolWrite { t, v } => write!(f, "vwr {t} {v}"),
            Action::SampleBegin => write!(f, "sbegin"),
            Action::SampleEnd => write!(f, "send"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn kind_conflicts() {
        assert!(AccessKind::Write.conflicts_with(AccessKind::Write));
        assert!(AccessKind::Write.conflicts_with(AccessKind::Read));
        assert!(AccessKind::Read.conflicts_with(AccessKind::Write));
        assert!(!AccessKind::Read.conflicts_with(AccessKind::Read));
    }

    #[test]
    fn thread_of_markers_is_none() {
        assert_eq!(Action::SampleBegin.thread(), None);
        assert_eq!(Action::SampleEnd.thread(), None);
        assert_eq!(
            Action::Fork { t: t(0), u: t(1) }.thread(),
            Some(t(0)),
            "fork is performed by the forking thread"
        );
    }

    #[test]
    fn classification() {
        let rd = Action::Read {
            t: t(0),
            x: VarId::new(1),
            site: SiteId::new(2),
        };
        let acq = Action::Acquire {
            t: t(0),
            m: LockId::new(0),
        };
        assert!(rd.is_access() && !rd.is_sync() && !rd.is_sampling_marker());
        assert!(acq.is_sync() && !acq.is_access());
        assert!(Action::SampleBegin.is_sampling_marker());
        assert_eq!(
            rd.access(),
            Some((VarId::new(1), AccessKind::Read, SiteId::new(2)))
        );
        assert_eq!(acq.access(), None);
    }

    #[test]
    fn conflicts_require_same_variable_and_a_write() {
        let r0 = Action::Read {
            t: t(0),
            x: VarId::new(0),
            site: SiteId::new(0),
        };
        let w0 = Action::Write {
            t: t(1),
            x: VarId::new(0),
            site: SiteId::new(1),
        };
        let w1 = Action::Write {
            t: t(1),
            x: VarId::new(1),
            site: SiteId::new(1),
        };
        assert!(r0.conflicts_with(&w0));
        assert!(w0.conflicts_with(&w0));
        assert!(!r0.conflicts_with(&r0));
        assert!(!w0.conflicts_with(&w1), "different variables");
        assert!(!w0.conflicts_with(&Action::SampleBegin));
    }

    #[test]
    fn display_matches_text_format() {
        assert_eq!(
            Action::Read {
                t: t(0),
                x: VarId::new(3),
                site: SiteId::new(5)
            }
            .to_string(),
            "rd t0 x3 s5"
        );
        assert_eq!(Action::SampleBegin.to_string(), "sbegin");
        assert_eq!(
            Action::VolWrite {
                t: t(2),
                v: VolatileId::new(1)
            }
            .to_string(),
            "vwr t2 v1"
        );
    }
}
