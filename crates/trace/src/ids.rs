//! Identifier newtypes for program entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its dense index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl pacer_collections::DenseKey for $name {
            fn index(&self) -> usize {
                self.0 as usize
            }

            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("index exceeds id space"))
            }
        }
    };
}

id_type!(
    /// A data variable (an object field, static field, or array element in
    /// the paper's Java terminology). Only data variables can race.
    VarId,
    "x"
);

id_type!(
    /// A lock (in Java, any object used in a `synchronized` block).
    LockId,
    "m"
);

id_type!(
    /// A volatile variable: a synchronization object whose reads/writes
    /// create happens-before edges and never race (§2.1, Appendix C).
    VolatileId,
    "v"
);

id_type!(
    /// A static program location ("site", §4 Reporting Races). Two dynamic
    /// races with the same pair of sites are the same *distinct* race
    /// (§5.1).
    SiteId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        assert_eq!(VarId::new(3).index(), 3);
        assert_eq!(LockId::from(2).raw(), 2);
        assert_eq!(VarId::new(1).to_string(), "x1");
        assert_eq!(LockId::new(1).to_string(), "m1");
        assert_eq!(VolatileId::new(1).to_string(), "v1");
        assert_eq!(SiteId::new(1).to_string(), "s1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SiteId::new(1) < SiteId::new(5));
        assert_eq!(VarId::default(), VarId::new(0));
    }
}
