//! Event model, traces, and the detector interface for the PACER suite.
//!
//! This crate defines the formal vocabulary of Appendix A of the paper:
//!
//! * [`Action`] — the nine dynamic actions (`rd`, `wr`, `acq`, `rel`,
//!   `fork`, `join`, `vol_rd`, `vol_wr`, plus the analysis-only
//!   `sbegin`/`send` sampling-period markers).
//! * [`Trace`] — a validated sequence of actions with a small hand-written
//!   text format for fixtures ([`Trace::parse`], [`Trace::to_text`]) and a
//!   compact checksummed binary format for captured workloads ([`binary`],
//!   spec in `TRACE_FORMAT.md`).
//! * [`Detector`] — the interface every race detector in the suite
//!   implements (GENERIC, FASTTRACK, PACER, LITERACE), producing
//!   [`RaceReport`]s.
//! * [`HbOracle`] — a ground-truth happens-before oracle that enumerates
//!   *all* races and *shortest* races of a trace (Definitions 4 and 5),
//!   used to verify precision, completeness, and PACER's sampled-race
//!   guarantee.
//! * [`gen`] — seeded random trace generators with lock-discipline and
//!   race-injection knobs for property testing.
//!
//! # Examples
//!
//! ```
//! use pacer_trace::{Action, Trace};
//! use pacer_clock::ThreadId;
//!
//! let text = "
//!     fork t0 t1
//!     wr t0 x0 s1
//!     rel t0 m0
//!     acq t1 m0
//!     rd t1 x0 s2
//!     join t0 t1
//! ";
//! let trace = Trace::parse(text)?;
//! assert_eq!(trace.len(), 6);
//! assert_eq!(trace.actions()[1].thread(), Some(ThreadId::new(0)));
//!
//! // The release/acquire on m0 orders the write before the read: race-free.
//! use pacer_trace::HbOracle;
//! assert!(HbOracle::analyze(&trace).is_race_free());
//! # Ok::<(), pacer_trace::ParseTraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod binary;
mod detector;
pub mod gen;
mod hb;
mod ids;
mod stats;
pub mod stream;
mod text;
mod trace;

pub use action::{AccessKind, Action};
pub use binary::{BinaryTraceError, StreamRecorder, TraceReader, TraceWriter};
pub use detector::{Access, Detector, RaceReport, RecordingDetector};
pub use hb::{HbOracle, RacePair};
pub use ids::{LockId, SiteId, VarId, VolatileId};
pub use stats::ActionStats;
pub use stream::{AnyTraceReader, TraceStreamError, ValidatedActions};
pub use text::ParseTraceError;
pub use trace::{Trace, TraceValidator, ValidateTraceError};
