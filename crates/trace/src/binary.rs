//! The compact binary trace encoding (`.ptrace`).
//!
//! The normative wire-format specification lives in `TRACE_FORMAT.md` at
//! the workspace root; this module is its reference implementation. In
//! brief, a binary trace is
//!
//! ```text
//! header  := "PTRC" version=0x01 reserved=[0x00; 3]          (8 bytes)
//! frame   := payload_len:u32le  checksum:u64le  payload      (repeated)
//! payload := event+            (frames end on event boundaries)
//! event   := opcode:u8  operand:varint*
//! ```
//!
//! The checksum is FNV-1a-64 of the payload bytes — the same digest, from
//! the same shared implementation ([`pacer_collections::fnv1a64`]), as the
//! checkpoint journal's line framing — and operands are canonical-minimal
//! LEB128 varints, so a given [`Trace`] has exactly one encoding and
//! decode∘encode is byte-identity.
//!
//! Damage semantics mirror the journal's: a stream that *ends* mid-frame
//! is a crash artifact — [`TraceReader`] stops cleanly after the last
//! complete frame and sets [`TraceReader::truncated`] — while a *complete*
//! frame that fails its checksum or contains a malformed event is
//! corruption and yields a hard [`BinaryTraceError`]. The strict
//! whole-trace decoders ([`decode_trace`], [`Trace::load_binary`]) treat
//! truncation as an error too.
//!
//! Reading is streaming and bounded: [`TraceReader`] holds at most one
//! frame (≤ [`MAX_FRAME_BYTES`]) in memory and yields events as an
//! iterator; [`TraceWriter`] buffers at most one frame before flushing.
//! [`StreamRecorder`] adapts a writer to the [`Detector`] interface so a
//! live run can be captured without materializing the trace.
//!
//! # Examples
//!
//! ```
//! use pacer_trace::{binary, Trace};
//!
//! let trace = Trace::parse("fork t0 t1\nwr t1 x0 s3\njoin t0 t1\n").unwrap();
//! let bytes = binary::encode_trace(&trace);
//! assert_eq!(binary::decode_trace(&bytes).unwrap(), trace);
//! // One encoding per trace: re-encoding the decoded trace is byte-identity.
//! assert_eq!(binary::encode_trace(&binary::decode_trace(&bytes).unwrap()), bytes);
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use pacer_clock::ThreadId;
use pacer_collections::fnv1a64;

use crate::{Action, ActionStats, Detector, LockId, RaceReport, SiteId, Trace, VarId, VolatileId};

/// The 4-byte file magic: `b"PTRC"`.
pub const MAGIC: [u8; 4] = *b"PTRC";

/// The current (and only) format version.
pub const FORMAT_VERSION: u8 = 1;

/// Total header length in bytes: magic, version, three reserved zeros.
pub const HEADER_LEN: usize = 8;

/// Hard upper bound on a frame's declared payload length. A frame header
/// declaring more is rejected before any allocation, bounding reader
/// memory even on hostile input.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Writers close a frame once its payload reaches this many bytes…
pub const FRAME_BYTE_TARGET: usize = 32 * 1024;

/// …or this many events, whichever comes first. Both bounds are part of
/// the canonical encoding: they make framing deterministic, so equal
/// traces encode to equal bytes.
pub const FRAME_EVENT_TARGET: usize = 4096;

/// Per-frame overhead: 4-byte length + 8-byte checksum.
const FRAME_HEADER_LEN: usize = 12;

/// The frame header length made public for transports that address
/// whole frames (header + payload) as opaque byte ranges.
pub const FRAME_OVERHEAD: usize = FRAME_HEADER_LEN;

/// Out-of-band end-of-stream marker for frame-at-a-time transports: 12
/// zero bytes, shaped like a frame header declaring a zero-length payload.
/// `.ptrace` decoding rejects zero-length frames as corrupt, so the marker
/// can never be produced by an encoder and never collides with real frame
/// bytes; transports strip it before handing bytes to a [`TraceReader`].
pub const END_FRAME_MARKER: [u8; FRAME_OVERHEAD] = [0u8; FRAME_OVERHEAD];

// Event opcodes (TRACE_FORMAT.md §4).
const OP_READ: u8 = 0x00;
const OP_WRITE: u8 = 0x01;
const OP_ACQUIRE: u8 = 0x02;
const OP_RELEASE: u8 = 0x03;
const OP_FORK: u8 = 0x04;
const OP_JOIN: u8 = 0x05;
const OP_VOL_READ: u8 = 0x06;
const OP_VOL_WRITE: u8 = 0x07;
const OP_SAMPLE_BEGIN: u8 = 0x08;
const OP_SAMPLE_END: u8 = 0x09;

/// What went wrong reading a binary trace.
///
/// Every variant except [`Io`](Self::Io) and [`Truncated`](Self::Truncated)
/// is *corruption*: the input is complete enough to be checked and the
/// check failed. `Truncated` is produced only by the strict whole-trace
/// decoders; the streaming [`TraceReader`] instead reports truncation as a
/// clean stop via [`TraceReader::truncated`].
#[derive(Debug)]
pub enum BinaryTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The first four bytes are not `b"PTRC"`.
    BadMagic {
        /// The bytes found (zero-padded if fewer than four were present).
        found: [u8; 4],
    },
    /// The version byte is not a version this reader supports.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The three reserved header bytes are not all zero.
    ReservedNonZero {
        /// The bytes found.
        found: [u8; 3],
    },
    /// A frame declared a payload longer than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// 1-based index of the offending frame.
        frame: u64,
        /// The declared payload length.
        declared: u32,
    },
    /// A complete frame's payload does not match its checksum.
    ChecksumMismatch {
        /// 1-based index of the offending frame.
        frame: u64,
        /// The checksum the frame header declared.
        expected: u64,
        /// FNV-1a-64 of the payload actually present.
        actual: u64,
    },
    /// A checksummed frame contains a malformed event stream (unknown
    /// opcode, non-minimal varint, or an event cut off by the frame end).
    Corrupt {
        /// 1-based index of the offending frame.
        frame: u64,
        /// Byte offset of the bad event within the frame payload.
        offset: usize,
        /// What failed there.
        message: String,
    },
    /// The stream ended in the middle of a header or frame (strict
    /// decoders only).
    Truncated {
        /// 1-based index of the incomplete frame; 0 means the 8-byte file
        /// header itself was incomplete.
        frame: u64,
    },
}

impl fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinaryTraceError as E;
        match self {
            E::Io(e) => write!(f, "binary trace I/O error: {e}"),
            E::BadMagic { found } => {
                write!(
                    f,
                    "not a binary trace: magic bytes {found:02x?} != \"PTRC\""
                )
            }
            E::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported binary trace version {found} (reader supports {FORMAT_VERSION})"
                )
            }
            E::ReservedNonZero { found } => {
                write!(f, "nonzero reserved header bytes {found:02x?}")
            }
            E::FrameTooLarge { frame, declared } => {
                write!(
                    f,
                    "frame {frame} declares {declared} payload bytes (limit {MAX_FRAME_BYTES})"
                )
            }
            E::ChecksumMismatch {
                frame,
                expected,
                actual,
            } => write!(
                f,
                "frame {frame} checksum mismatch: header {expected:016x}, payload {actual:016x}"
            ),
            E::Corrupt {
                frame,
                offset,
                message,
            } => write!(
                f,
                "frame {frame} corrupt at payload offset {offset}: {message}"
            ),
            E::Truncated { frame } => {
                if *frame == 0 {
                    write!(f, "binary trace truncated inside the file header")
                } else {
                    write!(f, "binary trace truncated inside frame {frame}")
                }
            }
        }
    }
}

impl Error for BinaryTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinaryTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinaryTraceError {
    fn from(e: io::Error) -> Self {
        BinaryTraceError::Io(e)
    }
}

/// Returns `true` if `bytes` begin with the binary trace magic.
///
/// This is the auto-detection rule: content, not file extension, decides
/// how a trace file is parsed ([`Trace::load_any`]).
pub fn is_binary_trace(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Appends `v` to `buf` as a canonical-minimal LEB128 varint.
fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Decodes one canonical-minimal LEB128 varint from `payload` at `*pos`,
/// advancing the cursor. Errors carry the offset of the varint's first
/// byte and a message.
fn read_varint(payload: &[u8], pos: &mut usize) -> Result<u32, (usize, String)> {
    let start = *pos;
    let mut shift = 0u32;
    let mut value = 0u32;
    loop {
        let Some(&b) = payload.get(*pos) else {
            return Err((start, "varint cut off by frame end".to_string()));
        };
        *pos += 1;
        if shift == 28 && b > 0x0f {
            return Err((start, "varint overflows u32".to_string()));
        }
        value |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            if b == 0 && *pos - start > 1 {
                return Err((start, "non-minimal varint encoding".to_string()));
            }
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends the canonical encoding of one event to `buf`.
fn push_action(buf: &mut Vec<u8>, a: &Action) {
    match *a {
        Action::Read { t, x, site } => {
            buf.push(OP_READ);
            push_varint(buf, t.raw());
            push_varint(buf, x.raw());
            push_varint(buf, site.raw());
        }
        Action::Write { t, x, site } => {
            buf.push(OP_WRITE);
            push_varint(buf, t.raw());
            push_varint(buf, x.raw());
            push_varint(buf, site.raw());
        }
        Action::Acquire { t, m } => {
            buf.push(OP_ACQUIRE);
            push_varint(buf, t.raw());
            push_varint(buf, m.raw());
        }
        Action::Release { t, m } => {
            buf.push(OP_RELEASE);
            push_varint(buf, t.raw());
            push_varint(buf, m.raw());
        }
        Action::Fork { t, u } => {
            buf.push(OP_FORK);
            push_varint(buf, t.raw());
            push_varint(buf, u.raw());
        }
        Action::Join { t, u } => {
            buf.push(OP_JOIN);
            push_varint(buf, t.raw());
            push_varint(buf, u.raw());
        }
        Action::VolRead { t, v } => {
            buf.push(OP_VOL_READ);
            push_varint(buf, t.raw());
            push_varint(buf, v.raw());
        }
        Action::VolWrite { t, v } => {
            buf.push(OP_VOL_WRITE);
            push_varint(buf, t.raw());
            push_varint(buf, v.raw());
        }
        Action::SampleBegin => buf.push(OP_SAMPLE_BEGIN),
        Action::SampleEnd => buf.push(OP_SAMPLE_END),
    }
}

/// Decodes one event from `payload` at `*pos`, advancing the cursor.
fn read_action(payload: &[u8], pos: &mut usize) -> Result<Action, (usize, String)> {
    let at = *pos;
    let op = payload[at];
    *pos += 1;
    let next = |pos: &mut usize| read_varint(payload, pos);
    let action = match op {
        OP_READ => Action::Read {
            t: ThreadId::new(next(pos)?),
            x: VarId::new(next(pos)?),
            site: SiteId::new(next(pos)?),
        },
        OP_WRITE => Action::Write {
            t: ThreadId::new(next(pos)?),
            x: VarId::new(next(pos)?),
            site: SiteId::new(next(pos)?),
        },
        OP_ACQUIRE => Action::Acquire {
            t: ThreadId::new(next(pos)?),
            m: LockId::new(next(pos)?),
        },
        OP_RELEASE => Action::Release {
            t: ThreadId::new(next(pos)?),
            m: LockId::new(next(pos)?),
        },
        OP_FORK => Action::Fork {
            t: ThreadId::new(next(pos)?),
            u: ThreadId::new(next(pos)?),
        },
        OP_JOIN => Action::Join {
            t: ThreadId::new(next(pos)?),
            u: ThreadId::new(next(pos)?),
        },
        OP_VOL_READ => Action::VolRead {
            t: ThreadId::new(next(pos)?),
            v: VolatileId::new(next(pos)?),
        },
        OP_VOL_WRITE => Action::VolWrite {
            t: ThreadId::new(next(pos)?),
            v: VolatileId::new(next(pos)?),
        },
        OP_SAMPLE_BEGIN => Action::SampleBegin,
        OP_SAMPLE_END => Action::SampleEnd,
        other => return Err((at, format!("unknown opcode 0x{other:02x}"))),
    };
    Ok(action)
}

/// Counters describing what a [`TraceWriter`] emitted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodeSummary {
    /// Events encoded.
    pub events: u64,
    /// Total bytes written, header and frame overhead included.
    pub bytes: u64,
    /// Complete frames emitted.
    pub frames: u64,
}

impl EncodeSummary {
    /// Mean encoded size per event (frame and file overhead amortized in),
    /// or 0.0 for an empty trace.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streaming binary trace encoder with bounded memory.
///
/// Writes the file header on construction, buffers events into at most one
/// frame ([`FRAME_BYTE_TARGET`] bytes / [`FRAME_EVENT_TARGET`] events),
/// and flushes each completed frame to the sink. Dropping the writer
/// without calling [`finish`](Self::finish) loses any buffered partial
/// frame — exactly the crash artifact the format's truncation semantics
/// are designed around.
///
/// # Examples
///
/// ```
/// use pacer_trace::binary::TraceWriter;
/// use pacer_trace::Action;
///
/// let mut w = TraceWriter::new(Vec::new()).unwrap();
/// w.write_action(&Action::SampleBegin).unwrap();
/// w.write_action(&Action::SampleEnd).unwrap();
/// let (bytes, summary) = w.finish().unwrap();
/// assert_eq!(summary.events, 2);
/// assert_eq!(summary.bytes as usize, bytes.len());
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    /// Payload of the frame under construction.
    buf: Vec<u8>,
    events_in_frame: usize,
    summary: EncodeSummary,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the 8-byte file header.
    ///
    /// # Errors
    ///
    /// Propagates the header write.
    pub fn new(mut sink: W) -> io::Result<Self> {
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4] = FORMAT_VERSION;
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            buf: Vec::new(),
            events_in_frame: 0,
            summary: EncodeSummary {
                events: 0,
                bytes: HEADER_LEN as u64,
                frames: 0,
            },
        })
    }

    /// Encodes one event into the current frame, flushing the frame first
    /// if it has reached either canonical bound.
    ///
    /// # Errors
    ///
    /// Propagates sink write failures.
    pub fn write_action(&mut self, action: &Action) -> io::Result<()> {
        push_action(&mut self.buf, action);
        self.events_in_frame += 1;
        self.summary.events += 1;
        if self.buf.len() >= FRAME_BYTE_TARGET || self.events_in_frame >= FRAME_EVENT_TARGET {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Counters so far; `bytes` includes only *flushed* frames until
    /// [`finish`](Self::finish).
    pub fn summary(&self) -> EncodeSummary {
        self.summary
    }

    /// Flushes the final partial frame and returns the sink with final
    /// counters.
    ///
    /// # Errors
    ///
    /// Propagates sink write/flush failures.
    pub fn finish(mut self) -> io::Result<(W, EncodeSummary)> {
        self.flush_frame()?;
        self.sink.flush()?;
        Ok((self.sink, self.summary))
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        debug_assert!(self.buf.len() <= MAX_FRAME_BYTES as usize);
        let len = self.buf.len() as u32;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&fnv1a64(&self.buf).to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.summary.bytes += (FRAME_HEADER_LEN + self.buf.len()) as u64;
        self.summary.frames += 1;
        self.buf.clear();
        self.events_in_frame = 0;
        Ok(())
    }
}

/// Encodes a whole trace to bytes (the canonical encoding).
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new()).expect("writing the header to a Vec cannot fail");
    for action in trace {
        writer
            .write_action(action)
            .expect("writing a frame to a Vec cannot fail");
    }
    let (bytes, _) = writer.finish().expect("flushing to a Vec cannot fail");
    bytes
}

/// Strictly decodes a whole binary trace from bytes.
///
/// # Errors
///
/// Any [`BinaryTraceError`], including [`Truncated`]
/// (unlike the streaming [`TraceReader`], a cut-off tail is an error
/// here).
///
/// [`Truncated`]: BinaryTraceError::Truncated
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, BinaryTraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut trace = Trace::new();
    for action in reader.by_ref() {
        trace.push(action?);
    }
    if reader.truncated() {
        let frame = if reader.header_complete {
            reader.frames() + 1
        } else {
            0
        };
        return Err(BinaryTraceError::Truncated { frame });
    }
    Ok(trace)
}

/// One checksum-verified frame located inside a complete `.ptrace` byte
/// buffer (see [`split_frames`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRange {
    /// 0-based frame offset within the trace — the dedup/ack key durable
    /// transports exchange.
    pub offset: u64,
    /// Byte index where the frame's 12-byte header starts.
    pub start: usize,
    /// Byte index one past the frame's payload, so `&bytes[start..end]`
    /// is the whole frame, retransmittable or journalable verbatim.
    pub end: usize,
}

/// The result of [`split_frames`]: every complete, checksum-verified
/// frame in offset order, plus whether the buffer ended mid-frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameSplit {
    /// Byte ranges of the complete frames, indexed by frame offset.
    pub frames: Vec<FrameRange>,
    /// True when the buffer ended inside the file header or a frame (a
    /// torn tail — the same clean-stop semantics as [`TraceReader`]).
    pub truncated: bool,
}

/// Splits a complete `.ptrace` byte buffer into offset-addressed,
/// checksum-verified frame byte ranges.
///
/// This is the sender side of the durable-session wire protocol: a client
/// splits its trace once, then transmits `&bytes[f.start..f.end]` per
/// frame and can retransmit any suffix after a reconnect without
/// re-encoding. A torn tail sets [`FrameSplit::truncated`] and the frames
/// before the cut stand, mirroring [`TraceReader`] semantics.
///
/// # Errors
///
/// Header errors ([`BadMagic`], [`UnsupportedVersion`],
/// [`ReservedNonZero`]) and per-frame corruption ([`FrameTooLarge`],
/// empty-frame [`Corrupt`], [`ChecksumMismatch`]) are hard errors, exactly
/// as in streaming decode.
///
/// [`BadMagic`]: BinaryTraceError::BadMagic
/// [`UnsupportedVersion`]: BinaryTraceError::UnsupportedVersion
/// [`ReservedNonZero`]: BinaryTraceError::ReservedNonZero
/// [`FrameTooLarge`]: BinaryTraceError::FrameTooLarge
/// [`Corrupt`]: BinaryTraceError::Corrupt
/// [`ChecksumMismatch`]: BinaryTraceError::ChecksumMismatch
pub fn split_frames(bytes: &[u8]) -> Result<FrameSplit, BinaryTraceError> {
    // Reuse the reader's header validation (including its partial-valid-
    // header truncation semantics) on a throwaway slice reader.
    let probe = TraceReader::new(bytes)?;
    if !probe.header_complete {
        return Ok(FrameSplit {
            frames: Vec::new(),
            truncated: true,
        });
    }
    let mut split = FrameSplit::default();
    let mut at = HEADER_LEN;
    while at < bytes.len() {
        let frame_index = split.frames.len() as u64;
        if bytes.len() - at < FRAME_HEADER_LEN {
            split.truncated = true;
            break;
        }
        let declared = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"));
        let expected = u64::from_le_bytes(
            bytes[at + 4..at + FRAME_HEADER_LEN]
                .try_into()
                .expect("8-byte slice"),
        );
        if declared > MAX_FRAME_BYTES {
            return Err(BinaryTraceError::FrameTooLarge {
                frame: frame_index + 1,
                declared,
            });
        }
        if declared == 0 {
            return Err(BinaryTraceError::Corrupt {
                frame: frame_index + 1,
                offset: 0,
                message: "empty frame".to_string(),
            });
        }
        let end = at + FRAME_HEADER_LEN + declared as usize;
        if end > bytes.len() {
            split.truncated = true;
            break;
        }
        let actual = fnv1a64(&bytes[at + FRAME_HEADER_LEN..end]);
        if actual != expected {
            return Err(BinaryTraceError::ChecksumMismatch {
                frame: frame_index + 1,
                expected,
                actual,
            });
        }
        split.frames.push(FrameRange {
            offset: frame_index,
            start: at,
            end,
        });
        at = end;
    }
    Ok(split)
}

/// Validates one complete frame — 12-byte header plus payload, exactly
/// the bytes a [`FrameRange`] addresses or a durable transport carries —
/// and decodes its events.
///
/// `frame_index` is the 1-based frame number used in error reports (pass
/// `offset + 1` for a [`FrameRange`]).
///
/// # Errors
///
/// [`Truncated`] when the bytes are shorter than the declared payload (or
/// shorter than a frame header), [`FrameTooLarge`] / empty-frame
/// [`Corrupt`] / [`ChecksumMismatch`] as in streaming decode, [`Corrupt`]
/// when trailing bytes follow the declared payload or the payload is not
/// a well-formed event stream.
///
/// [`Truncated`]: BinaryTraceError::Truncated
/// [`FrameTooLarge`]: BinaryTraceError::FrameTooLarge
/// [`Corrupt`]: BinaryTraceError::Corrupt
/// [`ChecksumMismatch`]: BinaryTraceError::ChecksumMismatch
pub fn decode_frame_payload(
    frame: &[u8],
    frame_index: u64,
) -> Result<Vec<Action>, BinaryTraceError> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(BinaryTraceError::Truncated { frame: frame_index });
    }
    let declared = u32::from_le_bytes(frame[..4].try_into().expect("4-byte slice"));
    let expected = u64::from_le_bytes(frame[4..FRAME_HEADER_LEN].try_into().expect("8-byte slice"));
    if declared > MAX_FRAME_BYTES {
        return Err(BinaryTraceError::FrameTooLarge {
            frame: frame_index,
            declared,
        });
    }
    if declared == 0 {
        return Err(BinaryTraceError::Corrupt {
            frame: frame_index,
            offset: 0,
            message: "empty frame".to_string(),
        });
    }
    let body = frame.len() - FRAME_HEADER_LEN;
    if body < declared as usize {
        return Err(BinaryTraceError::Truncated { frame: frame_index });
    }
    if body > declared as usize {
        return Err(BinaryTraceError::Corrupt {
            frame: frame_index,
            offset: declared as usize,
            message: format!(
                "{} byte(s) past the declared payload",
                body - declared as usize
            ),
        });
    }
    let payload = &frame[FRAME_HEADER_LEN..];
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(BinaryTraceError::ChecksumMismatch {
            frame: frame_index,
            expected,
            actual,
        });
    }
    let mut pos = 0;
    let mut actions = Vec::new();
    while pos < payload.len() {
        match read_action(payload, &mut pos) {
            Ok(action) => actions.push(action),
            Err((offset, message)) => {
                return Err(BinaryTraceError::Corrupt {
                    frame: frame_index,
                    offset,
                    message,
                })
            }
        }
    }
    Ok(actions)
}

/// Streaming binary trace decoder with bounded memory.
///
/// Yields events one at a time as an `Iterator`, holding at most one
/// frame's payload (≤ [`MAX_FRAME_BYTES`]) in memory, so detectors can
/// consume arbitrarily large traces without a whole-trace `Vec`.
///
/// A stream that ends mid-header or mid-frame is treated as a crash
/// artifact: iteration stops cleanly after the last complete frame and
/// [`truncated`](Self::truncated) reports `true`. A *complete* frame that
/// fails validation yields a hard error and ends iteration.
///
/// # Examples
///
/// ```
/// use pacer_trace::binary::{encode_trace, TraceReader};
/// use pacer_trace::Trace;
///
/// let trace = Trace::parse("fork t0 t1\nwr t1 x0 s3\n").unwrap();
/// let bytes = encode_trace(&trace);
/// let mut reader = TraceReader::new(&bytes[..]).unwrap();
/// let decoded: Result<Vec<_>, _> = reader.by_ref().collect();
/// assert_eq!(decoded.unwrap(), trace.actions());
/// assert!(!reader.truncated());
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    payload: Vec<u8>,
    pos: usize,
    frames: u64,
    events: u64,
    truncated: bool,
    /// False when the 8-byte file header itself was cut off (so strict
    /// decoders can report `Truncated { frame: 0 }`).
    header_complete: bool,
    done: bool,
}

/// Reads until `buf` is full or EOF; returns the number of bytes read.
fn read_full_or_eof<R: Read>(src: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader and validates the 8-byte file header.
    ///
    /// A stream that ends partway through a byte-for-byte valid header is
    /// truncation: the reader opens, yields no events, and reports
    /// [`truncated`](Self::truncated). Wrong bytes anywhere in the header
    /// are hard errors.
    ///
    /// # Errors
    ///
    /// [`BadMagic`], [`UnsupportedVersion`], [`ReservedNonZero`], or I/O.
    ///
    /// [`BadMagic`]: BinaryTraceError::BadMagic
    /// [`UnsupportedVersion`]: BinaryTraceError::UnsupportedVersion
    /// [`ReservedNonZero`]: BinaryTraceError::ReservedNonZero
    pub fn new(mut src: R) -> Result<Self, BinaryTraceError> {
        let mut header = [0u8; HEADER_LEN];
        let n = read_full_or_eof(&mut src, &mut header)?;
        let mut expected = [0u8; HEADER_LEN];
        expected[..4].copy_from_slice(&MAGIC);
        expected[4] = FORMAT_VERSION;
        // Field checks, most significant first, over the bytes present.
        if header[..n.min(4)] != expected[..n.min(4)] {
            let mut found = [0u8; 4];
            found[..n.min(4)].copy_from_slice(&header[..n.min(4)]);
            return Err(BinaryTraceError::BadMagic { found });
        }
        if n > 4 && header[4] != FORMAT_VERSION {
            return Err(BinaryTraceError::UnsupportedVersion { found: header[4] });
        }
        if n > 5 && header[5..n].iter().any(|&b| b != 0) {
            let mut found = [0u8; 3];
            found[..n - 5].copy_from_slice(&header[5..n]);
            return Err(BinaryTraceError::ReservedNonZero { found });
        }
        let truncated = n < HEADER_LEN;
        Ok(TraceReader {
            src,
            payload: Vec::new(),
            pos: 0,
            frames: 0,
            events: 0,
            truncated,
            header_complete: !truncated,
            done: truncated,
        })
    }

    /// Whether the stream ended mid-header or mid-frame (a crash
    /// artifact). Meaningful once iteration has returned `None`. Events
    /// from frames before the cut were all yielded and stand.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Complete frames consumed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Events yielded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Loads the next frame into `self.payload`. Returns `false` on clean
    /// EOF or truncation (sets flags), `true` when a frame is ready.
    fn load_frame(&mut self) -> Result<bool, BinaryTraceError> {
        let mut head = [0u8; FRAME_HEADER_LEN];
        let n = read_full_or_eof(&mut self.src, &mut head)?;
        if n == 0 {
            return Ok(false); // clean end of stream
        }
        if n < FRAME_HEADER_LEN {
            self.truncated = true;
            return Ok(false);
        }
        let declared = u32::from_le_bytes(head[..4].try_into().expect("4-byte slice"));
        let expected = u64::from_le_bytes(head[4..12].try_into().expect("8-byte slice"));
        // Bounded memory beats tail tolerance: an oversized length is
        // rejected even if the stream also happens to be short.
        if declared > MAX_FRAME_BYTES {
            return Err(BinaryTraceError::FrameTooLarge {
                frame: self.frames + 1,
                declared,
            });
        }
        if declared == 0 {
            return Err(BinaryTraceError::Corrupt {
                frame: self.frames + 1,
                offset: 0,
                message: "empty frame".to_string(),
            });
        }
        self.payload.resize(declared as usize, 0);
        let got = read_full_or_eof(&mut self.src, &mut self.payload)?;
        if got < declared as usize {
            self.truncated = true;
            return Ok(false);
        }
        let actual = fnv1a64(&self.payload);
        if actual != expected {
            return Err(BinaryTraceError::ChecksumMismatch {
                frame: self.frames + 1,
                expected,
                actual,
            });
        }
        self.frames += 1;
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Action, BinaryTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.pos >= self.payload.len() {
            match self.load_frame() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        match read_action(&self.payload, &mut self.pos) {
            Ok(action) => {
                self.events += 1;
                Some(Ok(action))
            }
            Err((offset, message)) => {
                self.done = true;
                Some(Err(BinaryTraceError::Corrupt {
                    frame: self.frames,
                    offset,
                    message,
                }))
            }
        }
    }
}

/// Summary of a completed [`StreamRecorder`] capture.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordSummary {
    /// Encoder counters (events, bytes, frames).
    pub encode: EncodeSummary,
    /// Per-action-kind counts of the captured stream.
    pub stats: ActionStats,
    /// Distinct threads observed (including fork targets).
    pub thread_count: usize,
}

/// A [`Detector`] that streams every action into a binary [`TraceWriter`]
/// and reports no races.
///
/// The streaming counterpart of [`RecordingDetector`](crate::RecordingDetector):
/// it captures a live run directly to a sink in bounded memory, tracking
/// [`ActionStats`] and the thread count as it goes. The `Detector`
/// interface cannot surface I/O errors per action, so the first write
/// failure is stashed, subsequent actions are dropped, and the error is
/// returned by [`finish`](Self::finish).
#[derive(Debug)]
pub struct StreamRecorder<W: Write> {
    writer: TraceWriter<W>,
    stats: ActionStats,
    max_thread: Option<u32>,
    error: Option<io::Error>,
}

impl<W: Write> StreamRecorder<W> {
    /// Creates a recorder writing the binary header to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates the header write.
    pub fn new(sink: W) -> io::Result<Self> {
        Ok(StreamRecorder {
            writer: TraceWriter::new(sink)?,
            stats: ActionStats::default(),
            max_thread: None,
            error: None,
        })
    }

    /// Per-action-kind counts of the stream so far.
    pub fn stats(&self) -> &ActionStats {
        &self.stats
    }

    /// Distinct threads observed so far (including fork targets).
    pub fn thread_count(&self) -> usize {
        self.max_thread.map_or(0, |max| max as usize + 1)
    }

    /// Flushes the final frame and returns the sink plus capture summary.
    ///
    /// # Errors
    ///
    /// A write error stashed during capture, or the final flush failing.
    pub fn finish(self) -> io::Result<(W, RecordSummary)> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let thread_count = self.thread_count();
        let (sink, encode) = self.writer.finish()?;
        Ok((
            sink,
            RecordSummary {
                encode,
                stats: self.stats,
                thread_count,
            },
        ))
    }
}

impl<W: Write> Detector for StreamRecorder<W> {
    fn name(&self) -> String {
        "stream-recorder".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        if self.error.is_some() {
            return;
        }
        self.stats.count(action);
        let mut see = |t: ThreadId| {
            self.max_thread = Some(self.max_thread.map_or(t.raw(), |m| m.max(t.raw())));
        };
        if let Some(t) = action.thread() {
            see(t);
        }
        if let Action::Fork { u, .. } | Action::Join { u, .. } = *action {
            see(u);
        }
        if let Err(e) = self.writer.write_action(action) {
            self.error = Some(e);
        }
    }

    fn races(&self) -> &[RaceReport] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    fn sample_trace() -> Trace {
        Trace::parse(
            "fork t0 t1\nsbegin\nwr t0 x3 s5\nacq t1 m0\nvrd t1 v2\nvwr t0 v2\nrd t1 x3 s6\nrel t1 m0\nsend\njoin t0 t1\n",
        )
        .unwrap()
    }

    #[test]
    fn header_layout() {
        let bytes = encode_trace(&Trace::new());
        assert_eq!(bytes.len(), HEADER_LEN, "empty trace is just the header");
        assert_eq!(&bytes[..4], b"PTRC");
        assert_eq!(bytes[4], FORMAT_VERSION);
        assert_eq!(&bytes[5..8], &[0, 0, 0]);
        assert!(is_binary_trace(&bytes));
        assert!(!is_binary_trace(b"fork t0 t1\n"));
    }

    #[test]
    fn varint_canonical_vectors() {
        // (value, canonical encoding) pairs from TRACE_FORMAT.md §3.
        let vectors: &[(u32, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (16_384, &[0x80, 0x80, 0x01]),
            (u32::MAX, &[0xff, 0xff, 0xff, 0xff, 0x0f]),
        ];
        for &(value, encoding) in vectors {
            let mut buf = Vec::new();
            push_varint(&mut buf, value);
            assert_eq!(buf, encoding, "encode {value}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(value));
            assert_eq!(pos, encoding.len());
        }
    }

    #[test]
    fn varint_rejects_non_minimal_and_overflow() {
        // 0x80 0x00 is a two-byte zero: non-minimal.
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x00], &mut pos).is_err());
        // Five bytes with a final byte above 0x0f overflows u32.
        let mut pos = 0;
        assert!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x10], &mut pos).is_err());
        // Truncated mid-varint.
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
    }

    #[test]
    fn round_trips_and_is_canonical() {
        for trace in [
            Trace::new(),
            sample_trace(),
            GenConfig::small(11).generate(),
        ] {
            let bytes = encode_trace(&trace);
            let decoded = decode_trace(&bytes).unwrap();
            assert_eq!(decoded, trace);
            assert_eq!(encode_trace(&decoded), bytes, "byte-identity re-encode");
        }
    }

    #[test]
    fn frames_split_on_event_target() {
        // 10_000 identical events must span ⌈10_000/4096⌉ = 3 frames.
        let trace = Trace::from_actions(vec![Action::SampleBegin; 10_000]);
        let bytes = encode_trace(&trace);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.by_ref().count(), 10_000);
        assert_eq!(reader.frames(), 3);
        assert!(!reader.truncated());
    }

    #[test]
    fn reader_is_bounded_by_frames() {
        // The reader's buffer never exceeds one frame even for large
        // traces: indirectly checked by frames() > 1 above; here check the
        // payload capacity invariant directly.
        let trace = GenConfig::small(3).generate();
        let bytes = encode_trace(&trace);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        while let Some(item) = reader.next() {
            item.unwrap();
            assert!(reader.payload.len() <= MAX_FRAME_BYTES as usize);
        }
    }

    #[test]
    fn truncated_tail_is_clean_partial_stop() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        // A cut exactly at the header boundary is a complete (empty)
        // stream, not truncation.
        let reader = TraceReader::new(&bytes[..HEADER_LEN]).unwrap();
        assert!(!reader.truncated());
        assert_eq!(decode_trace(&bytes[..HEADER_LEN]).unwrap(), Trace::new());
        // Cut anywhere strictly inside the single frame: all-or-nothing at
        // frame granularity, so a mid-frame cut yields zero events here.
        for cut in HEADER_LEN + 1..bytes.len() - 1 {
            let mut reader = TraceReader::new(&bytes[..cut]).unwrap();
            let events: Result<Vec<_>, _> = reader.by_ref().collect();
            let events = events.unwrap_or_else(|e| panic!("cut {cut}: hard error {e}"));
            assert!(events.is_empty(), "cut {cut} inside the only frame");
            assert!(reader.truncated(), "cut {cut} must report truncation");
            // The strict decoder refuses the same input.
            assert!(matches!(
                decode_trace(&bytes[..cut]),
                Err(BinaryTraceError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn truncated_header_is_clean_partial_stop() {
        let bytes = encode_trace(&sample_trace());
        for cut in 0..HEADER_LEN {
            let mut reader = TraceReader::new(&bytes[..cut]).unwrap();
            assert!(reader.next().is_none());
            assert!(reader.truncated(), "cut {cut}");
            assert!(matches!(
                decode_trace(&bytes[..cut]),
                Err(BinaryTraceError::Truncated { frame: 0 })
            ));
        }
    }

    #[test]
    fn earlier_frames_survive_a_truncated_tail() {
        // Two frames (4096-event target); cut inside the second.
        let trace = Trace::from_actions(vec![Action::SampleBegin; FRAME_EVENT_TARGET + 100]);
        let bytes = encode_trace(&trace);
        let cut = bytes.len() - 7;
        let mut reader = TraceReader::new(&bytes[..cut]).unwrap();
        let events: Result<Vec<_>, _> = reader.by_ref().collect();
        assert_eq!(
            events.unwrap().len(),
            FRAME_EVENT_TARGET,
            "the complete first frame's events stand"
        );
        assert!(reader.truncated());
    }

    #[test]
    fn bit_flips_are_hard_errors() {
        let bytes = encode_trace(&sample_trace());
        // Flip one bit in every byte position: every flip must surface as
        // a structured hard error (never a silent wrong decode — the
        // checksum covers the payload, the header checks cover the rest).
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x10;
            let outcome = decode_trace(&damaged);
            assert!(outcome.is_err(), "flip at byte {i} went undetected");
            match TraceReader::new(&damaged[..]) {
                Err(_) => {} // header flip
                Ok(reader) => {
                    // A length-field flip can make the frame read past EOF
                    // (truncation) or oversized; anything else must be a
                    // checksum mismatch, not a quietly different trace.
                    let hard = reader.filter_map(Result::err).next();
                    if hard.is_none() {
                        let mut r = TraceReader::new(&damaged[..]).unwrap();
                        r.by_ref().for_each(drop);
                        assert!(r.truncated(), "flip at byte {i} decoded cleanly");
                    }
                }
            }
        }
    }

    #[test]
    fn checksum_mismatch_is_reported_with_frame_index() {
        let bytes = encode_trace(&sample_trace());
        let mut damaged = bytes.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x01; // payload byte of frame 1
        match decode_trace(&damaged) {
            Err(BinaryTraceError::ChecksumMismatch { frame: 1, .. }) => {}
            other => panic!("expected checksum mismatch on frame 1, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_version_reserved_are_hard_errors() {
        let good = encode_trace(&sample_trace());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'Q';
        assert!(matches!(
            decode_trace(&bad_magic),
            Err(BinaryTraceError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 2;
        assert!(matches!(
            decode_trace(&bad_version),
            Err(BinaryTraceError::UnsupportedVersion { found: 2 })
        ));

        let mut bad_reserved = good.clone();
        bad_reserved[6] = 0xff;
        assert!(matches!(
            decode_trace(&bad_reserved),
            Err(BinaryTraceError::ReservedNonZero { .. })
        ));

        // A text trace fails magic detection, not some deeper parse.
        assert!(matches!(
            decode_trace(b"fork t0 t1\n"),
            Err(BinaryTraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(BinaryTraceError::FrameTooLarge {
                frame: 1,
                declared
            }) if declared == MAX_FRAME_BYTES + 1
        ));
    }

    #[test]
    fn empty_frame_is_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(b"").to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(BinaryTraceError::Corrupt { frame: 1, .. })
        ));
    }

    #[test]
    fn checksummed_garbage_payload_is_corrupt_not_mismatch() {
        // A frame whose checksum is *valid* but whose payload is not a
        // well-formed event stream: unknown opcode.
        let payload = [0xee_u8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match decode_trace(&bytes) {
            Err(BinaryTraceError::Corrupt {
                frame: 1,
                offset: 0,
                message,
            }) => {
                assert!(message.contains("opcode"), "{message}");
            }
            other => panic!("expected corrupt frame, got {other:?}"),
        }
    }

    #[test]
    fn event_cut_by_frame_boundary_is_corrupt() {
        // A checksummed frame that ends mid-event (opcode with a missing
        // operand) is corruption, not truncation: the frame is complete.
        let payload = [OP_FORK, 0x00]; // fork t0 <missing u>
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            decode_trace(&bytes),
            Err(BinaryTraceError::Corrupt { frame: 1, .. })
        ));
    }

    #[test]
    fn stream_recorder_matches_encode_trace() {
        let trace = GenConfig::small(5).generate();
        let mut rec = StreamRecorder::new(Vec::new()).unwrap();
        for action in &trace {
            rec.on_action(action);
        }
        assert_eq!(rec.thread_count(), trace.thread_count());
        let (bytes, summary) = rec.finish().unwrap();
        assert_eq!(bytes, encode_trace(&trace));
        assert_eq!(summary.encode.events as usize, trace.len());
        assert_eq!(summary.encode.bytes as usize, bytes.len());
        assert_eq!(summary.stats, trace.stats());
        assert_eq!(summary.thread_count, trace.thread_count());
    }

    #[test]
    fn stream_recorder_surfaces_write_errors_at_finish() {
        /// A sink that accepts the header then fails every write.
        #[derive(Debug)]
        struct FailAfterHeader {
            written: usize,
        }
        impl Write for FailAfterHeader {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.written >= HEADER_LEN {
                    return Err(io::Error::other("disk full"));
                }
                self.written += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rec = StreamRecorder::new(FailAfterHeader { written: 0 }).unwrap();
        // Enough events to force a frame flush, which fails.
        for _ in 0..FRAME_EVENT_TARGET + 1 {
            rec.on_action(&Action::SampleBegin);
        }
        let err = rec.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn compression_beats_text_substantially() {
        // The acceptance bar for the whole PR: binary ≥ 3× smaller
        // bytes/event than text, here on a representative generated trace.
        let trace = GenConfig::small(42).generate();
        let text_bytes = trace.to_text().len();
        let binary_bytes = encode_trace(&trace).len();
        assert!(
            (binary_bytes as f64) * 3.0 <= text_bytes as f64,
            "binary {binary_bytes}B vs text {text_bytes}B on {} events",
            trace.len()
        );
    }

    #[test]
    fn split_frames_addresses_every_frame_verbatim() {
        let trace = Trace::from_actions(vec![Action::SampleBegin; 2 * FRAME_EVENT_TARGET + 100]);
        let bytes = encode_trace(&trace);
        let split = split_frames(&bytes).unwrap();
        assert_eq!(split.frames.len(), 3);
        assert!(!split.truncated);
        // Ranges tile the buffer exactly: header, then frames end-to-end.
        assert_eq!(split.frames[0].start, HEADER_LEN);
        for (i, f) in split.frames.iter().enumerate() {
            assert_eq!(f.offset, i as u64);
            if i > 0 {
                assert_eq!(f.start, split.frames[i - 1].end);
            }
        }
        assert_eq!(split.frames.last().unwrap().end, bytes.len());
        // Reassembling header + frames is byte-identity, and each frame
        // decodes standalone; concatenated they are the whole trace.
        let mut rebuilt = bytes[..HEADER_LEN].to_vec();
        let mut events = Vec::new();
        for f in &split.frames {
            rebuilt.extend_from_slice(&bytes[f.start..f.end]);
            events.extend(decode_frame_payload(&bytes[f.start..f.end], f.offset + 1).unwrap());
        }
        assert_eq!(rebuilt, bytes);
        assert_eq!(events, trace.actions());
    }

    #[test]
    fn split_frames_mirrors_reader_damage_semantics() {
        let bytes = encode_trace(&sample_trace());
        // Torn tail: every strict-interior cut is clean truncation — except
        // a cut exactly at the header boundary, a complete empty stream.
        for cut in 0..bytes.len() - 1 {
            let split = split_frames(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: torn tail must not be a hard error: {e}"));
            assert_eq!(split.truncated, cut != HEADER_LEN, "cut {cut}");
            assert!(split.frames.is_empty(), "single-frame trace, cut {cut}");
        }
        // Payload damage is a hard checksum error.
        let mut damaged = bytes.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x01;
        assert!(matches!(
            split_frames(&damaged),
            Err(BinaryTraceError::ChecksumMismatch { frame: 1, .. })
        ));
        // Header damage is a hard header error.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Q';
        assert!(matches!(
            split_frames(&bad_magic),
            Err(BinaryTraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn decode_frame_payload_rejects_damage() {
        let bytes = encode_trace(&sample_trace());
        let split = split_frames(&bytes).unwrap();
        let frame = &bytes[split.frames[0].start..split.frames[0].end];

        // Short of the declared payload → truncated, with the caller's index.
        assert!(matches!(
            decode_frame_payload(&frame[..frame.len() - 1], 7),
            Err(BinaryTraceError::Truncated { frame: 7 })
        ));
        // Trailing garbage past the declared payload → corrupt.
        let mut long = frame.to_vec();
        long.push(0xaa);
        assert!(matches!(
            decode_frame_payload(&long, 1),
            Err(BinaryTraceError::Corrupt { frame: 1, .. })
        ));
        // Flipped payload byte → checksum mismatch.
        let mut flipped = frame.to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            decode_frame_payload(&flipped, 1),
            Err(BinaryTraceError::ChecksumMismatch { frame: 1, .. })
        ));
        // The END marker is a zero-length frame: never valid payload bytes.
        assert!(matches!(
            decode_frame_payload(&END_FRAME_MARKER, 1),
            Err(BinaryTraceError::Corrupt { frame: 1, .. })
        ));
    }

    #[test]
    fn errors_render() {
        let e = BinaryTraceError::ChecksumMismatch {
            frame: 3,
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("frame 3"));
        let e = BinaryTraceError::Truncated { frame: 0 };
        assert!(e.to_string().contains("header"));
        let e = BinaryTraceError::BadMagic { found: *b"meow" };
        assert!(e.to_string().contains("PTRC"));
    }
}
