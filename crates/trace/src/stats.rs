//! Per-kind action counts.

use std::fmt;

use crate::Action;

/// Counts of each action kind in a trace or execution.
///
/// Used by the harness to characterize workloads (reads/writes/sync mixes,
/// Table 3 denominators) and by the runtime's sampling-bias correction,
/// which "measures program work in terms of synchronization operations"
/// (§4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActionStats {
    /// `rd` actions.
    pub reads: u64,
    /// `wr` actions.
    pub writes: u64,
    /// `acq` actions.
    pub acquires: u64,
    /// `rel` actions.
    pub releases: u64,
    /// `fork` actions.
    pub forks: u64,
    /// `join` actions.
    pub joins: u64,
    /// `vol_rd` actions.
    pub vol_reads: u64,
    /// `vol_wr` actions.
    pub vol_writes: u64,
    /// `sbegin` markers.
    pub sample_begins: u64,
    /// `send` markers.
    pub sample_ends: u64,
}

impl ActionStats {
    /// Counts the actions in `actions`.
    pub fn of<'a, I: IntoIterator<Item = &'a Action>>(actions: I) -> Self {
        let mut s = ActionStats::default();
        for a in actions {
            s.count(a);
        }
        s
    }

    /// Adds one action to the counts.
    pub fn count(&mut self, action: &Action) {
        match action {
            Action::Read { .. } => self.reads += 1,
            Action::Write { .. } => self.writes += 1,
            Action::Acquire { .. } => self.acquires += 1,
            Action::Release { .. } => self.releases += 1,
            Action::Fork { .. } => self.forks += 1,
            Action::Join { .. } => self.joins += 1,
            Action::VolRead { .. } => self.vol_reads += 1,
            Action::VolWrite { .. } => self.vol_writes += 1,
            Action::SampleBegin => self.sample_begins += 1,
            Action::SampleEnd => self.sample_ends += 1,
        }
    }

    /// Total data-variable accesses (`rd` + `wr`).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total synchronization operations (`acq`, `rel`, `fork`, `join`,
    /// `vol_rd`, `vol_wr`) — the paper's measure of program work.
    pub fn sync_ops(&self) -> u64 {
        self.acquires + self.releases + self.forks + self.joins + self.vol_reads + self.vol_writes
    }

    /// Total actions counted (including sampling markers).
    pub fn total(&self) -> u64 {
        self.accesses() + self.sync_ops() + self.sample_begins + self.sample_ends
    }
}

impl fmt::Display for ActionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} acq={} rel={} fork={} join={} vrd={} vwr={}",
            self.reads,
            self.writes,
            self.acquires,
            self.releases,
            self.forks,
            self.joins,
            self.vol_reads,
            self.vol_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn counts_every_kind() {
        let trace = Trace::parse(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s0
            rd t1 x0 s1
            acq t1 m0
            rel t1 m0
            vrd t0 v0
            vwr t0 v0
            send
            join t0 t1
        ",
        )
        .unwrap();
        let s = trace.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.acquires, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.forks, 1);
        assert_eq!(s.joins, 1);
        assert_eq!(s.vol_reads, 1);
        assert_eq!(s.vol_writes, 1);
        assert_eq!(s.sample_begins, 1);
        assert_eq!(s.sample_ends, 1);
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.sync_ops(), 6);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ActionStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.to_string().matches('0').count(), 8);
    }
}
