//! The text fixture format for traces.
//!
//! One action per line, matching each action's [`Display`] form:
//!
//! ```text
//! # comments and blank lines are ignored
//! fork t0 t1
//! sbegin
//! wr t0 x3 s5
//! rel t0 m0
//! send
//! acq t1 m0
//! rd t1 x3 s9
//! join t0 t1
//! ```
//!
//! [`Display`]: std::fmt::Display

use std::error::Error;
use std::fmt;

use pacer_clock::ThreadId;

use crate::{Action, LockId, SiteId, Trace, VarId, VolatileId};

/// An error produced while parsing the trace text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line,
        message: message.into(),
    }
}

fn parse_id(token: &str, prefix: char, line: usize) -> Result<u32, ParseTraceError> {
    let rest = token
        .strip_prefix(prefix)
        .ok_or_else(|| err(line, format!("expected `{prefix}<n>`, found `{token}`")))?;
    rest.parse::<u32>()
        .map_err(|_| err(line, format!("invalid number in `{token}`")))
}

struct Tokens<'a> {
    parts: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Tokens<'a> {
    fn next(&mut self) -> Result<&'a str, ParseTraceError> {
        self.parts
            .next()
            .ok_or_else(|| err(self.line, "missing operand"))
    }

    fn thread(&mut self) -> Result<ThreadId, ParseTraceError> {
        let tok = self.next()?;
        Ok(ThreadId::new(parse_id(tok, 't', self.line)?))
    }

    fn var(&mut self) -> Result<VarId, ParseTraceError> {
        let tok = self.next()?;
        Ok(VarId::new(parse_id(tok, 'x', self.line)?))
    }

    fn lock(&mut self) -> Result<LockId, ParseTraceError> {
        let tok = self.next()?;
        Ok(LockId::new(parse_id(tok, 'm', self.line)?))
    }

    fn volatile(&mut self) -> Result<VolatileId, ParseTraceError> {
        let tok = self.next()?;
        Ok(VolatileId::new(parse_id(tok, 'v', self.line)?))
    }

    fn site(&mut self) -> Result<SiteId, ParseTraceError> {
        let tok = self.next()?;
        Ok(SiteId::new(parse_id(tok, 's', self.line)?))
    }

    fn finish(mut self) -> Result<(), ParseTraceError> {
        match self.parts.next() {
            None => Ok(()),
            Some(extra) => Err(err(self.line, format!("unexpected trailing `{extra}`"))),
        }
    }
}

/// Parses the text format. See the [module docs](self) for the grammar.
pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let mut toks = Tokens {
            parts,
            line: line_no,
        };
        let action = match op {
            "rd" => Action::Read {
                t: toks.thread()?,
                x: toks.var()?,
                site: toks.site()?,
            },
            "wr" => Action::Write {
                t: toks.thread()?,
                x: toks.var()?,
                site: toks.site()?,
            },
            "acq" => Action::Acquire {
                t: toks.thread()?,
                m: toks.lock()?,
            },
            "rel" => Action::Release {
                t: toks.thread()?,
                m: toks.lock()?,
            },
            "fork" => Action::Fork {
                t: toks.thread()?,
                u: toks.thread()?,
            },
            "join" => Action::Join {
                t: toks.thread()?,
                u: toks.thread()?,
            },
            "vrd" => Action::VolRead {
                t: toks.thread()?,
                v: toks.volatile()?,
            },
            "vwr" => Action::VolWrite {
                t: toks.thread()?,
                v: toks.volatile()?,
            },
            "sbegin" => Action::SampleBegin,
            "send" => Action::SampleEnd,
            other => return Err(err(line_no, format!("unknown action `{other}`"))),
        };
        toks.finish()?;
        trace.push(action);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_action_kinds() {
        let text = "
            # header comment
            fork t0 t1
            sbegin
            wr t0 x3 s5
            rd t1 x3 s9
            acq t1 m0
            rel t1 m0
            vrd t0 v1
            vwr t0 v1
            send
            join t0 t1
        ";
        let trace = parse(text).unwrap();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.to_text().lines().count(), 10);
    }

    #[test]
    fn round_trips_through_display() {
        let text = "wr t0 x3 s5\nsbegin\nrd t1 x3 s9\n";
        let trace = parse(text).unwrap();
        assert_eq!(trace.to_text(), text);
    }

    #[test]
    fn reports_unknown_action_with_line() {
        let e = parse("fork t0 t1\nbogus t0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn reports_missing_operand() {
        let e = parse("rd t0 x1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn reports_bad_prefix() {
        let e = parse("rd x0 x1 s0").unwrap_err();
        assert!(e.message.contains("expected `t<n>`"));
    }

    #[test]
    fn reports_bad_number() {
        let e = parse("rd tX x1 s0").unwrap_err();
        assert!(e.message.contains("invalid number"));
    }

    #[test]
    fn reports_trailing_tokens() {
        let e = parse("sbegin now").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n  \n# only comments\n").unwrap().is_empty());
    }
}
