//! Seeded random trace generators for tests and benchmarks.
//!
//! [`GenConfig`] describes a family of synthetic multithreaded executions:
//! a main thread forks `threads - 1` workers, each worker performs a random
//! mix of guarded and unguarded variable accesses plus volatile traffic, and
//! the main thread joins everyone. The per-variable *lock discipline*
//! probability controls raciness: at `1.0` every access to `x` holds
//! `lock_of(x)` and the trace is race-free by construction; lower values
//! leave some accesses unguarded, producing real races.
//!
//! Interleaving is produced by a seeded scheduler that only picks enabled
//! actions, so generated traces always satisfy [`Trace::validate`].
//!
//! # Examples
//!
//! ```
//! use pacer_trace::gen::GenConfig;
//! use pacer_trace::HbOracle;
//!
//! let racy = GenConfig::small(42).with_lock_discipline(0.5).generate();
//! racy.validate().expect("generated traces are well-formed");
//!
//! let clean = GenConfig::small(42).race_free().generate();
//! assert!(HbOracle::analyze(&clean).is_race_free());
//! ```

use pacer_clock::ThreadId;
use pacer_prng::Rng;

use crate::{Action, LockId, SiteId, Trace, VarId, VolatileId};

/// How generated accesses get their [`SiteId`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteMode {
    /// Every dynamic access gets a fresh site (useful when a test must
    /// identify races exactly by site pair).
    UniquePerEvent,
    /// Each variable has this many static sites, shared across its dynamic
    /// accesses (models real programs, where distinct races are few).
    PerVar(u32),
}

/// Configuration for the random trace generator. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Total threads, including the main thread `t0`. Must be ≥ 1.
    pub threads: usize,
    /// Number of data variables.
    pub vars: usize,
    /// Number of locks; variable `x` is guarded by lock `x mod locks`.
    pub locks: usize,
    /// Number of volatile variables (0 disables volatile traffic).
    pub volatiles: usize,
    /// Operations per worker thread (each op is one access, possibly
    /// wrapped in an acquire/release pair, or one volatile access).
    pub ops_per_thread: usize,
    /// Probability that an access to `x` holds `lock_of(x)`.
    pub lock_discipline: f64,
    /// Probability that an access is a write (vs. a read).
    pub write_fraction: f64,
    /// Probability that an op is a volatile access instead of a data access.
    pub volatile_prob: f64,
    /// Site assignment policy.
    pub site_mode: SiteMode,
    /// RNG seed; equal configs with equal seeds generate equal traces.
    pub seed: u64,
}

impl GenConfig {
    /// A small config suitable for unit and property tests.
    pub fn small(seed: u64) -> Self {
        GenConfig {
            threads: 4,
            vars: 8,
            locks: 2,
            volatiles: 1,
            ops_per_thread: 25,
            lock_discipline: 0.8,
            write_fraction: 0.4,
            volatile_prob: 0.05,
            site_mode: SiteMode::UniquePerEvent,
            seed,
        }
    }

    /// Sets the lock-discipline probability.
    pub fn with_lock_discipline(mut self, p: f64) -> Self {
        self.lock_discipline = p;
        self
    }

    /// Sets the number of threads (including main).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets operations per worker thread.
    pub fn with_ops_per_thread(mut self, ops: usize) -> Self {
        self.ops_per_thread = ops;
        self
    }

    /// Sets the site assignment policy.
    pub fn with_site_mode(mut self, mode: SiteMode) -> Self {
        self.site_mode = mode;
        self
    }

    /// Full lock discipline: the generated trace is race-free by
    /// construction.
    pub fn race_free(mut self) -> Self {
        self.lock_discipline = 1.0;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, or `locks == 0` while `lock_discipline >
    /// 0`, or `volatiles == 0` while `volatile_prob > 0`.
    pub fn generate(&self) -> Trace {
        assert!(self.threads >= 1, "need at least the main thread");
        assert!(
            self.locks > 0 || self.lock_discipline == 0.0,
            "lock discipline requires locks"
        );
        assert!(
            self.volatiles > 0 || self.volatile_prob == 0.0,
            "volatile traffic requires volatiles"
        );

        let mut rng = Rng::seed_from_u64(self.seed);
        let mut next_site = 0u32;
        let mut site_for = |x: VarId, rng: &mut Rng| -> SiteId {
            match self.site_mode {
                SiteMode::UniquePerEvent => {
                    let s = SiteId::new(next_site);
                    next_site += 1;
                    s
                }
                SiteMode::PerVar(k) => SiteId::new(x.raw() * k + rng.gen_range(0..k.max(1))),
            }
        };

        // Build each worker's action script.
        let mut scripts: Vec<Vec<Action>> = Vec::with_capacity(self.threads);
        scripts.push(Vec::new()); // main thread acts via fork/join only
        for ti in 1..self.threads {
            let t = ThreadId::new(ti as u32);
            let mut script = Vec::with_capacity(self.ops_per_thread * 3);
            for _ in 0..self.ops_per_thread {
                if self.volatiles > 0 && rng.gen_bool(self.volatile_prob) {
                    let v = VolatileId::new(rng.gen_range(0..self.volatiles as u32));
                    if rng.gen_bool(0.5) {
                        script.push(Action::VolRead { t, v });
                    } else {
                        script.push(Action::VolWrite { t, v });
                    }
                    continue;
                }
                let x = VarId::new(rng.gen_range(0..self.vars.max(1) as u32));
                let site = site_for(x, &mut rng);
                let access = if rng.gen_bool(self.write_fraction) {
                    Action::Write { t, x, site }
                } else {
                    Action::Read { t, x, site }
                };
                if self.lock_discipline > 0.0 && rng.gen_bool(self.lock_discipline) {
                    let m = LockId::new(x.raw() % self.locks as u32);
                    script.push(Action::Acquire { t, m });
                    script.push(access);
                    script.push(Action::Release { t, m });
                } else {
                    script.push(access);
                }
            }
            scripts.push(script);
        }

        let mut trace = Trace::new();
        let main = ThreadId::new(0);
        for ti in 1..self.threads {
            trace.push(Action::Fork {
                t: main,
                u: ThreadId::new(ti as u32),
            });
        }

        // Scheduler: repeatedly pick a random thread whose next action is
        // enabled (an acquire of a free lock, or anything else).
        let mut cursors = vec![0usize; self.threads];
        let mut held: std::collections::HashMap<LockId, ThreadId> =
            std::collections::HashMap::new();
        let mut live: Vec<usize> = (1..self.threads)
            .filter(|&ti| !scripts[ti].is_empty())
            .collect();
        while !live.is_empty() {
            rng.shuffle(&mut live);
            let mut progressed = false;
            for pos in 0..live.len() {
                let ti = live[pos];
                let action = scripts[ti][cursors[ti]];
                let enabled = match action {
                    Action::Acquire { m, .. } => !held.contains_key(&m),
                    _ => true,
                };
                if !enabled {
                    continue;
                }
                match action {
                    Action::Acquire { t, m } => {
                        held.insert(m, t);
                    }
                    Action::Release { m, .. } => {
                        held.remove(&m);
                    }
                    _ => {}
                }
                trace.push(action);
                cursors[ti] += 1;
                if cursors[ti] == scripts[ti].len() {
                    live.remove(pos);
                }
                progressed = true;
                break;
            }
            debug_assert!(progressed, "scheduler wedged: all heads blocked");
            if !progressed {
                break;
            }
        }

        for ti in 1..self.threads {
            trace.push(Action::Join {
                t: main,
                u: ThreadId::new(ti as u32),
            });
        }
        trace
    }
}

/// Overlays random global sampling periods onto `trace`, inserting
/// `sbegin`/`send` markers so that, in expectation, a fraction `rate` of
/// actions falls inside sampling periods, with mean period length
/// `avg_period` actions.
///
/// This models PACER's global sampling controller at trace granularity (the
/// runtime crate instead toggles at simulated GC boundaries, §4).
///
/// # Panics
///
/// Panics unless `0 ≤ rate ≤ 1` and `avg_period ≥ 1`.
pub fn insert_sampling_periods(trace: &Trace, rate: f64, avg_period: usize, seed: u64) -> Trace {
    let mut out = Trace::new();
    for action in ResampleSampling::new(trace.iter().copied(), rate, avg_period, seed) {
        out.push(action);
    }
    out
}

/// Streaming form of [`insert_sampling_periods`]: consumes an action stream,
/// drops any existing `sbegin`/`send` markers, and overlays fresh random
/// sampling periods on the fly.
///
/// Emits at most one extra marker per input action plus a closing `send`, and
/// buffers at most one action, so it composes with the incremental binary
/// [`TraceReader`](crate::TraceReader) without materialising the whole trace
/// (`pacer replay --resample` uses exactly that pairing). For equal seeds the
/// output is action-for-action identical to [`insert_sampling_periods`] on
/// the materialised trace: both draw exactly one coin flip per non-marker
/// input action.
///
/// # Panics
///
/// `new` panics unless `0 ≤ rate ≤ 1` and `avg_period ≥ 1`.
#[derive(Debug)]
pub struct ResampleSampling<I> {
    inner: I,
    rng: Rng,
    rate: f64,
    p_on: f64,
    p_off: f64,
    sampling: bool,
    finished: bool,
    /// Action held back while its preceding marker is yielded.
    pending: Option<Action>,
}

impl<I: Iterator<Item = Action>> ResampleSampling<I> {
    /// Wraps `inner`, overlaying sampling periods at the given `rate` with
    /// mean period length `avg_period` actions, seeded by `seed`.
    pub fn new(inner: I, rate: f64, avg_period: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(avg_period >= 1, "avg_period must be at least 1");
        let p_off = 1.0 / avg_period as f64;
        let p_on = if rate >= 1.0 {
            1.0
        } else {
            (p_off * rate / (1.0 - rate)).min(1.0)
        };
        ResampleSampling {
            inner,
            rng: Rng::seed_from_u64(seed),
            rate,
            p_on,
            p_off,
            sampling: false,
            finished: false,
            pending: None,
        }
    }
}

impl<I: Iterator<Item = Action>> Iterator for ResampleSampling<I> {
    type Item = Action;

    fn next(&mut self) -> Option<Action> {
        if let Some(held) = self.pending.take() {
            return Some(held);
        }
        loop {
            match self.inner.next() {
                Some(action) if action.is_sampling_marker() => continue,
                Some(action) => {
                    if self.sampling {
                        if self.rng.gen_bool(self.p_off) && self.rate < 1.0 {
                            self.sampling = false;
                            self.pending = Some(action);
                            return Some(Action::SampleEnd);
                        }
                        return Some(action);
                    }
                    if self.rng.gen_bool(self.p_on) {
                        self.sampling = true;
                        self.pending = Some(action);
                        return Some(Action::SampleBegin);
                    }
                    return Some(action);
                }
                None => {
                    if self.sampling && !self.finished {
                        self.finished = true;
                        return Some(Action::SampleEnd);
                    }
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HbOracle;

    #[test]
    fn generated_traces_are_well_formed() {
        for seed in 0..20 {
            let trace = GenConfig::small(seed).generate();
            trace
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: invalid trace: {e}\n{}", trace.to_text()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GenConfig::small(7).generate();
        let b = GenConfig::small(7).generate();
        assert_eq!(a, b);
        let c = GenConfig::small(8).generate();
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn full_discipline_is_race_free() {
        for seed in 0..10 {
            let trace = GenConfig::small(seed).race_free().generate();
            assert!(
                HbOracle::analyze(&trace).is_race_free(),
                "seed {seed} produced a race under full lock discipline"
            );
        }
    }

    #[test]
    fn low_discipline_produces_races() {
        let mut any = false;
        for seed in 0..10 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.0).generate();
            any |= !HbOracle::analyze(&trace).is_race_free();
        }
        assert!(any, "unguarded traces should race");
    }

    #[test]
    fn op_counts_match_config() {
        let cfg = GenConfig {
            volatile_prob: 0.0,
            lock_discipline: 0.0,
            ..GenConfig::small(1)
        };
        let trace = cfg.generate();
        let stats = trace.stats();
        assert_eq!(
            stats.accesses() as usize,
            (cfg.threads - 1) * cfg.ops_per_thread
        );
        assert_eq!(stats.forks as usize, cfg.threads - 1);
        assert_eq!(stats.joins as usize, cfg.threads - 1);
    }

    #[test]
    fn single_thread_config_generates_only_main() {
        let cfg = GenConfig {
            threads: 1,
            ..GenConfig::small(0)
        };
        let trace = cfg.generate();
        assert!(trace.is_empty());
    }

    #[test]
    fn sampling_overlay_hits_requested_rate() {
        let trace = GenConfig::small(3).with_ops_per_thread(2000).generate();
        let sampled = insert_sampling_periods(&trace, 0.10, 50, 9);
        sampled.validate().unwrap();
        let mask = sampled.sampling_mask();
        let non_marker: Vec<_> = sampled
            .iter()
            .zip(&mask)
            .filter(|(a, _)| !a.is_sampling_marker())
            .collect();
        let inside = non_marker.iter().filter(|(_, &m)| m).count();
        let rate = inside as f64 / non_marker.len() as f64;
        assert!(
            (0.05..0.20).contains(&rate),
            "effective rate {rate} too far from 0.10"
        );
    }

    #[test]
    fn sampling_overlay_full_rate_covers_everything() {
        let trace = GenConfig::small(3).generate();
        let sampled = insert_sampling_periods(&trace, 1.0, 10, 0);
        let mask = sampled.sampling_mask();
        let uncovered = sampled
            .iter()
            .zip(&mask)
            .filter(|(a, &m)| !a.is_sampling_marker() && !m)
            .count();
        assert_eq!(uncovered, 0);
    }

    #[test]
    fn streaming_resampler_matches_materialised_overlay() {
        let trace = GenConfig::small(7).with_ops_per_thread(500).generate();
        let pre_sampled = insert_sampling_periods(&trace, 0.25, 20, 1);
        // Resampling a trace that already carries markers strips them first,
        // so the streamed output over the marked trace equals the batch
        // overlay of the unmarked one.
        let streamed: Vec<Action> =
            ResampleSampling::new(pre_sampled.iter().copied(), 0.10, 50, 9).collect();
        let batch = insert_sampling_periods(&trace, 0.10, 50, 9);
        assert_eq!(streamed, batch.actions());
        let mut rebuilt = Trace::new();
        for a in streamed {
            rebuilt.push(a);
        }
        rebuilt.validate().unwrap();
    }

    #[test]
    fn per_var_site_mode_limits_distinct_sites() {
        let cfg = GenConfig::small(5).with_site_mode(SiteMode::PerVar(2));
        let trace = cfg.generate();
        let mut sites: Vec<u32> = trace
            .iter()
            .filter_map(|a| a.access().map(|(_, _, s)| s.raw()))
            .collect();
        sites.sort();
        sites.dedup();
        assert!(sites.len() <= cfg.vars * 2);
    }
}
