//! Space-over-time accounting: what the detector's metadata is made of.

use std::ops::AddAssign;

use crate::json;

/// A breakdown of live detector metadata into its constituent parts, in
/// machine words.
///
/// The split mirrors the savings PACER's mechanisms buy (Fig. 7, §5.4):
/// shallow copies show up as `clock_words_shared` (storage referenced by
/// more than one owner is charged once, here), metadata discard shows up as
/// `tracked_vars` shrinking between sampling periods, and version epochs
/// show up as `version_words` — the price paid for `O(1)` joins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceBreakdown {
    /// Words in vector-clock buffers referenced by more than one owner
    /// (thread, lock, or volatile) — storage shallow copies share.
    pub clock_words_shared: u64,
    /// Words in vector-clock buffers with a single owner.
    pub clock_words_owned: u64,
    /// Words in version vectors and version epochs (§A.3).
    pub version_words: u64,
    /// Words in per-variable write metadata (write epoch + site).
    pub write_words: u64,
    /// Words in per-variable read maps (epoch or inflated map).
    pub read_map_words: u64,
    /// Detector-specific extra state (e.g. LITERACE's per-region sampler
    /// counters), in words.
    pub other_words: u64,
    /// Number of read-map entries across all variables (a count, not
    /// charged to [`total_words`](Self::total_words)).
    pub read_map_entries: u64,
    /// Number of variables currently carrying metadata (a count, not
    /// charged to [`total_words`](Self::total_words)).
    pub tracked_vars: u64,
}

impl SpaceBreakdown {
    /// Total live metadata in machine words — the quantity the harness's
    /// space experiments (Fig. 10) plot.
    pub fn total_words(&self) -> u64 {
        self.clock_words_shared
            + self.clock_words_owned
            + self.version_words
            + self.write_words
            + self.read_map_words
            + self.other_words
    }

    pub(crate) fn write_json_fields(&self, out: &mut String, first: &mut bool) {
        json::field_u64(out, first, "clock_words_shared", self.clock_words_shared);
        json::field_u64(out, first, "clock_words_owned", self.clock_words_owned);
        json::field_u64(out, first, "version_words", self.version_words);
        json::field_u64(out, first, "write_words", self.write_words);
        json::field_u64(out, first, "read_map_words", self.read_map_words);
        json::field_u64(out, first, "other_words", self.other_words);
        json::field_u64(out, first, "read_map_entries", self.read_map_entries);
        json::field_u64(out, first, "tracked_vars", self.tracked_vars);
        json::field_u64(out, first, "total_words", self.total_words());
    }
}

impl AddAssign for SpaceBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.clock_words_shared += rhs.clock_words_shared;
        self.clock_words_owned += rhs.clock_words_owned;
        self.version_words += rhs.version_words;
        self.write_words += rhs.write_words;
        self.read_map_words += rhs.read_map_words;
        self.other_words += rhs.other_words;
        self.read_map_entries += rhs.read_map_entries;
        self.tracked_vars += rhs.tracked_vars;
    }
}

/// One point on the space-over-time curve: a [`SpaceBreakdown`] taken at a
/// full-heap GC boundary, tagged with the VM step count and live program
/// heap (Fig. 7's axes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceRecord {
    /// VM steps executed when the sample was taken.
    pub steps: u64,
    /// Live program heap bytes after the collection.
    pub heap_bytes: u64,
    /// The metadata breakdown at that moment.
    pub breakdown: SpaceBreakdown,
}

impl SpaceRecord {
    /// Serializes as one JSON object.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "steps", self.steps);
        json::field_u64(out, &mut first, "heap_bytes", self.heap_bytes);
        self.breakdown.write_json_fields(out, &mut first);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_excludes_counts() {
        let b = SpaceBreakdown {
            clock_words_shared: 10,
            clock_words_owned: 20,
            version_words: 5,
            write_words: 4,
            read_map_words: 3,
            other_words: 2,
            read_map_entries: 100,
            tracked_vars: 50,
        };
        assert_eq!(b.total_words(), 44);
    }

    #[test]
    fn add_assign_is_fieldwise() {
        let mut a = SpaceBreakdown {
            clock_words_owned: 1,
            tracked_vars: 2,
            ..SpaceBreakdown::default()
        };
        a += a;
        assert_eq!(a.clock_words_owned, 2);
        assert_eq!(a.tracked_vars, 4);
    }

    #[test]
    fn record_json_includes_total() {
        let rec = SpaceRecord {
            steps: 7,
            heap_bytes: 96,
            breakdown: SpaceBreakdown {
                clock_words_owned: 3,
                ..SpaceBreakdown::default()
            },
        };
        let mut out = String::new();
        rec.write_json(&mut out);
        assert!(out.starts_with("{\"steps\":7,\"heap_bytes\":96,"));
        assert!(out.contains("\"total_words\":3"));
    }
}
