//! Observing a detector without touching its hot path.

use pacer_trace::{AccessKind, Action, Detector, RaceReport};

use crate::event::Event;
use crate::hist::HistKind;
use crate::registry::Registry;
use crate::space::{SpaceBreakdown, SpaceRecord};
use crate::stats::PacerStats;

/// A detector the observability layer knows how to measure.
///
/// Implemented by every detector in the suite (PACER, accordion-PACER,
/// FASTTRACK, GENERIC, LITERACE). The two hooks are *pull*-based — the
/// [`Observed`] wrapper calls them around actions and at GC boundaries —
/// so implementing this trait adds **zero** cost to a detector that is not
/// wrapped.
pub trait ObservableDetector: Detector {
    /// The current live-metadata breakdown (Fig. 7's space accounting).
    fn space_breakdown(&self) -> SpaceBreakdown;

    /// The detector's operation counters, for detectors that keep
    /// [`PacerStats`] (PACER variants). Others return `None`.
    fn pacer_stats(&self) -> Option<PacerStats> {
        None
    }

    /// The resource governor changed the effective sampling rate (in
    /// millionths) at a GC boundary. Detectors whose sampling is driven by
    /// the runtime's GC sampler (PACER variants) need no action — the
    /// runtime retargets the sampler for them — so the default is a no-op.
    /// Detectors that sample internally (LITERACE) scale their own
    /// admission decisions here.
    fn on_rate_change(&mut self, _rate_millionths: u32) {}

    /// The thread whose vector-clock entry overflowed during this run, if
    /// any. Detectors record the first overflow stickily (clocks saturate
    /// instead of panicking); the harness converts a post-run `Some` into a
    /// quarantinable trial error.
    fn clock_overflow(&self) -> Option<pacer_clock::ThreadId> {
        None
    }
}

/// Wraps an [`ObservableDetector`], reporting into a [`Registry`] by
/// diffing the detector's observable state around each action.
///
/// With a disabled registry the per-action overhead is one branch and a
/// delegated call; the wrapped detector itself is never modified, so
/// benchmarks running the bare detector are unaffected entirely.
///
/// Emitted events: [`Event::PeriodBegin`]/[`Event::PeriodEnd`] at sampling
/// markers (with the period's sync-op count fed into the
/// [`HistKind::PeriodSyncOps`] histogram), [`Event::Race`] for each new
/// race report, and [`Event::CopyPromotion`] for each clone-on-write the
/// action triggered. [`record_space`](Self::record_space) — called from
/// the runtime's GC probe — adds [`Event::Gc`] and a [`SpaceRecord`].
///
/// # Examples
///
/// ```
/// use pacer_obs::{ObservableDetector, Observed, Registry, RegistryConfig, SpaceBreakdown};
/// use pacer_trace::{Action, Detector, RaceReport};
///
/// /// A detector that never reports anything.
/// #[derive(Default)]
/// struct Quiet;
/// impl Detector for Quiet {
///     fn name(&self) -> String { "quiet".into() }
///     fn on_action(&mut self, _: &Action) {}
///     fn races(&self) -> &[RaceReport] { &[] }
/// }
/// impl ObservableDetector for Quiet {
///     fn space_breakdown(&self) -> SpaceBreakdown { SpaceBreakdown::default() }
/// }
///
/// let mut obs = Observed::new(Quiet, Registry::enabled(RegistryConfig::default()));
/// obs.on_action(&Action::SampleBegin);
/// obs.on_action(&Action::SampleEnd);
/// let (_, registry) = obs.finish();
/// assert_eq!(registry.metrics().events_recorded, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Observed<D> {
    inner: D,
    registry: Registry,
    period_index: u64,
    period_start_sync_ops: u64,
}

impl<D: ObservableDetector> Observed<D> {
    /// Wraps `inner`, reporting into `registry`.
    pub fn new(inner: D, registry: Registry) -> Self {
        Observed {
            inner,
            registry,
            period_index: 0,
            period_start_sync_ops: 0,
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped detector, mutably (e.g. to deliver governor signals).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The registry (e.g. to record run-level counters).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Takes a space sample of the wrapped detector's current metadata —
    /// the runtime's full-GC probe calls this.
    pub fn record_space(&mut self, steps: u64, heap_bytes: u64) {
        if !self.registry.is_enabled() {
            return;
        }
        let breakdown = self.inner.space_breakdown();
        self.registry.record_space(SpaceRecord {
            steps,
            heap_bytes,
            breakdown,
        });
    }

    /// Finishes observation: stamps the detector's final counters and race
    /// total into the registry and returns both parts.
    pub fn finish(mut self) -> (D, Registry) {
        if self.registry.is_enabled() {
            let stats = self.inner.pacer_stats().unwrap_or_default();
            self.registry.add_detector_stats(stats);
            self.registry.add_races(self.inner.races().len() as u64);
        }
        (self.inner, self.registry)
    }

    fn emit_action_events(
        &mut self,
        action: &Action,
        races_before: usize,
        stats_before: Option<PacerStats>,
    ) {
        let stats_after = self.inner.pacer_stats();
        match action {
            Action::SampleBegin => {
                let index = self.period_index;
                self.registry.event(|| Event::PeriodBegin { index });
                self.period_start_sync_ops = stats_after.map_or(0, |s| s.sampled_sync_ops);
            }
            Action::SampleEnd => {
                let index = self.period_index;
                let sync_ops = stats_after
                    .map_or(0, |s| s.sampled_sync_ops)
                    .saturating_sub(self.period_start_sync_ops);
                self.registry.event(|| Event::PeriodEnd { index, sync_ops });
                self.registry.record_hist(HistKind::PeriodSyncOps, sync_ops);
                self.period_index += 1;
            }
            _ => {}
        }
        let races = self.inner.races();
        for r in &races[races_before..] {
            let ev = race_event(r);
            self.registry.event(|| ev);
        }
        if let (Some(before), Some(after)) = (stats_before, stats_after) {
            let tid = action.thread().map(|t| t.raw());
            for _ in before.cow_clones..after.cow_clones {
                self.registry.event(|| Event::CopyPromotion { tid });
            }
        }
    }
}

fn race_event(r: &RaceReport) -> Event {
    Event::Race {
        var: r.x.raw(),
        first_tid: r.first.tid.raw(),
        first_site: r.first.site.raw(),
        first_write: r.first.kind == AccessKind::Write,
        second_tid: r.second.tid.raw(),
        second_site: r.second.site.raw(),
        second_write: r.second.kind == AccessKind::Write,
    }
}

impl<D: ObservableDetector> Detector for Observed<D> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn on_action(&mut self, action: &Action) {
        if !self.registry.is_enabled() {
            // Disabled path: one branch, then straight to the detector.
            self.inner.on_action(action);
            return;
        }
        let races_before = self.inner.races().len();
        let stats_before = self.inner.pacer_stats();
        self.inner.on_action(action);
        self.emit_action_events(action, races_before, stats_before);
    }

    fn races(&self) -> &[RaceReport] {
        self.inner.races()
    }
}

impl<D: ObservableDetector> ObservableDetector for Observed<D> {
    fn space_breakdown(&self) -> SpaceBreakdown {
        self.inner.space_breakdown()
    }

    fn pacer_stats(&self) -> Option<PacerStats> {
        self.inner.pacer_stats()
    }

    fn on_rate_change(&mut self, rate_millionths: u32) {
        self.inner.on_rate_change(rate_millionths);
    }

    fn clock_overflow(&self) -> Option<pacer_clock::ThreadId> {
        self.inner.clock_overflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use pacer_trace::{Access, SiteId, VarId};

    /// A scripted detector: reports one race on its third action, counts a
    /// cow clone on every sync action.
    #[derive(Default)]
    struct Scripted {
        actions: usize,
        races: Vec<RaceReport>,
        stats: PacerStats,
    }

    impl Detector for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }
        fn on_action(&mut self, action: &Action) {
            self.actions += 1;
            match action {
                Action::SampleBegin => self.stats.sample_periods += 1,
                Action::Acquire { .. } => {
                    self.stats.sampled_sync_ops += 1;
                    self.stats.cow_clones += 1;
                }
                _ => {}
            }
            if self.actions == 3 {
                let a = Access {
                    tid: pacer_clock::ThreadId::new(0),
                    kind: AccessKind::Write,
                    site: SiteId::new(1),
                };
                self.races.push(RaceReport {
                    x: VarId::new(7),
                    first: a,
                    second: Access {
                        tid: pacer_clock::ThreadId::new(1),
                        kind: AccessKind::Read,
                        site: SiteId::new(2),
                    },
                });
            }
        }
        fn races(&self) -> &[RaceReport] {
            &self.races
        }
    }

    impl ObservableDetector for Scripted {
        fn space_breakdown(&self) -> SpaceBreakdown {
            SpaceBreakdown {
                clock_words_owned: self.actions as u64,
                ..SpaceBreakdown::default()
            }
        }
        fn pacer_stats(&self) -> Option<PacerStats> {
            Some(self.stats)
        }
    }

    fn acq() -> Action {
        Action::Acquire {
            t: pacer_clock::ThreadId::new(1),
            m: pacer_trace::LockId::new(0),
        }
    }

    #[test]
    fn periods_races_and_promotions_are_traced() {
        let mut obs = Observed::new(
            Scripted::default(),
            Registry::enabled(RegistryConfig::default()),
        );
        obs.on_action(&Action::SampleBegin);
        obs.on_action(&acq());
        obs.on_action(&acq()); // third action → race + cow clone
        obs.on_action(&Action::SampleEnd);
        obs.record_space(40, 96);
        let (det, registry) = obs.finish();
        assert_eq!(det.races().len(), 1);

        let jsonl = registry.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines.len(),
            6,
            "begin, 2 promotions, race, end, gc: {jsonl}"
        );
        assert!(lines[0].contains("period_begin"));
        assert!(lines[1].contains("\"ev\":\"copy_promotion\",\"tid\":1"));
        assert!(lines[2].contains("\"ev\":\"race\",\"var\":7"));
        assert!(lines[3].contains("\"ev\":\"copy_promotion\""));
        assert!(lines[4].contains("\"sync_ops\":2"));
        assert!(lines[5].contains("\"ev\":\"gc\""));

        let m = registry.metrics();
        assert_eq!(m.races_reported, 1);
        assert_eq!(m.detector.cow_clones, 2);
        assert_eq!(m.hist(HistKind::PeriodSyncOps).sum, 2);
        assert_eq!(m.space.len(), 1);
        assert_eq!(m.space[0].steps, 40);
    }

    #[test]
    fn disabled_wrapper_only_delegates() {
        let mut obs = Observed::new(Scripted::default(), Registry::disabled());
        obs.on_action(&Action::SampleBegin);
        obs.on_action(&acq());
        obs.on_action(&acq());
        obs.record_space(1, 2);
        let (det, registry) = obs.finish();
        assert_eq!(det.races().len(), 1, "detector still saw everything");
        assert_eq!(registry.metrics(), crate::Metrics::default());
    }
}
