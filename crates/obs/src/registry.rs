//! The metrics registry: the one sink everything reports into.

use crate::event::{Event, EventRing};
use crate::hist::{HistKind, Histogram, HIST_COUNT};
use crate::metrics::{FaultCounters, FuzzCounters, GovernorCounters, Metrics, RuntimeCounters};
use crate::space::SpaceRecord;
use crate::stats::PacerStats;

/// Configuration for an enabled [`Registry`].
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Maximum events retained by the trace ring; older events are evicted
    /// (and counted) once full.
    pub ring_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            ring_capacity: 65_536,
        }
    }
}

/// The sink counters, histograms, events, and space samples flow into.
///
/// A registry is either *enabled* or *disabled* for its whole lifetime.
/// Every recording method begins with a single branch on that flag; a
/// disabled registry records nothing and **allocates nothing** (enforced
/// by the `no_alloc` integration test). This is what lets the harness
/// thread an `Observed` wrapper everywhere without perturbing benchmarks
/// that run with observability off.
///
/// # Examples
///
/// ```
/// use pacer_obs::{Event, HistKind, Registry, RegistryConfig};
///
/// let mut reg = Registry::enabled(RegistryConfig::default());
/// reg.event(|| Event::PeriodBegin { index: 0 });
/// reg.record_hist(HistKind::PeriodSyncOps, 12);
/// assert_eq!(reg.metrics().events_recorded, 1);
/// assert!(reg.events_jsonl().starts_with("{\"ev\":\"period_begin\""));
/// ```
#[derive(Clone, Debug)]
pub struct Registry {
    enabled: bool,
    ring: EventRing,
    hists: [Histogram; HIST_COUNT],
    space: Vec<SpaceRecord>,
    detector: PacerStats,
    races_reported: u64,
    runtime: RuntimeCounters,
    fuzz: FuzzCounters,
    faults: FaultCounters,
    governor: GovernorCounters,
}

impl Default for Registry {
    /// The default registry is disabled.
    fn default() -> Self {
        Registry::disabled()
    }
}

impl Registry {
    /// Creates an enabled registry.
    pub fn enabled(config: RegistryConfig) -> Self {
        Registry {
            enabled: true,
            ring: EventRing::new(config.ring_capacity),
            ..Registry::disabled()
        }
    }

    /// Creates a disabled registry. Construction performs no heap
    /// allocation, and neither does any later recording call.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            ring: EventRing::new(0),
            hists: [Histogram::new(), Histogram::new(), Histogram::new()],
            space: Vec::new(),
            detector: PacerStats::default(),
            races_reported: 0,
            runtime: RuntimeCounters::default(),
            fuzz: FuzzCounters::default(),
            faults: FaultCounters::default(),
            governor: GovernorCounters::default(),
        }
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. The closure is only invoked when enabled, so
    /// callers can build events (including ones carrying `String`s)
    /// without any disabled-path cost beyond the branch.
    #[inline]
    pub fn event(&mut self, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.ring.push(make());
        }
    }

    /// Records a value into the histogram for `kind`.
    #[inline]
    pub fn record_hist(&mut self, kind: HistKind, value: u64) {
        if self.enabled {
            self.hists[kind.index()].record(value);
        }
    }

    /// Records a space sample, emitting the matching [`Event::Gc`] and
    /// updating the GC histograms.
    pub fn record_space(&mut self, rec: SpaceRecord) {
        if !self.enabled {
            return;
        }
        self.ring.push(Event::from_space(&rec));
        self.hists[HistKind::GcMetadataWords.index()].record(rec.breakdown.total_words());
        self.hists[HistKind::GcHeapBytes.index()].record(rec.heap_bytes);
        self.space.push(rec);
    }

    /// Accumulates a detector's final operation counters.
    pub fn add_detector_stats(&mut self, stats: PacerStats) {
        if self.enabled {
            self.detector += stats;
        }
    }

    /// Accumulates dynamic race reports.
    pub fn add_races(&mut self, count: u64) {
        if self.enabled {
            self.races_reported += count;
        }
    }

    /// Accumulates a run's runtime counters.
    pub fn add_runtime(&mut self, counters: RuntimeCounters) {
        if self.enabled {
            self.runtime += counters;
        }
    }

    /// Accumulates a fuzzing campaign's counters.
    pub fn add_fuzz(&mut self, counters: FuzzCounters) {
        if self.enabled {
            self.fuzz += counters;
        }
    }

    /// Accumulates a fault-injection campaign's counters.
    pub fn add_faults(&mut self, counters: FaultCounters) {
        if self.enabled {
            self.faults += counters;
        }
    }

    /// Accumulates a governed campaign's counters.
    pub fn add_governor(&mut self, counters: GovernorCounters) {
        if self.enabled {
            self.governor += counters;
        }
    }

    /// Takes an immutable [`Metrics`] snapshot of everything recorded.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            detector: self.detector,
            races_reported: self.races_reported,
            runtime: self.runtime,
            fuzz: self.fuzz,
            faults: self.faults,
            governor: self.governor,
            hists: self.hists.clone(),
            space: self.space.clone(),
            events_recorded: self.ring.recorded(),
            events_dropped: self.ring.dropped(),
        }
    }

    /// The retained events as JSONL, one event per line, oldest first.
    pub fn events_jsonl(&self) -> String {
        self.ring.to_jsonl()
    }

    /// The event ring (for inspection in tests).
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceBreakdown;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = Registry::disabled();
        reg.event(|| Event::PeriodBegin { index: 0 });
        reg.record_hist(HistKind::PeriodSyncOps, 9);
        reg.record_space(SpaceRecord::default());
        reg.add_detector_stats(PacerStats {
            cow_clones: 5,
            ..PacerStats::default()
        });
        reg.add_races(3);
        reg.add_runtime(RuntimeCounters {
            trials: 1,
            ..RuntimeCounters::default()
        });
        let m = reg.metrics();
        assert_eq!(m, Metrics::default());
        assert_eq!(reg.events_jsonl(), "");
    }

    #[test]
    fn disabled_event_closure_is_never_called() {
        let mut reg = Registry::disabled();
        reg.event(|| panic!("must not be constructed when disabled"));
        assert_eq!(reg.ring().recorded(), 0);
    }

    #[test]
    fn enabled_registry_snapshots_everything() {
        let mut reg = Registry::enabled(RegistryConfig { ring_capacity: 8 });
        reg.event(|| Event::PeriodBegin { index: 0 });
        reg.record_space(SpaceRecord {
            steps: 10,
            heap_bytes: 48,
            breakdown: SpaceBreakdown {
                clock_words_owned: 4,
                ..SpaceBreakdown::default()
            },
        });
        reg.add_races(1);
        let m = reg.metrics();
        assert_eq!(m.events_recorded, 2, "period + gc event");
        assert_eq!(m.space.len(), 1);
        assert_eq!(m.hist(HistKind::GcMetadataWords).count, 1);
        assert_eq!(m.hist(HistKind::GcHeapBytes).sum, 48);
        assert_eq!(m.races_reported, 1);
        let jsonl = reg.events_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"ev\":\"gc\""));
    }
}
