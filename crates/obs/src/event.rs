//! Typed trace events and the bounded ring buffer that stores them.

use crate::json;
use crate::space::SpaceRecord;

/// One structured trace event.
///
/// Events carry raw integer identifiers (thread, variable, and site ids)
/// rather than typed wrappers so the JSONL output is self-describing and
/// compact. The serialized schema, with one worked example per variant, is
/// documented in `OBSERVABILITY.md`.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A sampling period opened (`sbegin`, Table 5 rule 1). `index` counts
    /// periods from 0 within one run.
    PeriodBegin {
        /// Zero-based period number within the run.
        index: u64,
    },
    /// A sampling period closed (`send`, Table 5 rule 2).
    PeriodEnd {
        /// Zero-based period number within the run.
        index: u64,
        /// Synchronization operations analyzed inside the period.
        sync_ops: u64,
    },
    /// The detector reported a race (the paper's §4 "Reporting Races").
    Race {
        /// Racing variable id.
        var: u32,
        /// Thread of the earlier access (recorded in metadata).
        first_tid: u32,
        /// Site of the earlier access.
        first_site: u32,
        /// Whether the earlier access was a write.
        first_write: bool,
        /// Thread of the later access.
        second_tid: u32,
        /// Site of the later access.
        second_site: u32,
        /// Whether the later access was a write.
        second_write: bool,
    },
    /// A shared (shallow-copied) vector clock was deep-copied before a
    /// mutation — a clone-on-write promotion (Algorithms 10/11).
    CopyPromotion {
        /// The acting thread, when the triggering action has one.
        tid: Option<u32>,
    },
    /// The compiler's escape analysis proved a local non-escaping and
    /// elided instrumentation on its field accesses (§4).
    EscapeElision {
        /// Enclosing function name.
        func: String,
        /// The provably thread-local variable.
        var: String,
    },
    /// A full-heap GC boundary with its space sample (Fig. 7's x-axis).
    Gc {
        /// VM steps executed when the collection ran.
        steps: u64,
        /// Live program heap bytes after collection.
        heap_bytes: u64,
        /// Live detector metadata in machine words.
        metadata_words: u64,
    },
    /// An armed fault plan injected a failure into a trial attempt.
    FaultInjected {
        /// Fault site name (`pacer_faults::FaultSite::name`).
        site: String,
        /// Trial index the fault targeted.
        trial: u64,
        /// Zero-based attempt the fault fired on.
        attempt: u64,
    },
    /// A trial exhausted its retry budget and was quarantined.
    TrialQuarantined {
        /// Quarantined trial index.
        trial: u64,
        /// Attempts consumed (1 + retries).
        attempts: u64,
        /// Classified fault site, when the failure was injected.
        site: Option<String>,
    },
    /// The resource governor moved the sampling rate one ladder rung at a
    /// GC boundary.
    RateStepped {
        /// VM steps executed when the rate changed.
        steps: u64,
        /// Rate before the step, in millionths.
        from_millionths: u64,
        /// Rate after the step, in millionths.
        to_millionths: u64,
        /// True when stepping back up after pressure cleared.
        up: bool,
    },
    /// Usage exceeded a hard governor budget at a GC boundary.
    BudgetBreach {
        /// VM steps executed at the breaching boundary.
        steps: u64,
        /// Budget kind name (`"mem"` or `"deadline"`).
        budget: String,
        /// Observed usage at the boundary.
        usage: u64,
        /// The hard limit that was exceeded.
        limit: u64,
    },
    /// A governed trial ran degraded: its rate was stepped down, and it
    /// either finished at a reduced rate or was cancelled at the floor.
    TrialDegraded {
        /// Degraded trial index.
        trial: u64,
        /// Rate in effect when the trial ended, in millionths.
        final_rate_millionths: u64,
        /// Budget kind name when the trial was cancelled at the floor.
        cancelled: Option<String>,
    },
}

impl Event {
    /// The stable `"ev"` discriminator used in JSONL output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::PeriodBegin { .. } => "period_begin",
            Event::PeriodEnd { .. } => "period_end",
            Event::Race { .. } => "race",
            Event::CopyPromotion { .. } => "copy_promotion",
            Event::EscapeElision { .. } => "escape_elision",
            Event::Gc { .. } => "gc",
            Event::FaultInjected { .. } => "fault_injected",
            Event::TrialQuarantined { .. } => "trial_quarantined",
            Event::RateStepped { .. } => "rate_stepped",
            Event::BudgetBreach { .. } => "budget_breach",
            Event::TrialDegraded { .. } => "trial_degraded",
        }
    }

    /// Appends this event as one JSONL line (including the trailing
    /// newline) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_str(out, &mut first, "ev", self.kind_name());
        match self {
            Event::PeriodBegin { index } => {
                json::field_u64(out, &mut first, "index", *index);
            }
            Event::PeriodEnd { index, sync_ops } => {
                json::field_u64(out, &mut first, "index", *index);
                json::field_u64(out, &mut first, "sync_ops", *sync_ops);
            }
            Event::Race {
                var,
                first_tid,
                first_site,
                first_write,
                second_tid,
                second_site,
                second_write,
            } => {
                json::field_u64(out, &mut first, "var", u64::from(*var));
                json::field_u64(out, &mut first, "first_tid", u64::from(*first_tid));
                json::field_u64(out, &mut first, "first_site", u64::from(*first_site));
                json::field_str(out, &mut first, "first_kind", kind_str(*first_write));
                json::field_u64(out, &mut first, "second_tid", u64::from(*second_tid));
                json::field_u64(out, &mut first, "second_site", u64::from(*second_site));
                json::field_str(out, &mut first, "second_kind", kind_str(*second_write));
            }
            Event::CopyPromotion { tid } => match tid {
                Some(t) => json::field_u64(out, &mut first, "tid", u64::from(*t)),
                None => {
                    json::key(out, &mut first, "tid");
                    out.push_str("null");
                }
            },
            Event::EscapeElision { func, var } => {
                json::field_str(out, &mut first, "func", func);
                json::field_str(out, &mut first, "var", var);
            }
            Event::Gc {
                steps,
                heap_bytes,
                metadata_words,
            } => {
                json::field_u64(out, &mut first, "steps", *steps);
                json::field_u64(out, &mut first, "heap_bytes", *heap_bytes);
                json::field_u64(out, &mut first, "metadata_words", *metadata_words);
            }
            Event::FaultInjected {
                site,
                trial,
                attempt,
            } => {
                json::field_str(out, &mut first, "site", site);
                json::field_u64(out, &mut first, "trial", *trial);
                json::field_u64(out, &mut first, "attempt", *attempt);
            }
            Event::TrialQuarantined {
                trial,
                attempts,
                site,
            } => {
                json::field_u64(out, &mut first, "trial", *trial);
                json::field_u64(out, &mut first, "attempts", *attempts);
                match site {
                    Some(s) => json::field_str(out, &mut first, "site", s),
                    None => {
                        json::key(out, &mut first, "site");
                        out.push_str("null");
                    }
                }
            }
            Event::RateStepped {
                steps,
                from_millionths,
                to_millionths,
                up,
            } => {
                json::field_u64(out, &mut first, "steps", *steps);
                json::field_u64(out, &mut first, "from_millionths", *from_millionths);
                json::field_u64(out, &mut first, "to_millionths", *to_millionths);
                json::field_str(out, &mut first, "dir", if *up { "up" } else { "down" });
            }
            Event::BudgetBreach {
                steps,
                budget,
                usage,
                limit,
            } => {
                json::field_u64(out, &mut first, "steps", *steps);
                json::field_str(out, &mut first, "budget", budget);
                json::field_u64(out, &mut first, "usage", *usage);
                json::field_u64(out, &mut first, "limit", *limit);
            }
            Event::TrialDegraded {
                trial,
                final_rate_millionths,
                cancelled,
            } => {
                json::field_u64(out, &mut first, "trial", *trial);
                json::field_u64(
                    out,
                    &mut first,
                    "final_rate_millionths",
                    *final_rate_millionths,
                );
                match cancelled {
                    Some(b) => json::field_str(out, &mut first, "cancelled", b),
                    None => {
                        json::key(out, &mut first, "cancelled");
                        out.push_str("null");
                    }
                }
            }
        }
        out.push_str("}\n");
    }

    /// Builds the GC event for a space record.
    pub(crate) fn from_space(rec: &SpaceRecord) -> Event {
        Event::Gc {
            steps: rec.steps,
            heap_bytes: rec.heap_bytes,
            metadata_words: rec.breakdown.total_words(),
        }
    }
}

fn kind_str(write: bool) -> &'static str {
    if write {
        "wr"
    } else {
        "rd"
    }
}

/// A bounded FIFO of [`Event`]s that drops the **oldest** events once full,
/// counting what it dropped — a run can never use unbounded memory for its
/// trace, and the tail (usually the interesting part) survives.
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    buf: std::collections::VecDeque<Event>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring that keeps at most `capacity` events. Nothing is allocated
    /// until the first push.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: std::collections::VecDeque::new(),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full (or
    /// dropping the new event outright when capacity is zero).
    pub fn push(&mut self, event: Event) {
        self.recorded += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Total events ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted or rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Serializes the retained events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            e.write_jsonl(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trip_shapes() {
        let mut out = String::new();
        Event::PeriodBegin { index: 2 }.write_jsonl(&mut out);
        assert_eq!(out, "{\"ev\":\"period_begin\",\"index\":2}\n");

        out.clear();
        Event::Race {
            var: 3,
            first_tid: 0,
            first_site: 11,
            first_write: true,
            second_tid: 1,
            second_site: 12,
            second_write: false,
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"race\",\"var\":3,\"first_tid\":0,\"first_site\":11,\
             \"first_kind\":\"wr\",\"second_tid\":1,\"second_site\":12,\
             \"second_kind\":\"rd\"}\n"
        );

        out.clear();
        Event::CopyPromotion { tid: None }.write_jsonl(&mut out);
        assert_eq!(out, "{\"ev\":\"copy_promotion\",\"tid\":null}\n");

        out.clear();
        Event::EscapeElision {
            func: "work\"er".into(),
            var: "o".into(),
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"escape_elision\",\"func\":\"work\\\"er\",\"var\":\"o\"}\n"
        );

        out.clear();
        Event::RateStepped {
            steps: 500,
            from_millionths: 30_000,
            to_millionths: 15_000,
            up: false,
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"rate_stepped\",\"steps\":500,\"from_millionths\":30000,\
             \"to_millionths\":15000,\"dir\":\"down\"}\n"
        );

        out.clear();
        Event::BudgetBreach {
            steps: 900,
            budget: "mem".into(),
            usage: 2048,
            limit: 1024,
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"budget_breach\",\"steps\":900,\"budget\":\"mem\",\
             \"usage\":2048,\"limit\":1024}\n"
        );

        out.clear();
        Event::TrialDegraded {
            trial: 3,
            final_rate_millionths: 3_750,
            cancelled: Some("mem".into()),
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"trial_degraded\",\"trial\":3,\
             \"final_rate_millionths\":3750,\"cancelled\":\"mem\"}\n"
        );

        out.clear();
        Event::TrialDegraded {
            trial: 4,
            final_rate_millionths: 7_500,
            cancelled: None,
        }
        .write_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"trial_degraded\",\"trial\":4,\
             \"final_rate_millionths\":7500,\"cancelled\":null}\n"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = EventRing::new(2);
        for i in 0..5 {
            ring.push(Event::PeriodBegin { index: i });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<_> = ring.iter().cloned().collect();
        assert_eq!(
            kept,
            vec![
                Event::PeriodBegin { index: 3 },
                Event::PeriodBegin { index: 4 }
            ]
        );
    }

    #[test]
    fn zero_capacity_ring_rejects_everything() {
        let mut ring = EventRing::new(0);
        ring.push(Event::PeriodBegin { index: 0 });
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.to_jsonl(), "");
    }
}
