//! Fixed-bucket log₂ histograms.

use std::fmt;

use crate::json;

/// Number of buckets in every [`Histogram`]: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 64;

/// The histograms the suite records, indexed into [`Registry`] by this
/// enum so recording is an array index, never a map lookup or allocation.
///
/// [`Registry`]: crate::Registry
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistKind {
    /// Synchronization operations per completed sampling period — the
    /// paper's measure of sampled *work* per period (§4's bias-corrected
    /// sampler divides by exactly this quantity).
    PeriodSyncOps,
    /// Live detector metadata (machine words) at each full-heap GC — the
    /// distribution behind the Fig. 7 space-over-time curves.
    GcMetadataWords,
    /// Live program heap bytes at each full-heap GC.
    GcHeapBytes,
}

/// Number of [`HistKind`] variants (the registry's histogram array size).
pub const HIST_COUNT: usize = 3;

impl HistKind {
    /// All kinds, in serialization order.
    pub const ALL: [HistKind; HIST_COUNT] = [
        HistKind::PeriodSyncOps,
        HistKind::GcMetadataWords,
        HistKind::GcHeapBytes,
    ];

    /// The stable snake_case name used in JSON output and OBSERVABILITY.md.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::PeriodSyncOps => "period_sync_ops",
            HistKind::GcMetadataWords => "gc_metadata_words",
            HistKind::GcHeapBytes => "gc_heap_bytes",
        }
    }

    /// The registry's array index for this kind.
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// A histogram with [`HIST_BUCKETS`] fixed log₂ buckets plus exact count,
/// sum, min, and max.
///
/// The bucket layout never changes, so merging two histograms is
/// element-wise addition and serialized output is deterministic.
///
/// # Examples
///
/// ```
/// use pacer_obs::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.count, 3);
/// assert_eq!(h.sum, 10);
/// assert_eq!((h.min(), h.max), (Some(0), 5));
/// assert_eq!(h.bucket_counts()[0], 1, "value 0 lands in bucket 0");
/// assert_eq!(h.bucket_counts()[3], 2, "5 ∈ [4, 8) lands in bucket 3");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    min: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. Storage is inline — construction allocates
    /// nothing.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Index of the bucket holding `value`: 0 for 0, else
    /// `1 + ⌊log₂ value⌋`, capped at the last bucket.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Smallest recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Rebuilds a histogram from its serialized parts (the inverse of
    /// [`write_json`](Self::write_json), used by `Metrics::from_json`).
    /// `min` is the serialized value, which is 0 for an empty histogram;
    /// the internal empty sentinel is restored from `count == 0`.
    pub(crate) fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        bucket_pairs: &[(usize, u64)],
    ) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.max = max;
        h.min = if count == 0 { u64::MAX } else { min };
        for &(i, c) in bucket_pairs {
            if i >= HIST_BUCKETS {
                return None;
            }
            h.buckets[i] = c;
        }
        Some(h)
    }

    /// Serializes as a JSON object; only non-empty buckets are listed, as
    /// `[index, count]` pairs in index order.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "count", self.count);
        json::field_u64(out, &mut first, "sum", self.sum);
        json::field_u64(out, &mut first, "min", self.min().unwrap_or(0));
        json::field_u64(out, &mut first, "max", self.max);
        json::key(out, &mut first, "buckets");
        out.push('[');
        let mut first_bucket = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first_bucket {
                out.push(',');
            }
            first_bucket = false;
            out.push_str(&format!("[{i},{c}]"));
        }
        out.push_str("]}");
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty)");
        }
        write!(
            f,
            "n={} sum={} min={} max={} mean={}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.sum / self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_extremes_and_sum() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        h.record(10);
        h.record(2);
        h.record(40);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 52);
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max, 40);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(3);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 104);
        assert_eq!(m.min(), Some(1));
        assert_eq!(m.max, 100);
        assert_eq!(m.bucket_counts()[2], 1, "3 came from b");
    }

    #[test]
    fn merge_with_empty_keeps_min() {
        let mut a = Histogram::new();
        a.record(7);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), Some(7));
        assert_eq!(a.count, 1);
    }

    #[test]
    fn json_lists_only_nonempty_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        let mut out = String::new();
        h.write_json(&mut out);
        assert_eq!(
            out,
            "{\"count\":2,\"sum\":5,\"min\":0,\"max\":5,\"buckets\":[[0,1],[3,1]]}"
        );
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> = HistKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), HIST_COUNT);
        for (i, k) in HistKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
