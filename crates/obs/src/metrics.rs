//! The unified [`Metrics`] snapshot type.

use std::fmt;
use std::ops::AddAssign;

use pacer_collections::JsonValue;

use crate::hist::{HistKind, Histogram, HIST_COUNT};
use crate::json;
use crate::space::SpaceRecord;
use crate::stats::PacerStats;

/// Counters the simulated runtime contributes to a snapshot.
///
/// `trials` makes merged snapshots interpretable: averaging any other
/// counter over `trials` recovers a per-run figure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Runs merged into this snapshot.
    pub trials: u64,
    /// VM instructions executed.
    pub steps: u64,
    /// Nursery collections.
    pub gcs: u64,
    /// Full-heap collections (one space sample each).
    pub full_gcs: u64,
    /// Field accesses elided by escape analysis (never instrumented).
    pub elided_accesses: u64,
    /// Bytes allocated (program + charged metadata).
    pub allocated_bytes: u64,
    /// Threads ever started (including main).
    pub threads_started: u64,
    /// Maximum simultaneously live threads, summed over trials (divide by
    /// `trials` for the mean).
    pub max_live_threads: u64,
}

impl AddAssign for RuntimeCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.trials += rhs.trials;
        self.steps += rhs.steps;
        self.gcs += rhs.gcs;
        self.full_gcs += rhs.full_gcs;
        self.elided_accesses += rhs.elided_accesses;
        self.allocated_bytes += rhs.allocated_bytes;
        self.threads_started += rhs.threads_started;
        self.max_live_threads += rhs.max_live_threads;
    }
}

impl RuntimeCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "trials", self.trials);
        json::field_u64(out, &mut first, "steps", self.steps);
        json::field_u64(out, &mut first, "gcs", self.gcs);
        json::field_u64(out, &mut first, "full_gcs", self.full_gcs);
        json::field_u64(out, &mut first, "elided_accesses", self.elided_accesses);
        json::field_u64(out, &mut first, "allocated_bytes", self.allocated_bytes);
        json::field_u64(out, &mut first, "threads_started", self.threads_started);
        json::field_u64(out, &mut first, "max_live_threads", self.max_live_threads);
        out.push('}');
    }
}

/// Per-shard counters the streaming detection service (`pacer serve`)
/// reports — one instance per shard worker, summed for the fleet total.
///
/// Deterministic for variable-sharded detectors at a fixed shard count:
/// access routing is a pure function of the variable id and sync events
/// broadcast everywhere, so neither arrival interleaving nor handler
/// scheduling changes any count (see `SERVICE.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Sessions that materialized detector state in this shard.
    pub sessions: u64,
    /// Events this shard processed (routed accesses + broadcasts).
    /// Counted once per event — supervised replays never double-count.
    pub events: u64,
    /// Data-variable accesses among those events.
    pub accesses: u64,
    /// Dynamic races this shard's detectors reported.
    pub races: u64,
    /// Supervised restarts: panics caught in this shard's worker, each
    /// followed by a deterministic replay rebuild (RESILIENCE.md).
    pub shard_restarts: u64,
    /// Sessions this shard abandoned with a `ShardLost` note after a
    /// unit of work exhausted its restart budget.
    pub sessions_lost: u64,
}

impl AddAssign for ServeCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.sessions += rhs.sessions;
        self.events += rhs.events;
        self.accesses += rhs.accesses;
        self.races += rhs.races;
        self.shard_restarts += rhs.shard_restarts;
        self.sessions_lost += rhs.sessions_lost;
    }
}

impl ServeCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "sessions", self.sessions);
        json::field_u64(out, &mut first, "events", self.events);
        json::field_u64(out, &mut first, "accesses", self.accesses);
        json::field_u64(out, &mut first, "races", self.races);
        json::field_u64(out, &mut first, "shard_restarts", self.shard_restarts);
        json::field_u64(out, &mut first, "sessions_lost", self.sessions_lost);
        out.push('}');
    }

    /// One counter object as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// True when this shard processed nothing.
    pub fn is_zero(&self) -> bool {
        *self == ServeCounters::default()
    }
}

/// Service-level session lifecycle accounting for `pacer serve` — one
/// instance per service run, alongside the per-shard [`ServeCounters`].
///
/// The outcome buckets are disjoint and exhaustive: every admitted
/// session lands in exactly one of `completed`, `shed`, `failed`, or
/// `reaped`, so `admitted == completed + shed + failed + reaped` holds
/// at the end of any run — including runs with supervised shard
/// restarts (`tests/serve_chaos.rs` enforces the conservation law).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Sessions admitted (including duplicates and journal restores).
    pub admitted: u64,
    /// Sessions that completed at full sampling rate (truncated partials
    /// included — truncation is a partial success).
    pub completed: u64,
    /// Sessions the governor admitted at a reduced sampling rate and
    /// that then completed.
    pub shed: u64,
    /// Sessions rejected: corrupt or invalid streams, duplicate names,
    /// deadline overruns, and `ShardLost` casualties.
    pub failed: u64,
    /// Socket sessions reaped by the idle timeout.
    pub reaped: u64,
    /// Of `admitted`, how many were restored verbatim from the resume
    /// journal (informational; restores also land in an outcome bucket).
    pub restored: u64,
}

impl AddAssign for SessionCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.admitted += rhs.admitted;
        self.completed += rhs.completed;
        self.shed += rhs.shed;
        self.failed += rhs.failed;
        self.reaped += rhs.reaped;
        self.restored += rhs.restored;
    }
}

impl SessionCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "admitted", self.admitted);
        json::field_u64(out, &mut first, "completed", self.completed);
        json::field_u64(out, &mut first, "shed", self.shed);
        json::field_u64(out, &mut first, "failed", self.failed);
        json::field_u64(out, &mut first, "reaped", self.reaped);
        json::field_u64(out, &mut first, "restored", self.restored);
        out.push('}');
    }

    /// One counter object as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// The conservation law every run must satisfy (see type docs).
    pub fn conserved(&self) -> bool {
        self.admitted == self.completed + self.shed + self.failed + self.reaped
    }
}

/// Durable-transport counters for `pacer serve --tcp` — one instance per
/// service run, covering the accept loop, the per-frame ack channel, and
/// the per-session write-ahead segments (schema in OBSERVABILITY.md).
///
/// The exactly-once invariant is checkable from these: every frame a
/// client retransmits past the server's applied offset lands in
/// `frames_deduped` instead of being applied twice, so after any
/// disconnect/reconnect pattern `frames_deduped` equals the
/// retransmitted-frame overlap and the session report stays byte-identical
/// to an uninterrupted replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Connections the TCP accept loop handed to a session handler.
    pub connections: u64,
    /// `RESUME` handshakes honored: reattached to a live slot, rebuilt
    /// from a write-ahead segment, or re-served a completed report.
    pub session_resumes: u64,
    /// `RESUME` handshakes rejected (unknown session, unreadable
    /// segment).
    pub resumes_rejected: u64,
    /// `ACK` lines written back to clients (handshake and per-frame).
    pub acks_sent: u64,
    /// Frames appended durably to write-ahead segments.
    pub frames_journaled: u64,
    /// Frames skipped as duplicate or overlapping retransmits — each one
    /// an exactly-once dedup at the applied-offset watermark.
    pub frames_deduped: u64,
}

impl AddAssign for TransportCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.connections += rhs.connections;
        self.session_resumes += rhs.session_resumes;
        self.resumes_rejected += rhs.resumes_rejected;
        self.acks_sent += rhs.acks_sent;
        self.frames_journaled += rhs.frames_journaled;
        self.frames_deduped += rhs.frames_deduped;
    }
}

impl TransportCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "connections", self.connections);
        json::field_u64(out, &mut first, "session_resumes", self.session_resumes);
        json::field_u64(out, &mut first, "resumes_rejected", self.resumes_rejected);
        json::field_u64(out, &mut first, "acks_sent", self.acks_sent);
        json::field_u64(out, &mut first, "frames_journaled", self.frames_journaled);
        json::field_u64(out, &mut first, "frames_deduped", self.frames_deduped);
        out.push('}');
    }

    /// One counter object as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// True when no durable transport activity happened (e.g. a unix or
    /// framed-stdin run).
    pub fn is_zero(&self) -> bool {
        *self == TransportCounters::default()
    }
}

/// The `pacer serve --metrics-out` snapshot: every shard's counters in
/// shard-index order, their sum, the service-level session lifecycle
/// buckets, and the durable-transport counters (schema in
/// OBSERVABILITY.md).
pub fn serve_metrics_json(
    shards: &[ServeCounters],
    sessions: &SessionCounters,
    transport: &TransportCounters,
) -> String {
    let mut total = ServeCounters::default();
    let mut out = String::from("{\n  \"serve\": {\n    \"shards\": [");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        s.write_json(&mut out);
        total += *s;
    }
    out.push_str("],\n    \"total\": ");
    total.write_json(&mut out);
    out.push_str(",\n    \"sessions\": ");
    sessions.write_json(&mut out);
    out.push_str(",\n    \"transport\": ");
    transport.write_json(&mut out);
    out.push_str("\n  }\n}\n");
    out
}

/// Counters the differential fuzzer contributes to a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuzzCounters {
    /// Programs generated and oracle-checked.
    pub programs: u64,
    /// VM executions across all oracle runs.
    pub vm_runs: u64,
    /// Schedule seeds abandoned because the VM returned an error.
    pub vm_errors: u64,
    /// Ground-truth races summed over programs and schedule seeds.
    pub truth_races: u64,
    /// Oracle violations recorded.
    pub violations: u64,
    /// Shrink candidate programs tested against the failure predicate.
    pub shrink_attempts: u64,
    /// Shrink candidates accepted (each one a strictly smaller program).
    pub shrink_successes: u64,
}

impl AddAssign for FuzzCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.programs += rhs.programs;
        self.vm_runs += rhs.vm_runs;
        self.vm_errors += rhs.vm_errors;
        self.truth_races += rhs.truth_races;
        self.violations += rhs.violations;
        self.shrink_attempts += rhs.shrink_attempts;
        self.shrink_successes += rhs.shrink_successes;
    }
}

impl FuzzCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "programs", self.programs);
        json::field_u64(out, &mut first, "vm_runs", self.vm_runs);
        json::field_u64(out, &mut first, "vm_errors", self.vm_errors);
        json::field_u64(out, &mut first, "truth_races", self.truth_races);
        json::field_u64(out, &mut first, "violations", self.violations);
        json::field_u64(out, &mut first, "shrink_attempts", self.shrink_attempts);
        json::field_u64(out, &mut first, "shrink_successes", self.shrink_successes);
        out.push('}');
    }
}

/// Counters a fault-injection campaign contributes to a snapshot.
///
/// Recorded by the harness's resilient trial engine, not the VM: the
/// engine sees every attempt's outcome and can classify injected
/// failures by their `injected:` message prefix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injected failures that actually fired (across all attempts).
    pub injected: u64,
    /// Trials that experienced at least one injected failure.
    pub hit: u64,
    /// Retry attempts consumed recovering from failures.
    pub retried: u64,
    /// Trials that exhausted retries and were quarantined.
    pub quarantined: u64,
}

impl AddAssign for FaultCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.injected += rhs.injected;
        self.hit += rhs.hit;
        self.retried += rhs.retried;
        self.quarantined += rhs.quarantined;
    }
}

impl FaultCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "injected", self.injected);
        json::field_u64(out, &mut first, "hit", self.hit);
        json::field_u64(out, &mut first, "retried", self.retried);
        json::field_u64(out, &mut first, "quarantined", self.quarantined);
        out.push('}');
    }

    fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

/// Counters a resource-governed campaign contributes to a snapshot.
///
/// Filled at merge time by the harness's resilient engine from per-trial
/// governor summaries, mirroring how [`FaultCounters`] are gathered: the
/// engine sees every trial's outcome in index order, so the roll-up stays
/// byte-identical at any `--jobs N`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorCounters {
    /// Sampling-rate steps taken down the ladder (all trials).
    pub steps_down: u64,
    /// Sampling-rate steps taken back up after pressure cleared.
    pub steps_up: u64,
    /// Hard budget breaches observed (including cancelling ones).
    pub breaches: u64,
    /// Trials that finished at a rate below their configured start.
    pub degraded: u64,
    /// Trials cancelled cooperatively at the ladder floor.
    pub cancelled: u64,
}

impl AddAssign for GovernorCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.steps_down += rhs.steps_down;
        self.steps_up += rhs.steps_up;
        self.breaches += rhs.breaches;
        self.degraded += rhs.degraded;
        self.cancelled += rhs.cancelled;
    }
}

impl GovernorCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "steps_down", self.steps_down);
        json::field_u64(out, &mut first, "steps_up", self.steps_up);
        json::field_u64(out, &mut first, "breaches", self.breaches);
        json::field_u64(out, &mut first, "degraded", self.degraded);
        json::field_u64(out, &mut first, "cancelled", self.cancelled);
        out.push('}');
    }

    /// True when no governor activity was recorded.
    pub fn is_zero(&self) -> bool {
        *self == GovernorCounters::default()
    }
}

/// One immutable snapshot of everything the observability layer gathered:
/// the detector's [`PacerStats`] (Tables 1 and 3), [`RuntimeCounters`],
/// histograms, the space-over-time curve (Fig. 7), and event-ring totals.
///
/// Snapshots [`merge`](Self::merge) associatively — the harness merges
/// per-instance snapshots in instance-index order, which together with the
/// integer-only JSON encoding makes output byte-identical at any `--jobs`
/// level.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// PACER's operation counters (zero for non-PACER detectors).
    pub detector: PacerStats,
    /// Dynamic race reports across all merged runs.
    pub races_reported: u64,
    /// Runtime counters.
    pub runtime: RuntimeCounters,
    /// Differential-fuzzer counters (zero outside `pacer fuzz`).
    pub fuzz: FuzzCounters,
    /// Fault-injection counters (zero unless a fault plan was armed).
    pub faults: FaultCounters,
    /// Resource-governor counters (zero unless a budget was armed).
    pub governor: GovernorCounters,
    /// Histograms, indexed by [`HistKind`].
    pub hists: [Histogram; HIST_COUNT],
    /// Space samples in run order (per run, in GC order; merged runs
    /// concatenate in merge order).
    pub space: Vec<SpaceRecord>,
    /// Events pushed into the ring (retained + dropped).
    pub events_recorded: u64,
    /// Events the ring evicted.
    pub events_dropped: u64,
}

impl Metrics {
    /// The histogram for `kind`.
    pub fn hist(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind.index()]
    }

    /// Merges `other` into `self`. Order matters only for the
    /// concatenation order of [`space`](Self::space) samples, so callers
    /// that need determinism merge in a fixed (index) order.
    pub fn merge(&mut self, other: &Metrics) {
        self.detector += other.detector;
        self.races_reported += other.races_reported;
        self.runtime += other.runtime;
        self.fuzz += other.fuzz;
        self.faults += other.faults;
        self.governor += other.governor;
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        self.space.extend_from_slice(&other.space);
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
    }

    /// Peak metadata footprint across all space samples, in words.
    pub fn peak_metadata_words(&self) -> u64 {
        self.space
            .iter()
            .map(|s| s.breakdown.total_words())
            .max()
            .unwrap_or(0)
    }

    /// Serializes the snapshot as deterministic JSON: integers only (no
    /// floats, no wall-clock times, no pointers), keys in a fixed order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"detector\": ");
        write_stats_json(&self.detector, &mut out);
        out.push_str(",\n  \"races_reported\": ");
        out.push_str(&self.races_reported.to_string());
        out.push_str(",\n  \"runtime\": ");
        self.runtime.write_json(&mut out);
        out.push_str(",\n  \"fuzz\": ");
        self.fuzz.write_json(&mut out);
        out.push_str(",\n  \"faults\": ");
        self.faults.write_json(&mut out);
        out.push_str(",\n  \"governor\": ");
        self.governor.write_json(&mut out);
        out.push_str(",\n  \"histograms\": {");
        for (i, kind) in HistKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::string(&mut out, kind.name());
            out.push_str(": ");
            self.hists[kind.index()].write_json(&mut out);
        }
        out.push_str("\n  },\n  \"space\": [");
        for (i, rec) in self.space.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            rec.write_json(&mut out);
        }
        if !self.space.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": {\"recorded\": ");
        out.push_str(&self.events_recorded.to_string());
        out.push_str(", \"dropped\": ");
        out.push_str(&self.events_dropped.to_string());
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot previously serialized by [`to_json`](Self::to_json).
    ///
    /// The round-trip is exact — `Metrics::from_json(&m.to_json()) == m` —
    /// which is what lets a resumed fleet run re-merge checkpointed
    /// per-instance snapshots into artifacts byte-identical to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricsParseError`] (never panics) on truncated,
    /// garbage, or schema-mismatched input.
    pub fn from_json(text: &str) -> Result<Metrics, MetricsParseError> {
        let root = JsonValue::parse(text).map_err(|e| MetricsParseError {
            message: e.to_string(),
        })?;
        let schema = require_u64(&root, "schema")?;
        if schema != 1 {
            return Err(MetricsParseError {
                message: format!("unsupported metrics schema {schema}"),
            });
        }
        let mut m = Metrics {
            races_reported: require_u64(&root, "races_reported")?,
            events_recorded: 0,
            events_dropped: 0,
            ..Metrics::default()
        };

        let det = require(&root, "detector")?;
        m.detector = PacerStats {
            joins: crate::stats::JoinCounts {
                sampling_slow: require_u64(det, "joins_sampling_slow")?,
                sampling_fast: require_u64(det, "joins_sampling_fast")?,
                non_sampling_slow: require_u64(det, "joins_non_sampling_slow")?,
                non_sampling_fast: require_u64(det, "joins_non_sampling_fast")?,
            },
            copies: crate::stats::CopyCounts {
                sampling_deep: require_u64(det, "copies_sampling_deep")?,
                sampling_shallow: require_u64(det, "copies_sampling_shallow")?,
                non_sampling_deep: require_u64(det, "copies_non_sampling_deep")?,
                non_sampling_shallow: require_u64(det, "copies_non_sampling_shallow")?,
            },
            reads: crate::stats::PathCounts {
                sampling_slow: require_u64(det, "reads_sampling_slow")?,
                non_sampling_slow: require_u64(det, "reads_non_sampling_slow")?,
                non_sampling_fast: require_u64(det, "reads_non_sampling_fast")?,
            },
            writes: crate::stats::PathCounts {
                sampling_slow: require_u64(det, "writes_sampling_slow")?,
                non_sampling_slow: require_u64(det, "writes_non_sampling_slow")?,
                non_sampling_fast: require_u64(det, "writes_non_sampling_fast")?,
            },
            cow_clones: require_u64(det, "cow_clones")?,
            sample_periods: require_u64(det, "sample_periods")?,
            sampled_sync_ops: require_u64(det, "sampled_sync_ops")?,
            unsampled_sync_ops: require_u64(det, "unsampled_sync_ops")?,
        };

        let rt = require(&root, "runtime")?;
        m.runtime = RuntimeCounters {
            trials: require_u64(rt, "trials")?,
            steps: require_u64(rt, "steps")?,
            gcs: require_u64(rt, "gcs")?,
            full_gcs: require_u64(rt, "full_gcs")?,
            elided_accesses: require_u64(rt, "elided_accesses")?,
            allocated_bytes: require_u64(rt, "allocated_bytes")?,
            threads_started: require_u64(rt, "threads_started")?,
            max_live_threads: require_u64(rt, "max_live_threads")?,
        };

        let fz = require(&root, "fuzz")?;
        m.fuzz = FuzzCounters {
            programs: require_u64(fz, "programs")?,
            vm_runs: require_u64(fz, "vm_runs")?,
            vm_errors: require_u64(fz, "vm_errors")?,
            truth_races: require_u64(fz, "truth_races")?,
            violations: require_u64(fz, "violations")?,
            shrink_attempts: require_u64(fz, "shrink_attempts")?,
            shrink_successes: require_u64(fz, "shrink_successes")?,
        };

        // `faults` is absent from pre-resilience snapshots; default it.
        if let Some(ft) = root.get("faults") {
            m.faults = FaultCounters {
                injected: require_u64(ft, "injected")?,
                hit: require_u64(ft, "hit")?,
                retried: require_u64(ft, "retried")?,
                quarantined: require_u64(ft, "quarantined")?,
            };
        }

        // `governor` is absent from pre-governor snapshots; default it.
        if let Some(gv) = root.get("governor") {
            m.governor = GovernorCounters {
                steps_down: require_u64(gv, "steps_down")?,
                steps_up: require_u64(gv, "steps_up")?,
                breaches: require_u64(gv, "breaches")?,
                degraded: require_u64(gv, "degraded")?,
                cancelled: require_u64(gv, "cancelled")?,
            };
        }

        let hists = require(&root, "histograms")?;
        for kind in HistKind::ALL {
            let h = require(hists, kind.name())?;
            let mut pairs = Vec::new();
            for pair in require(h, "buckets")?
                .as_array()
                .ok_or_else(|| bad("buckets"))?
            {
                let pair = pair.as_array().ok_or_else(|| bad("bucket pair"))?;
                if pair.len() != 2 {
                    return Err(bad("bucket pair arity"));
                }
                let i = pair[0].as_u64().ok_or_else(|| bad("bucket index"))?;
                let c = pair[1].as_u64().ok_or_else(|| bad("bucket count"))?;
                pairs.push((i as usize, c));
            }
            m.hists[kind.index()] = Histogram::from_parts(
                require_u64(h, "count")?,
                require_u64(h, "sum")?,
                require_u64(h, "min")?,
                require_u64(h, "max")?,
                &pairs,
            )
            .ok_or_else(|| bad("bucket index out of range"))?;
        }

        for rec in require(&root, "space")?
            .as_array()
            .ok_or_else(|| bad("space"))?
        {
            m.space.push(SpaceRecord {
                steps: require_u64(rec, "steps")?,
                heap_bytes: require_u64(rec, "heap_bytes")?,
                breakdown: crate::space::SpaceBreakdown {
                    clock_words_shared: require_u64(rec, "clock_words_shared")?,
                    clock_words_owned: require_u64(rec, "clock_words_owned")?,
                    version_words: require_u64(rec, "version_words")?,
                    write_words: require_u64(rec, "write_words")?,
                    read_map_words: require_u64(rec, "read_map_words")?,
                    other_words: require_u64(rec, "other_words")?,
                    read_map_entries: require_u64(rec, "read_map_entries")?,
                    tracked_vars: require_u64(rec, "tracked_vars")?,
                },
            });
        }

        let ev = require(&root, "events")?;
        m.events_recorded = require_u64(ev, "recorded")?;
        m.events_dropped = require_u64(ev, "dropped")?;
        Ok(m)
    }
}

fn bad(what: &str) -> MetricsParseError {
    MetricsParseError {
        message: format!("malformed metrics field: {what}"),
    }
}

fn require<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, MetricsParseError> {
    obj.get(key).ok_or_else(|| MetricsParseError {
        message: format!("missing metrics key '{key}'"),
    })
}

fn require_u64(obj: &JsonValue, key: &str) -> Result<u64, MetricsParseError> {
    require(obj, key)?
        .as_u64()
        .ok_or_else(|| MetricsParseError {
            message: format!("metrics key '{key}' is not an unsigned integer"),
        })
}

/// A structured error from [`Metrics::from_json`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsParseError {
    /// What was missing or malformed.
    pub message: String,
}

impl fmt::Display for MetricsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics parse error: {}", self.message)
    }
}

impl std::error::Error for MetricsParseError {}

fn write_stats_json(s: &PacerStats, out: &mut String) {
    let pairs: [(&str, u64); 18] = [
        ("joins_sampling_slow", s.joins.sampling_slow),
        ("joins_sampling_fast", s.joins.sampling_fast),
        ("joins_non_sampling_slow", s.joins.non_sampling_slow),
        ("joins_non_sampling_fast", s.joins.non_sampling_fast),
        ("copies_sampling_deep", s.copies.sampling_deep),
        ("copies_sampling_shallow", s.copies.sampling_shallow),
        ("copies_non_sampling_deep", s.copies.non_sampling_deep),
        ("copies_non_sampling_shallow", s.copies.non_sampling_shallow),
        ("reads_sampling_slow", s.reads.sampling_slow),
        ("reads_non_sampling_slow", s.reads.non_sampling_slow),
        ("reads_non_sampling_fast", s.reads.non_sampling_fast),
        ("writes_sampling_slow", s.writes.sampling_slow),
        ("writes_non_sampling_slow", s.writes.non_sampling_slow),
        ("writes_non_sampling_fast", s.writes.non_sampling_fast),
        ("cow_clones", s.cow_clones),
        ("sample_periods", s.sample_periods),
        ("sampled_sync_ops", s.sampled_sync_ops),
        ("unsampled_sync_ops", s.unsampled_sync_ops),
    ];
    out.push('{');
    let mut first = true;
    for (k, v) in pairs {
        json::field_u64(out, &mut first, k, v);
    }
    out.push('}');
}

impl fmt::Display for Metrics {
    /// Renders the Table 3-style operation breakdown followed by runtime
    /// and space summaries — the output of `pacer stats`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.detector;
        writeln!(
            f,
            "operation breakdown (Table 3){}",
            if self.runtime.trials > 1 {
                format!(" — totals over {} trials", self.runtime.trials)
            } else {
                String::new()
            }
        )?;
        writeln!(f, "  {:<22} {:>14} {:>14}", "", "sampling", "non-sampling")?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "joins (fast)", d.joins.sampling_fast, d.joins.non_sampling_fast
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "joins (slow)", d.joins.sampling_slow, d.joins.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "copies (shallow)", d.copies.sampling_shallow, d.copies.non_sampling_shallow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "copies (deep)", d.copies.sampling_deep, d.copies.non_sampling_deep
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "reads (slow)", d.reads.sampling_slow, d.reads.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "reads (fast)", "-", d.reads.non_sampling_fast
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "writes (slow)", d.writes.sampling_slow, d.writes.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "writes (fast)", "-", d.writes.non_sampling_fast
        )?;
        writeln!(f, "  cow clone promotions: {}", d.cow_clones)?;
        writeln!(
            f,
            "  sampling periods: {}  sync ops: {} sampled / {} unsampled",
            d.sample_periods, d.sampled_sync_ops, d.unsampled_sync_ops
        )?;
        match d.effective_rate() {
            Some(r) => writeln!(f, "  effective sampling rate: {:.2}%", r * 100.0)?,
            None => writeln!(f, "  effective sampling rate: n/a (no accesses)")?,
        }
        writeln!(f, "  races reported: {}", self.races_reported)?;
        let rt = &self.runtime;
        writeln!(
            f,
            "runtime: trials={} steps={} gcs={} (full={}) elided={} \
             allocated={}B threads={} (max live {})",
            rt.trials,
            rt.steps,
            rt.gcs,
            rt.full_gcs,
            rt.elided_accesses,
            rt.allocated_bytes,
            rt.threads_started,
            rt.max_live_threads
        )?;
        if self.fuzz.programs > 0 {
            let fz = &self.fuzz;
            writeln!(
                f,
                "fuzz: programs={} vm_runs={} (errors={}) truth_races={} \
                 violations={} shrink={}/{} accepted",
                fz.programs,
                fz.vm_runs,
                fz.vm_errors,
                fz.truth_races,
                fz.violations,
                fz.shrink_successes,
                fz.shrink_attempts
            )?;
        }
        if !self.faults.is_zero() {
            let ft = &self.faults;
            writeln!(
                f,
                "faults: injected={} hit={} retried={} quarantined={}",
                ft.injected, ft.hit, ft.retried, ft.quarantined
            )?;
        }
        if !self.governor.is_zero() {
            let gv = &self.governor;
            writeln!(
                f,
                "governor: steps_down={} steps_up={} breaches={} degraded={} cancelled={}",
                gv.steps_down, gv.steps_up, gv.breaches, gv.degraded, gv.cancelled
            )?;
        }
        write!(
            f,
            "space: {} samples, peak metadata {} words",
            self.space.len(),
            self.peak_metadata_words()
        )?;
        if let Some(last) = self.space.last() {
            let b = last.breakdown;
            write!(
                f,
                " (final: {} shared / {} owned clock words, {} read-map entries, \
                 {} tracked vars)",
                b.clock_words_shared, b.clock_words_owned, b.read_map_entries, b.tracked_vars
            )?;
        }
        writeln!(f)?;
        write!(
            f,
            "events: {} recorded, {} dropped",
            self.events_recorded, self.events_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceBreakdown;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics {
            races_reported: 2,
            ..Metrics::default()
        };
        m.detector.joins.sampling_fast = 3;
        m.detector.reads.non_sampling_fast = 4;
        m.runtime.trials = 1;
        m.runtime.steps = 100;
        m.hists[HistKind::PeriodSyncOps.index()].record(8);
        m.space.push(SpaceRecord {
            steps: 50,
            heap_bytes: 96,
            breakdown: SpaceBreakdown {
                clock_words_owned: 6,
                ..SpaceBreakdown::default()
            },
        });
        m.events_recorded = 5;
        m.fuzz.programs = 2;
        m.fuzz.vm_runs = 9;
        m.fuzz.violations = 1;
        m
    }

    #[test]
    fn fuzz_counters_merge_and_serialize() {
        let mut a = sample_metrics();
        a.merge(&sample_metrics());
        assert_eq!(a.fuzz.programs, 4);
        assert_eq!(a.fuzz.vm_runs, 18);
        let j = a.to_json();
        assert!(j.contains("\"fuzz\": {\"programs\":4"), "{j}");
        assert!(a.to_string().contains("fuzz: programs=4"));
        assert!(
            !Metrics::default().to_string().contains("fuzz:"),
            "non-fuzz snapshots stay quiet"
        );
    }

    #[test]
    fn fault_counters_merge_serialize_and_gate_display() {
        let mut m = sample_metrics();
        m.faults = FaultCounters {
            injected: 4,
            hit: 3,
            retried: 2,
            quarantined: 1,
        };
        let mut merged = m.clone();
        merged.merge(&m);
        assert_eq!(merged.faults.injected, 8);
        assert_eq!(merged.faults.quarantined, 2);
        assert!(m
            .to_json()
            .contains("\"faults\": {\"injected\":4,\"hit\":3"));
        assert!(m
            .to_string()
            .contains("faults: injected=4 hit=3 retried=2 quarantined=1"));
        assert!(
            !Metrics::default().to_string().contains("faults:"),
            "fault-free snapshots stay quiet"
        );
    }

    #[test]
    fn governor_counters_merge_serialize_and_gate_display() {
        let mut m = sample_metrics();
        m.governor = GovernorCounters {
            steps_down: 5,
            steps_up: 1,
            breaches: 2,
            degraded: 3,
            cancelled: 1,
        };
        let mut merged = m.clone();
        merged.merge(&m);
        assert_eq!(merged.governor.steps_down, 10);
        assert_eq!(merged.governor.cancelled, 2);
        assert!(m
            .to_json()
            .contains("\"governor\": {\"steps_down\":5,\"steps_up\":1"));
        assert!(m
            .to_string()
            .contains("governor: steps_down=5 steps_up=1 breaches=2 degraded=3 cancelled=1"));
        assert!(
            !Metrics::default().to_string().contains("governor:"),
            "ungoverned snapshots stay quiet"
        );
        // Pre-governor snapshots (no `governor` key) still parse.
        let legacy = Metrics::default().to_json().replace(
            ",\n  \"governor\": {\"steps_down\":0,\"steps_up\":0,\"breaches\":0,\"degraded\":0,\"cancelled\":0}",
            "",
        );
        assert!(!legacy.contains("governor"));
        assert_eq!(Metrics::from_json(&legacy).unwrap(), Metrics::default());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut m = sample_metrics();
        m.faults.injected = 7;
        m.faults.quarantined = 2;
        m.governor.steps_down = 3;
        m.governor.degraded = 1;
        m.hists[HistKind::GcHeapBytes.index()].record(0);
        m.hists[HistKind::GcHeapBytes.index()].record(u64::MAX);
        let parsed = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(
            parsed.to_json(),
            m.to_json(),
            "re-emission is byte-identical"
        );
        // Empty snapshots round-trip too (empty-histogram min sentinel).
        let empty = Metrics::default();
        assert_eq!(Metrics::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_corrupt_input_without_panicking() {
        let good = sample_metrics().to_json();
        // Truncations at every prefix length (the serialized form ends
        // "}\n", so every prefix short of the final "}" is incomplete).
        for cut in 0..good.len() - 1 {
            assert!(
                Metrics::from_json(&good[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        // Bit flips anywhere must never panic (they may still parse when
        // the flip lands in a digit).
        for i in (0..good.len()).step_by(7) {
            let mut bytes = good.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = Metrics::from_json(text);
            }
        }
        // Structured failures carry messages.
        let err = Metrics::from_json("{\"schema\": 2}").unwrap_err();
        assert!(err.to_string().contains("unsupported metrics schema 2"));
        let err = Metrics::from_json("not json at all").unwrap_err();
        assert!(err.to_string().contains("json error"));
    }

    #[test]
    fn merge_sums_everything_and_concatenates_space() {
        let mut a = sample_metrics();
        let b = sample_metrics();
        a.merge(&b);
        assert_eq!(a.detector.joins.sampling_fast, 6);
        assert_eq!(a.races_reported, 4);
        assert_eq!(a.runtime.trials, 2);
        assert_eq!(a.hist(HistKind::PeriodSyncOps).count, 2);
        assert_eq!(a.space.len(), 2);
        assert_eq!(a.events_recorded, 10);
        assert_eq!(a.peak_metadata_words(), 6);
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let m = sample_metrics();
        let j1 = m.to_json();
        let j2 = m.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": 1"));
        assert!(j1.contains("\"joins_sampling_fast\":3"));
        assert!(j1.contains("\"period_sync_ops\""));
        assert!(j1.contains("\"total_words\":6"));
        assert!(!j1.contains('.'), "no floats in metrics JSON: {j1}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let j = Metrics::default().to_json();
        assert!(j.contains("\"space\": []"));
        assert!(j.contains("\"trials\":0"));
    }

    #[test]
    fn serve_snapshot_carries_transport_counters() {
        let shards = [
            ServeCounters {
                sessions: 1,
                events: 10,
                ..ServeCounters::default()
            },
            ServeCounters {
                sessions: 1,
                events: 5,
                ..ServeCounters::default()
            },
        ];
        let sessions = SessionCounters {
            admitted: 2,
            completed: 2,
            ..SessionCounters::default()
        };
        let mut transport = TransportCounters {
            connections: 3,
            session_resumes: 1,
            resumes_rejected: 0,
            acks_sent: 7,
            frames_journaled: 4,
            frames_deduped: 2,
        };
        let j = serve_metrics_json(&shards, &sessions, &transport);
        assert!(
            j.contains("\"total\": {\"sessions\":2,\"events\":15"),
            "{j}"
        );
        assert!(
            j.contains("\"transport\": {\"connections\":3,\"session_resumes\":1,\"resumes_rejected\":0,\"acks_sent\":7,\"frames_journaled\":4,\"frames_deduped\":2}"),
            "{j}"
        );
        assert!(!transport.is_zero());
        assert!(TransportCounters::default().is_zero());
        transport += TransportCounters {
            frames_deduped: 1,
            ..TransportCounters::default()
        };
        assert_eq!(transport.frames_deduped, 3);
        assert!(transport.to_json().contains("\"frames_deduped\":3"));
    }

    #[test]
    fn display_shows_table3_sections() {
        let text = sample_metrics().to_string();
        assert!(text.contains("Table 3"));
        assert!(text.contains("joins (fast)"));
        assert!(text.contains("copies (shallow)"));
        assert!(text.contains("effective sampling rate"));
        assert!(text.contains("races reported: 2"));
        assert!(text.contains("peak metadata 6 words"));
    }
}
