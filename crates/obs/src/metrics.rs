//! The unified [`Metrics`] snapshot type.

use std::fmt;
use std::ops::AddAssign;

use crate::hist::{HistKind, Histogram, HIST_COUNT};
use crate::json;
use crate::space::SpaceRecord;
use crate::stats::PacerStats;

/// Counters the simulated runtime contributes to a snapshot.
///
/// `trials` makes merged snapshots interpretable: averaging any other
/// counter over `trials` recovers a per-run figure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Runs merged into this snapshot.
    pub trials: u64,
    /// VM instructions executed.
    pub steps: u64,
    /// Nursery collections.
    pub gcs: u64,
    /// Full-heap collections (one space sample each).
    pub full_gcs: u64,
    /// Field accesses elided by escape analysis (never instrumented).
    pub elided_accesses: u64,
    /// Bytes allocated (program + charged metadata).
    pub allocated_bytes: u64,
    /// Threads ever started (including main).
    pub threads_started: u64,
    /// Maximum simultaneously live threads, summed over trials (divide by
    /// `trials` for the mean).
    pub max_live_threads: u64,
}

impl AddAssign for RuntimeCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.trials += rhs.trials;
        self.steps += rhs.steps;
        self.gcs += rhs.gcs;
        self.full_gcs += rhs.full_gcs;
        self.elided_accesses += rhs.elided_accesses;
        self.allocated_bytes += rhs.allocated_bytes;
        self.threads_started += rhs.threads_started;
        self.max_live_threads += rhs.max_live_threads;
    }
}

impl RuntimeCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "trials", self.trials);
        json::field_u64(out, &mut first, "steps", self.steps);
        json::field_u64(out, &mut first, "gcs", self.gcs);
        json::field_u64(out, &mut first, "full_gcs", self.full_gcs);
        json::field_u64(out, &mut first, "elided_accesses", self.elided_accesses);
        json::field_u64(out, &mut first, "allocated_bytes", self.allocated_bytes);
        json::field_u64(out, &mut first, "threads_started", self.threads_started);
        json::field_u64(out, &mut first, "max_live_threads", self.max_live_threads);
        out.push('}');
    }
}

/// Counters the differential fuzzer contributes to a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuzzCounters {
    /// Programs generated and oracle-checked.
    pub programs: u64,
    /// VM executions across all oracle runs.
    pub vm_runs: u64,
    /// Schedule seeds abandoned because the VM returned an error.
    pub vm_errors: u64,
    /// Ground-truth races summed over programs and schedule seeds.
    pub truth_races: u64,
    /// Oracle violations recorded.
    pub violations: u64,
    /// Shrink candidate programs tested against the failure predicate.
    pub shrink_attempts: u64,
    /// Shrink candidates accepted (each one a strictly smaller program).
    pub shrink_successes: u64,
}

impl AddAssign for FuzzCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.programs += rhs.programs;
        self.vm_runs += rhs.vm_runs;
        self.vm_errors += rhs.vm_errors;
        self.truth_races += rhs.truth_races;
        self.violations += rhs.violations;
        self.shrink_attempts += rhs.shrink_attempts;
        self.shrink_successes += rhs.shrink_successes;
    }
}

impl FuzzCounters {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        json::field_u64(out, &mut first, "programs", self.programs);
        json::field_u64(out, &mut first, "vm_runs", self.vm_runs);
        json::field_u64(out, &mut first, "vm_errors", self.vm_errors);
        json::field_u64(out, &mut first, "truth_races", self.truth_races);
        json::field_u64(out, &mut first, "violations", self.violations);
        json::field_u64(out, &mut first, "shrink_attempts", self.shrink_attempts);
        json::field_u64(out, &mut first, "shrink_successes", self.shrink_successes);
        out.push('}');
    }
}

/// One immutable snapshot of everything the observability layer gathered:
/// the detector's [`PacerStats`] (Tables 1 and 3), [`RuntimeCounters`],
/// histograms, the space-over-time curve (Fig. 7), and event-ring totals.
///
/// Snapshots [`merge`](Self::merge) associatively — the harness merges
/// per-instance snapshots in instance-index order, which together with the
/// integer-only JSON encoding makes output byte-identical at any `--jobs`
/// level.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// PACER's operation counters (zero for non-PACER detectors).
    pub detector: PacerStats,
    /// Dynamic race reports across all merged runs.
    pub races_reported: u64,
    /// Runtime counters.
    pub runtime: RuntimeCounters,
    /// Differential-fuzzer counters (zero outside `pacer fuzz`).
    pub fuzz: FuzzCounters,
    /// Histograms, indexed by [`HistKind`].
    pub hists: [Histogram; HIST_COUNT],
    /// Space samples in run order (per run, in GC order; merged runs
    /// concatenate in merge order).
    pub space: Vec<SpaceRecord>,
    /// Events pushed into the ring (retained + dropped).
    pub events_recorded: u64,
    /// Events the ring evicted.
    pub events_dropped: u64,
}

impl Metrics {
    /// The histogram for `kind`.
    pub fn hist(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind.index()]
    }

    /// Merges `other` into `self`. Order matters only for the
    /// concatenation order of [`space`](Self::space) samples, so callers
    /// that need determinism merge in a fixed (index) order.
    pub fn merge(&mut self, other: &Metrics) {
        self.detector += other.detector;
        self.races_reported += other.races_reported;
        self.runtime += other.runtime;
        self.fuzz += other.fuzz;
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        self.space.extend_from_slice(&other.space);
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
    }

    /// Peak metadata footprint across all space samples, in words.
    pub fn peak_metadata_words(&self) -> u64 {
        self.space
            .iter()
            .map(|s| s.breakdown.total_words())
            .max()
            .unwrap_or(0)
    }

    /// Serializes the snapshot as deterministic JSON: integers only (no
    /// floats, no wall-clock times, no pointers), keys in a fixed order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"detector\": ");
        write_stats_json(&self.detector, &mut out);
        out.push_str(",\n  \"races_reported\": ");
        out.push_str(&self.races_reported.to_string());
        out.push_str(",\n  \"runtime\": ");
        self.runtime.write_json(&mut out);
        out.push_str(",\n  \"fuzz\": ");
        self.fuzz.write_json(&mut out);
        out.push_str(",\n  \"histograms\": {");
        for (i, kind) in HistKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::string(&mut out, kind.name());
            out.push_str(": ");
            self.hists[kind.index()].write_json(&mut out);
        }
        out.push_str("\n  },\n  \"space\": [");
        for (i, rec) in self.space.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            rec.write_json(&mut out);
        }
        if !self.space.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": {\"recorded\": ");
        out.push_str(&self.events_recorded.to_string());
        out.push_str(", \"dropped\": ");
        out.push_str(&self.events_dropped.to_string());
        out.push_str("}\n}\n");
        out
    }
}

fn write_stats_json(s: &PacerStats, out: &mut String) {
    let pairs: [(&str, u64); 18] = [
        ("joins_sampling_slow", s.joins.sampling_slow),
        ("joins_sampling_fast", s.joins.sampling_fast),
        ("joins_non_sampling_slow", s.joins.non_sampling_slow),
        ("joins_non_sampling_fast", s.joins.non_sampling_fast),
        ("copies_sampling_deep", s.copies.sampling_deep),
        ("copies_sampling_shallow", s.copies.sampling_shallow),
        ("copies_non_sampling_deep", s.copies.non_sampling_deep),
        ("copies_non_sampling_shallow", s.copies.non_sampling_shallow),
        ("reads_sampling_slow", s.reads.sampling_slow),
        ("reads_non_sampling_slow", s.reads.non_sampling_slow),
        ("reads_non_sampling_fast", s.reads.non_sampling_fast),
        ("writes_sampling_slow", s.writes.sampling_slow),
        ("writes_non_sampling_slow", s.writes.non_sampling_slow),
        ("writes_non_sampling_fast", s.writes.non_sampling_fast),
        ("cow_clones", s.cow_clones),
        ("sample_periods", s.sample_periods),
        ("sampled_sync_ops", s.sampled_sync_ops),
        ("unsampled_sync_ops", s.unsampled_sync_ops),
    ];
    out.push('{');
    let mut first = true;
    for (k, v) in pairs {
        json::field_u64(out, &mut first, k, v);
    }
    out.push('}');
}

impl fmt::Display for Metrics {
    /// Renders the Table 3-style operation breakdown followed by runtime
    /// and space summaries — the output of `pacer stats`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.detector;
        writeln!(
            f,
            "operation breakdown (Table 3){}",
            if self.runtime.trials > 1 {
                format!(" — totals over {} trials", self.runtime.trials)
            } else {
                String::new()
            }
        )?;
        writeln!(f, "  {:<22} {:>14} {:>14}", "", "sampling", "non-sampling")?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "joins (fast)", d.joins.sampling_fast, d.joins.non_sampling_fast
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "joins (slow)", d.joins.sampling_slow, d.joins.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "copies (shallow)", d.copies.sampling_shallow, d.copies.non_sampling_shallow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "copies (deep)", d.copies.sampling_deep, d.copies.non_sampling_deep
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "reads (slow)", d.reads.sampling_slow, d.reads.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "reads (fast)", "-", d.reads.non_sampling_fast
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "writes (slow)", d.writes.sampling_slow, d.writes.non_sampling_slow
        )?;
        writeln!(
            f,
            "  {:<22} {:>14} {:>14}",
            "writes (fast)", "-", d.writes.non_sampling_fast
        )?;
        writeln!(f, "  cow clone promotions: {}", d.cow_clones)?;
        writeln!(
            f,
            "  sampling periods: {}  sync ops: {} sampled / {} unsampled",
            d.sample_periods, d.sampled_sync_ops, d.unsampled_sync_ops
        )?;
        match d.effective_rate() {
            Some(r) => writeln!(f, "  effective sampling rate: {:.2}%", r * 100.0)?,
            None => writeln!(f, "  effective sampling rate: n/a (no accesses)")?,
        }
        writeln!(f, "  races reported: {}", self.races_reported)?;
        let rt = &self.runtime;
        writeln!(
            f,
            "runtime: trials={} steps={} gcs={} (full={}) elided={} \
             allocated={}B threads={} (max live {})",
            rt.trials,
            rt.steps,
            rt.gcs,
            rt.full_gcs,
            rt.elided_accesses,
            rt.allocated_bytes,
            rt.threads_started,
            rt.max_live_threads
        )?;
        if self.fuzz.programs > 0 {
            let fz = &self.fuzz;
            writeln!(
                f,
                "fuzz: programs={} vm_runs={} (errors={}) truth_races={} \
                 violations={} shrink={}/{} accepted",
                fz.programs,
                fz.vm_runs,
                fz.vm_errors,
                fz.truth_races,
                fz.violations,
                fz.shrink_successes,
                fz.shrink_attempts
            )?;
        }
        write!(
            f,
            "space: {} samples, peak metadata {} words",
            self.space.len(),
            self.peak_metadata_words()
        )?;
        if let Some(last) = self.space.last() {
            let b = last.breakdown;
            write!(
                f,
                " (final: {} shared / {} owned clock words, {} read-map entries, \
                 {} tracked vars)",
                b.clock_words_shared, b.clock_words_owned, b.read_map_entries, b.tracked_vars
            )?;
        }
        writeln!(f)?;
        write!(
            f,
            "events: {} recorded, {} dropped",
            self.events_recorded, self.events_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceBreakdown;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics {
            races_reported: 2,
            ..Metrics::default()
        };
        m.detector.joins.sampling_fast = 3;
        m.detector.reads.non_sampling_fast = 4;
        m.runtime.trials = 1;
        m.runtime.steps = 100;
        m.hists[HistKind::PeriodSyncOps.index()].record(8);
        m.space.push(SpaceRecord {
            steps: 50,
            heap_bytes: 96,
            breakdown: SpaceBreakdown {
                clock_words_owned: 6,
                ..SpaceBreakdown::default()
            },
        });
        m.events_recorded = 5;
        m.fuzz.programs = 2;
        m.fuzz.vm_runs = 9;
        m.fuzz.violations = 1;
        m
    }

    #[test]
    fn fuzz_counters_merge_and_serialize() {
        let mut a = sample_metrics();
        a.merge(&sample_metrics());
        assert_eq!(a.fuzz.programs, 4);
        assert_eq!(a.fuzz.vm_runs, 18);
        let j = a.to_json();
        assert!(j.contains("\"fuzz\": {\"programs\":4"), "{j}");
        assert!(a.to_string().contains("fuzz: programs=4"));
        assert!(
            !Metrics::default().to_string().contains("fuzz:"),
            "non-fuzz snapshots stay quiet"
        );
    }

    #[test]
    fn merge_sums_everything_and_concatenates_space() {
        let mut a = sample_metrics();
        let b = sample_metrics();
        a.merge(&b);
        assert_eq!(a.detector.joins.sampling_fast, 6);
        assert_eq!(a.races_reported, 4);
        assert_eq!(a.runtime.trials, 2);
        assert_eq!(a.hist(HistKind::PeriodSyncOps).count, 2);
        assert_eq!(a.space.len(), 2);
        assert_eq!(a.events_recorded, 10);
        assert_eq!(a.peak_metadata_words(), 6);
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let m = sample_metrics();
        let j1 = m.to_json();
        let j2 = m.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": 1"));
        assert!(j1.contains("\"joins_sampling_fast\":3"));
        assert!(j1.contains("\"period_sync_ops\""));
        assert!(j1.contains("\"total_words\":6"));
        assert!(!j1.contains('.'), "no floats in metrics JSON: {j1}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let j = Metrics::default().to_json();
        assert!(j.contains("\"space\": []"));
        assert!(j.contains("\"trials\":0"));
    }

    #[test]
    fn display_shows_table3_sections() {
        let text = sample_metrics().to_string();
        assert!(text.contains("Table 3"));
        assert!(text.contains("joins (fast)"));
        assert!(text.contains("copies (shallow)"));
        assert!(text.contains("effective sampling rate"));
        assert!(text.contains("races reported: 2"));
        assert!(text.contains("peak metadata 6 words"));
    }
}
