//! Operation statistics: the counters behind Table 3 and Table 1.

use std::fmt;
use std::ops::AddAssign;

/// Vector-clock join counts, split by period and cost (Table 3, top).
///
/// A *fast* join is resolved by the version-epoch check alone in `O(1)`
/// (Table 7, rule 4); a *slow* join needed `O(n)` work — a pointwise
/// comparison and possibly the join itself (rules 5–6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinCounts {
    /// Slow joins inside sampling periods.
    pub sampling_slow: u64,
    /// Fast joins inside sampling periods.
    pub sampling_fast: u64,
    /// Slow joins outside sampling periods (should be nearly zero).
    pub non_sampling_slow: u64,
    /// Fast joins outside sampling periods.
    pub non_sampling_fast: u64,
}

impl JoinCounts {
    /// Total joins in both periods.
    pub fn total(&self) -> u64 {
        self.sampling_slow + self.sampling_fast + self.non_sampling_slow + self.non_sampling_fast
    }
}

impl AddAssign for JoinCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.sampling_slow += rhs.sampling_slow;
        self.sampling_fast += rhs.sampling_fast;
        self.non_sampling_slow += rhs.non_sampling_slow;
        self.non_sampling_fast += rhs.non_sampling_fast;
    }
}

/// Vector-clock copy counts, split by period and depth (Table 3, middle).
///
/// A *deep* copy is element-by-element (`O(n)`); a *shallow* copy shares
/// storage (`O(1)`, Algorithm 9). Sampling periods always copy deeply;
/// non-sampling periods copy shallowly except for thread forks, which the
/// implementation always copies deeply ("since they are rare and it
/// simplifies the implementation somewhat", §5.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyCounts {
    /// Deep copies inside sampling periods.
    pub sampling_deep: u64,
    /// Shallow copies inside sampling periods (always zero by Algorithm 9).
    pub sampling_shallow: u64,
    /// Deep copies outside sampling periods (forks only).
    pub non_sampling_deep: u64,
    /// Shallow copies outside sampling periods.
    pub non_sampling_shallow: u64,
}

impl CopyCounts {
    /// Total copies in both periods.
    pub fn total(&self) -> u64 {
        self.sampling_deep
            + self.sampling_shallow
            + self.non_sampling_deep
            + self.non_sampling_shallow
    }
}

impl AddAssign for CopyCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.sampling_deep += rhs.sampling_deep;
        self.sampling_shallow += rhs.sampling_shallow;
        self.non_sampling_deep += rhs.non_sampling_deep;
        self.non_sampling_shallow += rhs.non_sampling_shallow;
    }
}

/// Read or write instrumentation-path counts (Table 3, bottom).
///
/// Inside a sampling period every access takes the slow path. Outside, the
/// inlined check `sampling || metadata != null` (§4) sends accesses to
/// untracked variables down the *fast* path — a single comparison — and
/// only accesses to variables with surviving sampled metadata down the
/// *slow* path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCounts {
    /// Slow-path accesses inside sampling periods.
    pub sampling_slow: u64,
    /// Slow-path accesses outside sampling periods.
    pub non_sampling_slow: u64,
    /// Fast-path accesses outside sampling periods.
    pub non_sampling_fast: u64,
}

impl PathCounts {
    /// Total accesses in both periods.
    pub fn total(&self) -> u64 {
        self.sampling_slow + self.non_sampling_slow + self.non_sampling_fast
    }
}

impl AddAssign for PathCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.sampling_slow += rhs.sampling_slow;
        self.non_sampling_slow += rhs.non_sampling_slow;
        self.non_sampling_fast += rhs.non_sampling_fast;
    }
}

/// Every operation counter PACER maintains (the data behind Tables 1 and 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacerStats {
    /// Vector-clock joins.
    pub joins: JoinCounts,
    /// Vector-clock copies.
    pub copies: CopyCounts,
    /// Read instrumentation paths.
    pub reads: PathCounts,
    /// Write instrumentation paths.
    pub writes: PathCounts,
    /// Clone-on-write events: a shared clock had to be duplicated before a
    /// mutation (Algorithms 10/11).
    pub cow_clones: u64,
    /// Number of sampling periods entered (`sbegin` count).
    pub sample_periods: u64,
    /// Synchronization operations inside sampling periods (the paper's
    /// measure of sampled *work*, used by the bias-corrected GC sampler).
    pub sampled_sync_ops: u64,
    /// Synchronization operations outside sampling periods.
    pub unsampled_sync_ops: u64,
}

impl PacerStats {
    /// The *effective sampling rate*: the fraction of data accesses that
    /// executed inside sampling periods (Table 1 reports this against the
    /// specified rate).
    ///
    /// Returns `None` if no accesses were observed.
    pub fn effective_rate(&self) -> Option<f64> {
        let sampled = self.reads.sampling_slow + self.writes.sampling_slow;
        let total = self.reads.total() + self.writes.total();
        (total > 0).then(|| sampled as f64 / total as f64)
    }

    /// Fraction of non-sampling joins that took the fast path — the §5.4
    /// claim is that this is nearly 1.
    ///
    /// Returns `None` if there were no non-sampling joins.
    pub fn non_sampling_fast_join_fraction(&self) -> Option<f64> {
        let total = self.joins.non_sampling_slow + self.joins.non_sampling_fast;
        (total > 0).then(|| self.joins.non_sampling_fast as f64 / total as f64)
    }
}

impl AddAssign for PacerStats {
    fn add_assign(&mut self, rhs: Self) {
        self.joins += rhs.joins;
        self.copies += rhs.copies;
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.cow_clones += rhs.cow_clones;
        self.sample_periods += rhs.sample_periods;
        self.sampled_sync_ops += rhs.sampled_sync_ops;
        self.unsampled_sync_ops += rhs.unsampled_sync_ops;
    }
}

impl fmt::Display for PacerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "joins:  sampling slow={} fast={} | non-sampling slow={} fast={}",
            self.joins.sampling_slow,
            self.joins.sampling_fast,
            self.joins.non_sampling_slow,
            self.joins.non_sampling_fast
        )?;
        writeln!(
            f,
            "copies: sampling deep={} shallow={} | non-sampling deep={} shallow={}",
            self.copies.sampling_deep,
            self.copies.sampling_shallow,
            self.copies.non_sampling_deep,
            self.copies.non_sampling_shallow
        )?;
        writeln!(
            f,
            "reads:  sampling slow={} | non-sampling slow={} fast={}",
            self.reads.sampling_slow, self.reads.non_sampling_slow, self.reads.non_sampling_fast
        )?;
        write!(
            f,
            "writes: sampling slow={} | non-sampling slow={} fast={}",
            self.writes.sampling_slow, self.writes.non_sampling_slow, self.writes.non_sampling_fast
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_is_sampled_fraction_of_accesses() {
        let stats = PacerStats {
            reads: PathCounts {
                sampling_slow: 3,
                non_sampling_slow: 1,
                non_sampling_fast: 6,
            },
            writes: PathCounts {
                sampling_slow: 2,
                non_sampling_slow: 0,
                non_sampling_fast: 8,
            },
            ..PacerStats::default()
        };
        assert_eq!(stats.effective_rate(), Some(0.25));
    }

    #[test]
    fn effective_rate_none_without_accesses() {
        assert_eq!(PacerStats::default().effective_rate(), None);
        assert_eq!(
            PacerStats::default().non_sampling_fast_join_fraction(),
            None
        );
    }

    #[test]
    fn totals_and_add_assign() {
        let mut a = PacerStats::default();
        a.joins.sampling_slow = 1;
        a.copies.non_sampling_shallow = 2;
        a.reads.non_sampling_fast = 3;
        a.cow_clones = 4;
        let mut b = a;
        b += a;
        assert_eq!(b.joins.total(), 2);
        assert_eq!(b.copies.total(), 4);
        assert_eq!(b.reads.total(), 6);
        assert_eq!(b.cow_clones, 8);
    }

    #[test]
    fn fast_join_fraction() {
        let stats = PacerStats {
            joins: JoinCounts {
                non_sampling_slow: 1,
                non_sampling_fast: 99,
                ..JoinCounts::default()
            },
            ..PacerStats::default()
        };
        assert_eq!(stats.non_sampling_fast_join_fraction(), Some(0.99));
    }

    #[test]
    fn display_mentions_all_sections() {
        let s = PacerStats::default().to_string();
        assert!(s.contains("joins:"));
        assert!(s.contains("copies:"));
        assert!(s.contains("reads:"));
        assert!(s.contains("writes:"));
    }

    #[test]
    fn path_counts_total() {
        let p = PathCounts {
            sampling_slow: 1,
            non_sampling_slow: 2,
            non_sampling_fast: 3,
        };
        assert_eq!(p.total(), 6);
    }
}
