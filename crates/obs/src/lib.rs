//! Observability layer for the PACER suite: a unified metrics registry,
//! structured event tracing, and space-over-time accounting.
//!
//! PACER's evaluation (§5 of the paper) is an observability story: fast vs
//! slow joins, shallow vs deep copies, and metadata bytes retained over
//! time are what demonstrate that overhead scales with the sampling rate
//! `r`. This crate is the single substrate all of those measurements flow
//! through:
//!
//! * [`Registry`] — a zero-external-dependency, cheap-when-disabled sink
//!   for monotonic counters, log₂-bucket [`Histogram`]s, typed [`Event`]s,
//!   and [`SpaceRecord`]s. Every recording method starts with one branch on
//!   the enabled flag, so a disabled registry costs a predictable-taken
//!   branch and performs **no allocation** on the hot path.
//! * [`Metrics`] — one immutable snapshot type unifying the per-detector
//!   [`PacerStats`] counters (Tables 1 and 3), [`RuntimeCounters`] from the
//!   simulated runtime, histograms, and the space-over-time curve
//!   (Fig. 7). Snapshots merge deterministically and serialize to JSON
//!   with no wall-clock, pointer, or floating-point content, so output is
//!   byte-identical across `--jobs` levels.
//! * [`Event`] / [`EventRing`] — a bounded ring buffer of typed events
//!   (sampling-period boundaries, race reports, escape-analysis decisions,
//!   shallow→deep copy promotions, GC-boundary space samples) with a
//!   compact JSONL writer for offline inspection.
//! * [`Observed`] — a wrapper that lets any [`ObservableDetector`] report
//!   into a registry by diffing its state around each action, leaving the
//!   wrapped detector's hot path completely untouched.
//!
//! The counter types ([`PacerStats`], [`JoinCounts`], [`CopyCounts`],
//! [`PathCounts`]) live here and are re-exported by `pacer-core` for
//! backward compatibility.
//!
//! See `OBSERVABILITY.md` at the workspace root for the full metric and
//! event reference, including the paper table/figure each maps to.
//!
//! # Examples
//!
//! ```
//! use pacer_obs::{Observed, Registry, RegistryConfig};
//! use pacer_trace::{Detector, Trace};
//!
//! // Any detector implementing `ObservableDetector` can be observed; the
//! // trace crate's RecordingDetector is not one, so this example uses the
//! // registry directly.
//! let mut reg = Registry::enabled(RegistryConfig::default());
//! reg.record_hist(pacer_obs::HistKind::PeriodSyncOps, 17);
//! let metrics = reg.metrics();
//! assert_eq!(metrics.hist(pacer_obs::HistKind::PeriodSyncOps).count, 1);
//!
//! // A disabled registry records nothing and allocates nothing.
//! let mut off = Registry::disabled();
//! off.record_hist(pacer_obs::HistKind::PeriodSyncOps, 17);
//! assert_eq!(off.metrics().hist(pacer_obs::HistKind::PeriodSyncOps).count, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod metrics;
mod observe;
mod registry;
mod space;
mod stats;

pub use event::{Event, EventRing};
pub use hist::{HistKind, Histogram, HIST_BUCKETS, HIST_COUNT};
pub use metrics::{
    serve_metrics_json, FaultCounters, FuzzCounters, GovernorCounters, Metrics, MetricsParseError,
    RuntimeCounters, ServeCounters, SessionCounters, TransportCounters,
};
pub use observe::{ObservableDetector, Observed};
pub use registry::{Registry, RegistryConfig};
pub use space::{SpaceBreakdown, SpaceRecord};
pub use stats::{CopyCounts, JoinCounts, PacerStats, PathCounts};

pub(crate) mod json {
    //! Minimal deterministic JSON emission helpers (integers and strings
    //! only — no floats, so output never depends on formatting quirks).

    /// Appends `"key":value` (integer) with a leading comma when needed.
    pub fn field_u64(out: &mut String, first: &mut bool, key: &str, value: u64) {
        sep(out, first);
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
    }

    /// Appends `"key":"value"` with JSON string escaping.
    pub fn field_str(out: &mut String, first: &mut bool, key: &str, value: &str) {
        sep(out, first);
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        string(out, value);
    }

    /// Appends `"key":` (for a nested object/array the caller writes).
    pub fn key(out: &mut String, first: &mut bool, key: &str) {
        sep(out, first);
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
    }

    fn sep(out: &mut String, first: &mut bool) {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    }

    /// Appends a JSON string literal, escaping quotes, backslashes, and
    /// control characters.
    pub fn string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}
