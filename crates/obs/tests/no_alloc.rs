//! Proves the disabled registry performs no allocation on the hot path.
//!
//! A counting global allocator wraps the system allocator; the test drives
//! every hot-path recording method of a disabled [`Registry`] and asserts
//! the allocation count never moves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pacer_obs::{Event, HistKind, Registry, SpaceRecord};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_registry_hot_path_never_allocates() {
    // Construction of a disabled registry itself must not allocate.
    let before_new = allocations();
    let mut reg = Registry::disabled();
    assert_eq!(
        allocations(),
        before_new,
        "Registry::disabled() must not allocate"
    );

    let before = allocations();
    for i in 0..10_000 {
        reg.event(|| Event::PeriodBegin { index: i });
        reg.record_hist(HistKind::PeriodSyncOps, i);
        reg.record_space(SpaceRecord {
            steps: i,
            heap_bytes: i,
            breakdown: Default::default(),
        });
        reg.add_races(1);
    }
    assert_eq!(
        allocations(),
        before,
        "disabled hot-path recording must not allocate"
    );
    // And nothing was recorded.
    assert_eq!(reg.metrics().events_recorded, 0);
    assert_eq!(reg.metrics().hist(HistKind::PeriodSyncOps).count, 0);
}

#[test]
fn enabled_registry_does_record() {
    // Sanity check that the same calls *do* record when enabled, so the
    // test above is meaningful.
    let mut reg = Registry::enabled(Default::default());
    reg.event(|| Event::PeriodBegin { index: 0 });
    reg.record_hist(HistKind::PeriodSyncOps, 3);
    assert_eq!(reg.metrics().events_recorded, 1);
    assert_eq!(reg.metrics().hist(HistKind::PeriodSyncOps).sum, 3);
}
