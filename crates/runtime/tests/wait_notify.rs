//! Runtime semantics of `wait`/`notify`: monitor handoff, FIFO wakeup,
//! lost-wakeup behavior, and happens-before correctness under detection.

use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_runtime::{NullDetector, Value, Vm, VmConfig, VmError};
use pacer_trace::Detector;

fn compiled(src: &str) -> pacer_lang::ir::CompiledProgram {
    pacer_lang::compile(&pacer_lang::parse(src).unwrap()).unwrap()
}

/// A guarded bounded handoff: consumer waits until the producer fills the
/// slot; all accesses under the monitor → race-free, value always
/// delivered.
const HANDOFF: &str = "
    shared slot; shared full;
    lock m;

    fn producer() {
        sync m {
            slot = 99;
            full = 1;
            notify m;
        }
    }

    fn consumer() {
        let got = 0;
        sync m {
            while (full == 0) {
                wait m;
            }
            got = slot;
        }
        return got;
    }

    fn main() {
        let c = spawn consumer();
        let p = spawn producer();
        join p;
        join c;
        return full;
    }
";

#[test]
fn handoff_delivers_and_is_race_free_under_every_detector() {
    let program = compiled(HANDOFF);
    for seed in 0..12 {
        let mut ft = FastTrackDetector::new();
        let out = Vm::run(&program, &mut ft, &VmConfig::new(seed)).unwrap();
        assert_eq!(out.main_result, Value::Int(1), "seed {seed}");
        assert!(
            ft.races().is_empty(),
            "seed {seed}: monitor orders accesses"
        );

        let mut pacer = PacerDetector::new();
        let cfg = VmConfig::new(seed).with_sampling_rate(1.0);
        Vm::run(&program, &mut pacer, &cfg).unwrap();
        assert!(pacer.races().is_empty(), "seed {seed}: PACER agrees");
    }
}

#[test]
fn notify_without_waiters_is_lost() {
    // The producer notifies before the consumer ever waits; the consumer's
    // condition re-check (the `while`) still saves it. A broken `if`-based
    // wait would deadlock when the notify is lost — demonstrated here.
    let broken = "
        shared full; lock m;
        fn producer() { sync m { full = 1; notify m; } }
        fn consumer() {
            sync m {
                if (full == 0) { wait m; }
            }
        }
        fn main() {
            let p = spawn producer();
            join p;                    // producer finishes first: notify lost
            let c = spawn consumer();
            join c;
        }
    ";
    let program = compiled(broken);
    // With the producer strictly first, full == 1 by the time the consumer
    // checks: no wait happens, so this terminates.
    let mut det = NullDetector;
    Vm::run(&program, &mut det, &VmConfig::new(0)).unwrap();

    // But a consumer that waits unconditionally sleeps forever: deadlock.
    let sleeper = "
        lock m;
        fn consumer() { sync m { wait m; } }
        fn main() {
            let c = spawn consumer();
            join c;
        }
    ";
    let program = compiled(sleeper);
    assert_eq!(
        Vm::run(&program, &mut NullDetector, &VmConfig::new(1)).unwrap_err(),
        VmError::Deadlock,
        "no one ever notifies"
    );
}

#[test]
fn notifyall_wakes_every_waiter() {
    let src = "
        shared started; shared released; lock m;
        fn waiter() {
            sync m {
                started = started + 1;
                wait m;
                released = released + 1;
            }
        }
        fn boss(n) {
            let ready = 0;
            while (ready < n) {
                sync m { ready = started; }
            }
            sync m { notifyall m; }
        }
        fn main() {
            let a = spawn waiter();
            let b = spawn waiter();
            let c = spawn waiter();
            let d = spawn boss(3);
            join a; join b; join c; join d;
            return released;
        }
    ";
    let program = compiled(src);
    for seed in 0..6 {
        let mut det = NullDetector;
        let out = Vm::run(&program, &mut det, &VmConfig::new(seed)).unwrap();
        assert_eq!(out.main_result, Value::Int(3), "seed {seed}: all released");
    }
}

#[test]
fn notify_one_wakes_exactly_one() {
    // Two waiters, one notify: the program can only finish because main
    // joins just the notified count. A second notify releases the other.
    let src = "
        shared woken; lock m;
        fn waiter() {
            sync m { wait m; woken = woken + 1; }
        }
        fn main() {
            let a = spawn waiter();
            let b = spawn waiter();
            // Give both a chance to park, then release them one at a time.
            let i = 0;
            while (i < 200) { i = i + 1; }
            sync m { notify m; }
            sync m { notify m; }
            sync m { notify m; }   // extra notify: lost, harmless
            join a; join b;
            return woken;
        }
    ";
    let program = compiled(src);
    for seed in 0..6 {
        let out = Vm::run(&program, &mut NullDetector, &VmConfig::new(seed));
        match out {
            Ok(o) => assert_eq!(o.main_result, Value::Int(2), "seed {seed}"),
            // If a waiter had not parked yet when its notify fired, the
            // wakeup is lost and the waiter sleeps forever — Java has the
            // same hazard; the deterministic scheduler makes it visible.
            Err(VmError::Deadlock) => {}
            Err(e) => panic!("seed {seed}: {e}"),
        }
    }
}

#[test]
fn handoff_straddles_sampling_period_boundaries() {
    // The producer churns the nursery before handing off, so GCs — and
    // with them sampling-period boundaries — fall between the consumer
    // parking and the notify that releases it. The wait/notify HB edge
    // must survive the detector switching sampling on and off mid-wait.
    let src = "
        shared slot; shared full; lock m;
        fn producer() {
            let i = 0;
            while (i < 40) {
                let o = new obj;
                o.f = i;
                i = i + 1;
            }
            sync m { slot = 7; full = 1; notify m; }
        }
        fn consumer() {
            let got = 0;
            sync m {
                while (full == 0) { wait m; }
                got = slot;
            }
            return got;
        }
        fn main() {
            let c = spawn consumer();
            let p = spawn producer();
            join p;
            join c;
            return full;
        }
    ";
    let program = compiled(src);
    let mut toggled = 0;
    for seed in 0..8 {
        let full = VmConfig::new(seed)
            .with_sampling_rate(1.0)
            .with_nursery_bytes(256);
        let mut pacer = PacerDetector::new();
        let out = Vm::run(&program, &mut pacer, &full).unwrap();
        assert!(out.gc_count >= 2, "seed {seed}: only {} GCs", out.gc_count);
        assert!(
            pacer.stats().sample_periods >= 1,
            "seed {seed}: r = 1.0 always samples"
        );
        assert_eq!(out.main_result, Value::Int(1), "seed {seed}");
        assert!(
            pacer.races().is_empty(),
            "seed {seed}: monitor + wait/notify order every access"
        );

        // At r = 0.5 some periods sample and some don't; the schedule must
        // not move and the (empty) race set must not grow.
        let half = VmConfig::new(seed)
            .with_sampling_rate(0.5)
            .with_nursery_bytes(256);
        let mut sampled = PacerDetector::new();
        let out_half = Vm::run(&program, &mut sampled, &half).unwrap();
        assert_eq!(
            out_half.steps, out.steps,
            "seed {seed}: sampling must not perturb the schedule"
        );
        assert!(
            sampled.races().is_empty(),
            "seed {seed}: no false positives across period boundaries"
        );
        // Each `sample_begin` at r < 1 is sampling switching back ON at a
        // GC — two or more means the handoff straddled an off period.
        if sampled.stats().sample_periods >= 2 {
            toggled += 1;
        }
    }
    assert!(
        toggled >= 1,
        "no seed straddled an unsampled period; shrink the nursery"
    );
}

#[test]
fn wait_emits_release_acquire_pairs() {
    use pacer_trace::RecordingDetector;
    let program = compiled(HANDOFF);
    let mut rec = RecordingDetector::new();
    Vm::run(&program, &mut rec, &VmConfig::new(4)).unwrap();
    let trace = rec.into_trace();
    trace.validate().expect("wait keeps lock discipline valid");
    let stats = trace.stats();
    assert_eq!(
        stats.acquires, stats.releases,
        "every acquire has a matching release"
    );
}
