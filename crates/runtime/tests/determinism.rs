//! Determinism properties of the simulated runtime: the schedule is a pure
//! function of the seed and is independent of the attached detector.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_core::PacerDetector;
use pacer_runtime::{InstrumentMode, Vm, VmConfig};
use pacer_trace::{Action, Detector, RecordingDetector, Trace};

const SRC: &str = "
    shared x; shared a[4]; lock m; volatile flag;
    fn w(id) {
        let i = 0;
        while (i < 25) {
            sync m { x = x + id; }
            a[(id + i) % 4] = i;
            let o = new obj;
            o.v = i;
            i = i + 1;
        }
        flag = id;
    }
    fn main() {
        let p = spawn w(1);
        let q = spawn w(2);
        join p; join q;
        return x;
    }
";

fn compiled() -> pacer_lang::ir::CompiledProgram {
    pacer_lang::compile(&pacer_lang::parse(SRC).unwrap()).unwrap()
}

fn record(cfg: &VmConfig) -> Trace {
    let mut rec = RecordingDetector::new();
    Vm::run(&compiled(), &mut rec, cfg).unwrap();
    rec.into_trace()
}

/// Strips sampling markers, leaving the program's own actions.
fn program_actions(trace: &Trace) -> Vec<Action> {
    trace
        .iter()
        .copied()
        .filter(|a| !a.is_sampling_marker())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Equal seeds and configs give byte-identical event streams.
    #[test]
    fn same_seed_same_trace(seed in 0u64..5_000, rate in 0.0f64..=1.0) {
        let cfg = VmConfig::new(seed).with_sampling_rate(rate);
        prop_assert_eq!(record(&cfg), record(&cfg));
    }

    /// The interleaving does not depend on which detector observes it:
    /// only the sampling markers (driven by the GC clock, which sampled
    /// analysis metadata advances) may differ between instrumentation
    /// modes at rate 0.
    #[test]
    fn schedule_is_detector_independent(seed in 0u64..5_000) {
        let cfg_full = VmConfig::new(seed); // rate 0: no metadata charges
        let cfg_sync = VmConfig::new(seed).with_instrument(InstrumentMode::SyncOnly);
        let full = record(&cfg_full);
        let sync_only = record(&cfg_sync);
        prop_assert_eq!(program_actions(&full).len(), full.len(), "no markers at r=0");
        // SyncOnly mode suppresses access events at the detector, but the
        // recorder in Full mode sees them; compare the sync skeletons.
        let sync_skeleton = |t: &Trace| {
            t.iter().copied().filter(Action::is_sync).collect::<Vec<_>>()
        };
        prop_assert_eq!(sync_skeleton(&full), sync_skeleton(&sync_only));
    }

    /// A PACER run and a recording of the same seed agree on the effective
    /// schedule: replaying the recording through a fresh PACER instance
    /// yields identical statistics.
    #[test]
    fn live_and_replay_stats_agree(seed in 0u64..2_000, rate in 0.0f64..=1.0) {
        let cfg = VmConfig::new(seed).with_sampling_rate(rate);
        let mut live = PacerDetector::new();
        Vm::run(&compiled(), &mut live, &cfg).unwrap();
        let trace = record(&cfg);
        let mut replay = PacerDetector::new();
        replay.run(&trace);
        prop_assert_eq!(live.stats(), replay.stats());
        prop_assert_eq!(live.races().len(), replay.races().len());
    }

    /// Different seeds eventually produce different interleavings.
    #[test]
    fn seeds_vary_schedules(seed in 0u64..2_000) {
        let a = record(&VmConfig::new(seed));
        let b = record(&VmConfig::new(seed + 1));
        // Lengths match (same program) but orders almost surely differ;
        // accept equality only if the whole stream matches (rare ties).
        prop_assert_eq!(a.len(), b.len());
    }
}
