//! The simulated heap: objects, per-field variable ids, and the
//! allocation clock that drives garbage collections.

use std::collections::HashMap;

use pacer_trace::VarId;

use crate::vm::Value;

/// Bytes charged per allocated object: payload plus the **two header
/// words** PACER adds to every object (§4 "our implementation adds two
/// words to the header of every object").
pub const OBJECT_BYTES: u64 = 48;

/// Bytes charged the first time a field of an object is written.
pub const FIELD_BYTES: u64 = 16;

/// A heap object identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

#[derive(Clone, Debug, Default)]
struct Object {
    fields: HashMap<u16, Value>,
    /// Lazily assigned `VarId` per field, for instrumented accesses.
    field_vars: HashMap<u16, VarId>,
}

/// A space measurement taken at a full-heap collection (Figure 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceSample {
    /// Interpreter steps executed so far (the x-axis once normalized).
    pub steps: u64,
    /// Live program heap bytes (objects + fields + headers).
    pub heap_bytes: u64,
    /// Total bytes allocated so far (program + charged metadata).
    pub allocated_bytes: u64,
}

/// The simulated object heap: objects, field variables, and the
/// allocation clock.
#[derive(Clone, Debug)]
pub struct Heap {
    objects: Vec<Object>,
    /// Next `VarId` for an object field (globals occupy `0..global_slots`).
    next_var: u32,
    /// Live program bytes (we never free: workloads are bounded).
    pub(crate) live_bytes: u64,
    /// Allocation since the last nursery collection (program + metadata).
    pub(crate) bytes_since_gc: u64,
    /// Total allocation ever.
    pub(crate) total_allocated: u64,
}

impl Heap {
    /// Creates a heap whose field `VarId`s start above the globals.
    pub fn new(global_slots: u32) -> Self {
        Heap {
            objects: Vec::new(),
            next_var: global_slots,
            live_bytes: 0,
            bytes_since_gc: 0,
            total_allocated: 0,
        }
    }

    /// Allocates a fresh object, advancing the allocation clock.
    pub fn alloc(&mut self) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object::default());
        self.charge(OBJECT_BYTES, true);
        id
    }

    /// Charges `bytes` to the allocation clock; `live` also counts them as
    /// live program heap. Metadata charges (sampled-access metadata, §4)
    /// pass `live = false` — they push collections closer, which is exactly
    /// the bias the GC sampler corrects for.
    pub fn charge(&mut self, bytes: u64, live: bool) {
        self.bytes_since_gc += bytes;
        self.total_allocated += bytes;
        if live {
            self.live_bytes += bytes;
        }
    }

    /// Reads a field (0 if never written).
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not a valid object id.
    pub fn load_field(&self, obj: ObjId, field: u16) -> Value {
        self.objects[obj.0 as usize]
            .fields
            .get(&field)
            .copied()
            .unwrap_or(Value::Int(0))
    }

    /// Writes a field, charging for first-touch.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not a valid object id.
    pub fn store_field(&mut self, obj: ObjId, field: u16, value: Value) {
        let is_new = self.objects[obj.0 as usize]
            .fields
            .insert(field, value)
            .is_none();
        if is_new {
            self.charge(FIELD_BYTES, true);
        }
    }

    /// The race-detection `VarId` of `(obj, field)`, assigned on first use
    /// by an instrumented access.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not a valid object id.
    pub fn field_var(&mut self, obj: ObjId, field: u16) -> VarId {
        let next = &mut self.next_var;
        *self.objects[obj.0 as usize]
            .field_vars
            .entry(field)
            .or_insert_with(|| {
                let v = VarId::new(*next);
                *next += 1;
                v
            })
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Live program heap bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total bytes ever allocated (program + charged metadata).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_charges_object_bytes() {
        let mut h = Heap::new(4);
        let o = h.alloc();
        assert_eq!(o, ObjId(0));
        assert_eq!(h.live_bytes(), OBJECT_BYTES);
        assert_eq!(h.object_count(), 1);
    }

    #[test]
    fn fields_default_to_zero_and_charge_on_first_write() {
        let mut h = Heap::new(0);
        let o = h.alloc();
        assert_eq!(h.load_field(o, 3), Value::Int(0));
        h.store_field(o, 3, Value::Int(7));
        assert_eq!(h.live_bytes(), OBJECT_BYTES + FIELD_BYTES);
        h.store_field(o, 3, Value::Int(8));
        assert_eq!(h.live_bytes(), OBJECT_BYTES + FIELD_BYTES, "no re-charge");
        assert_eq!(h.load_field(o, 3), Value::Int(8));
    }

    #[test]
    fn field_vars_start_above_globals_and_are_stable() {
        let mut h = Heap::new(10);
        let a = h.alloc();
        let b = h.alloc();
        let v1 = h.field_var(a, 0);
        let v2 = h.field_var(b, 0);
        assert_eq!(v1, VarId::new(10));
        assert_eq!(v2, VarId::new(11));
        assert_eq!(h.field_var(a, 0), v1, "stable per (object, field)");
        assert_ne!(h.field_var(a, 1), v1);
    }

    #[test]
    fn metadata_charges_are_not_live() {
        let mut h = Heap::new(0);
        h.charge(100, false);
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.total_allocated(), 100);
        assert_eq!(h.bytes_since_gc, 100);
    }
}
