//! The virtual machine: seeded preemptive execution of compiled programs.

use std::error::Error;
use std::fmt;

use pacer_prng::Rng;

use pacer_clock::ThreadId;
use pacer_faults::{StormShape, TrialFaults, INJECTED_PREFIX};
use pacer_governor::{rate_from_millionths, Directive, Governor, GovernorConfig, GovernorSummary};
use pacer_lang::ir::{BinOp, CompiledProgram, Instr};
use pacer_trace::{Action, ActionStats, Detector, LockId, RaceReport, VolatileId};

use crate::heap::{Heap, ObjId, SpaceSample};
use crate::sampler::GcSampler;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// A 64-bit integer (also booleans: zero is false).
    Int(i64),
    /// A heap object reference.
    Ref(ObjId),
    /// A thread handle (from `spawn`).
    Thread(u32),
}

impl Value {
    fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(VmError::Type(format!("expected int, found {other:?}"))),
        }
    }

    fn truthy(self) -> bool {
        !matches!(self, Value::Int(0))
    }
}

/// How much instrumentation the run carries (the configurations of
/// Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InstrumentMode {
    /// No detector calls at all: the unmodified-VM baseline.
    Off,
    /// Object metadata + synchronization instrumentation only
    /// ("OM + sync ops, r = 0%").
    SyncOnly,
    /// Full instrumentation: sync ops and read/write barriers.
    #[default]
    Full,
}

/// Configuration for one VM run.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Scheduler / sampler seed: equal seeds give equal interleavings.
    pub seed: u64,
    /// Maximum instructions per scheduling turn (quantum is drawn from
    /// `1..=max_quantum`).
    pub max_quantum: u32,
    /// Allocation between nursery collections (the paper uses 32 MB; the
    /// default here is scaled down so runs see on the order of a hundred
    /// sampling-period decisions, like the paper's long executions).
    pub nursery_bytes: u64,
    /// A full-heap collection (space sample) every this many nurseries.
    pub full_gc_every: u32,
    /// Target global sampling rate `r ∈ [0, 1]`; periods toggle at GC
    /// boundaries (§4).
    pub sampling_rate: f64,
    /// Bytes charged to the allocation clock per analyzed access inside a
    /// sampling period — the metadata-allocation bias §4 corrects for.
    pub metadata_bytes_per_sampled_access: u64,
    /// Safety limit on executed instructions.
    pub max_steps: u64,
    /// Instrumentation level.
    pub instrument: InstrumentMode,
    /// Armed fault injections for this run (resilience testing). `None`
    /// costs a single branch per check site — the zero-cost default.
    pub faults: Option<TrialFaults>,
    /// Armed resource governor: budgets evaluated at every nursery GC
    /// boundary, reacting by stepping the sampling rate along a ladder.
    /// `None` costs a single branch per check site — the zero-cost
    /// default.
    pub governor: Option<GovernorConfig>,
}

impl VmConfig {
    /// A configuration with the given scheduler seed and full
    /// instrumentation at rate 0 (never sampling).
    pub fn new(seed: u64) -> Self {
        VmConfig {
            seed,
            max_quantum: 24,
            nursery_bytes: 2 * 1024,
            full_gc_every: 8,
            sampling_rate: 0.0,
            metadata_bytes_per_sampled_access: 8,
            max_steps: 200_000_000,
            instrument: InstrumentMode::Full,
            faults: None,
            governor: None,
        }
    }

    /// Sets the target sampling rate.
    pub fn with_sampling_rate(mut self, rate: f64) -> Self {
        self.sampling_rate = rate;
        self
    }

    /// Sets the instrumentation mode.
    pub fn with_instrument(mut self, mode: InstrumentMode) -> Self {
        self.instrument = mode;
        self
    }

    /// Sets the step limit.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Sets the nursery size (allocation between sampling decisions).
    pub fn with_nursery_bytes(mut self, bytes: u64) -> Self {
        self.nursery_bytes = bytes;
        self
    }

    /// Arms the resource governor for this run. An unarmed configuration
    /// (no budgets set) is normalized to `None`, keeping the hot path at a
    /// single branch.
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = if governor.armed() {
            Some(governor)
        } else {
            None
        };
        self
    }

    /// Arms fault injections for this run.
    pub fn with_faults(mut self, faults: TrialFaults) -> Self {
        self.faults = if faults.is_clear() {
            None
        } else {
            Some(faults)
        };
        self
    }
}

/// A runtime error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Operand of the wrong kind.
    Type(String),
    /// Division or remainder by zero.
    DivideByZero,
    /// All live threads are blocked.
    Deadlock,
    /// The configured step limit was exceeded.
    StepLimit(u64),
    /// Internal stack underflow (a compiler bug if it ever fires).
    StackUnderflow,
    /// Simulated allocator exhaustion from an armed fault plan: the
    /// heap's cumulative allocation exceeded the injected byte budget.
    InjectedOom(u64),
    /// A detector's vector clock overflowed for this thread during the
    /// run. Clocks saturate and record the overflow stickily; the harness
    /// converts the post-run flag into this quarantinable error.
    ClockOverflow(ThreadId),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Type(m) => write!(f, "type error: {m}"),
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::Deadlock => write!(f, "deadlock: all live threads blocked"),
            VmError::StepLimit(n) => write!(f, "step limit exceeded after {n} instructions"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::InjectedOom(budget) => {
                write!(
                    f,
                    "{INJECTED_PREFIX}heap OOM budget of {budget} bytes exceeded"
                )
            }
            VmError::ClockOverflow(t) => {
                write!(f, "vector clock overflow on thread {}", t.raw())
            }
        }
    }
}

impl Error for VmError {}

/// A detector that ignores everything (for uninstrumented baselines).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullDetector;

impl Detector for NullDetector {
    fn name(&self) -> String {
        "null".to_string()
    }

    fn on_action(&mut self, _action: &Action) {}

    fn races(&self) -> &[RaceReport] {
        &[]
    }
}

/// A resource-governor request delivered to the embedding layer through
/// the hook passed to [`Vm::run_governed`].
///
/// The VM itself is detector-agnostic (it only knows `D: Detector`), so
/// governor interactions that need detector knowledge — metadata
/// accounting, internal-sampler rescaling — are delegated to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GovernorSignal {
    /// Return the detector's current metadata footprint in **bytes**
    /// (callers typically report `space_breakdown().total_words() * 8`).
    PollMemBytes,
    /// The sampling rate changed to this many millionths; detectors that
    /// sample internally rescale here. The return value is ignored.
    RateChanged(u32),
}

/// The per-run hook bundle: the full-GC space probe plus the governor
/// hook. Bundled so the scheduler threads one parameter through `step`.
struct Hooks<P, G> {
    probe: P,
    gov: G,
}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Instructions executed across all threads.
    pub steps: u64,
    /// Dynamic action counts (synchronization + instrumented accesses),
    /// counted even when instrumentation is off, so baselines are
    /// comparable.
    pub stats: ActionStats,
    /// Field accesses elided by escape analysis (never instrumented).
    pub elided_accesses: u64,
    /// Nursery collections.
    pub gc_count: u64,
    /// Full-heap collections (space samples).
    pub full_gc_count: u64,
    /// Space samples taken at full-heap collections.
    pub space_samples: Vec<SpaceSample>,
    /// `main`'s return value.
    pub main_result: Value,
    /// Work-weighted effective sampling rate per the GC sampler's sync-op
    /// measure (`None` when no sync ops ran).
    pub sampler_observed_rate: Option<f64>,
    /// Total bytes allocated (program + charged metadata).
    pub total_allocated: u64,
    /// Threads ever started (including main).
    pub threads_started: usize,
    /// Maximum simultaneously live threads.
    pub max_live_threads: usize,
    /// Scheduling turns run with a storm-forced quantum of 1 (zero when
    /// no `sched-storm` fault was armed).
    pub fault_storm_turns: u64,
    /// Resource-governor activity (`None` when no governor was armed).
    /// A `Some` with [`GovernorSummary::degraded`] true means the run
    /// finished at a reduced rate or was cancelled cooperatively.
    pub governor: Option<GovernorSummary>,
}

impl RunOutcome {
    /// This run's contribution to an observability snapshot (one trial).
    pub fn runtime_counters(&self) -> pacer_obs::RuntimeCounters {
        pacer_obs::RuntimeCounters {
            trials: 1,
            steps: self.steps,
            gcs: self.gc_count,
            full_gcs: self.full_gc_count,
            elided_accesses: self.elided_accesses,
            allocated_bytes: self.total_allocated,
            threads_started: self.threads_started as u64,
            max_live_threads: self.max_live_threads as u64,
        }
    }
}

#[derive(Clone, Debug)]
enum ThreadState {
    Runnable,
    BlockedLock(u32),
    BlockedJoin(u32),
    /// Parked on a lock's wait queue until a notify (not schedulable).
    /// Carries the lock for diagnostics; wakeups come via the queue.
    #[allow(dead_code)]
    Waiting(u32),
    Done(Value),
}

#[derive(Clone, Debug)]
struct Frame {
    func: u16,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

#[derive(Clone, Debug)]
struct SimThread {
    frames: Vec<Frame>,
    state: ThreadState,
}

/// The virtual machine. Use [`Vm::run`] or [`Vm::run_with_probe`].
pub struct Vm<'p, D: Detector> {
    program: &'p CompiledProgram,
    config: &'p VmConfig,
    detector: &'p mut D,
    threads: Vec<SimThread>,
    globals: Vec<Value>,
    volatiles: Vec<Value>,
    lock_holders: Vec<Option<u32>>,
    /// Per-lock wait queues (FIFO), for `wait`/`notify`.
    wait_queues: Vec<Vec<u32>>,
    heap: Heap,
    sampler: GcSampler,
    rng: Rng,
    steps: u64,
    stats: ActionStats,
    elided: u64,
    gc_count: u64,
    full_gc_count: u64,
    space_samples: Vec<SpaceSample>,
    max_live: usize,
    /// Armed faults, copied out of the config; `None` on every normal run.
    faults: Option<TrialFaults>,
    /// Detector actions forwarded so far (detector-panic fault trigger).
    detector_actions: u64,
    /// Scheduling turns taken (sched-storm window position).
    sched_turns: u64,
    /// Scheduling turns whose quantum was storm-forced to 1.
    storm_turns: u64,
    /// Armed resource governor; `None` on every ungoverned run.
    governor: Option<Governor>,
}

impl<'p, D: Detector> Vm<'p, D> {
    /// Runs `program` to completion under `config`, feeding `detector`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on type errors, deadlock, or step-limit
    /// exhaustion.
    pub fn run(
        program: &CompiledProgram,
        detector: &mut D,
        config: &VmConfig,
    ) -> Result<RunOutcome, VmError> {
        Self::run_with_probe(program, detector, config, |_, _| {})
    }

    /// Like [`Vm::run`], but calls `probe(detector, sample)` at every
    /// full-heap collection so callers can record detector metadata size
    /// over time (Figure 10).
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on type errors, deadlock, or step-limit
    /// exhaustion.
    pub fn run_with_probe(
        program: &CompiledProgram,
        detector: &mut D,
        config: &VmConfig,
        probe: impl FnMut(&mut D, &SpaceSample),
    ) -> Result<RunOutcome, VmError> {
        Self::run_governed(program, detector, config, probe, |_, _| 0)
    }

    /// Like [`Vm::run_with_probe`], with a second hook for resource-governor
    /// interactions that need detector knowledge (see [`GovernorSignal`]).
    /// The hook is only invoked when `config.governor` is armed.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on type errors, deadlock, or step-limit
    /// exhaustion. A governed run that is *cancelled* at the ladder floor
    /// is **not** an error: it returns `Ok` with
    /// [`RunOutcome::governor`]`.cancelled` set.
    pub fn run_governed(
        program: &CompiledProgram,
        detector: &mut D,
        config: &VmConfig,
        probe: impl FnMut(&mut D, &SpaceSample),
        gov_hook: impl FnMut(&mut D, GovernorSignal) -> u64,
    ) -> Result<RunOutcome, VmError> {
        let mut hooks = Hooks {
            probe,
            gov: gov_hook,
        };
        let entry = program.entry;
        let main_fn = &program.functions[entry as usize];
        let main = SimThread {
            frames: vec![Frame {
                func: entry,
                pc: 0,
                locals: vec![Value::Int(0); main_fn.n_locals as usize],
                stack: Vec::new(),
            }],
            state: ThreadState::Runnable,
        };
        let mut vm = Vm {
            program,
            config,
            detector,
            threads: vec![main],
            globals: vec![Value::Int(0); program.globals as usize],
            volatiles: vec![Value::Int(0); program.volatiles as usize],
            lock_holders: vec![None; program.locks as usize],
            wait_queues: vec![Vec::new(); program.locks as usize],
            heap: Heap::new(program.globals),
            sampler: GcSampler::new(config.sampling_rate, config.seed ^ 0x5a5a_5a5a),
            rng: Rng::seed_from_u64(config.seed),
            steps: 0,
            stats: ActionStats::default(),
            elided: 0,
            gc_count: 0,
            full_gc_count: 0,
            space_samples: Vec::new(),
            max_live: 1,
            faults: config.faults,
            detector_actions: 0,
            sched_turns: 0,
            storm_turns: 0,
            governor: config.governor.clone().map(Governor::new),
        };
        if let Some(gov) = &vm.governor {
            // A governed run starts at the ladder's top rung, which may
            // differ from (and overrides) the configured sampling rate.
            vm.sampler
                .set_target(rate_from_millionths(gov.rate_millionths()));
        }

        // Treat run start as a collection boundary so the first window is
        // drawn like every other (and r = 100% samples from step 0).
        let sampling = vm.sampler.on_gc();
        if sampling {
            vm.emit_marker(Action::SampleBegin);
        }

        vm.schedule(&mut hooks)?;

        let main_result = match &vm.threads[0].state {
            ThreadState::Done(v) => *v,
            _ => Value::Int(0),
        };
        Ok(RunOutcome {
            steps: vm.steps,
            stats: vm.stats,
            elided_accesses: vm.elided,
            gc_count: vm.gc_count,
            full_gc_count: vm.full_gc_count,
            space_samples: vm.space_samples,
            main_result,
            sampler_observed_rate: vm.sampler.observed_rate(),
            total_allocated: vm.heap.total_allocated(),
            threads_started: vm.threads.len(),
            max_live_threads: vm.max_live,
            fault_storm_turns: vm.storm_turns,
            governor: vm.governor.map(Governor::into_summary),
        })
    }

    fn schedule<P, G>(&mut self, hooks: &mut Hooks<P, G>) -> Result<(), VmError>
    where
        P: FnMut(&mut D, &SpaceSample),
        G: FnMut(&mut D, GovernorSignal) -> u64,
    {
        loop {
            // A thread is enabled if runnable, or blocked on a condition
            // that now holds.
            let mut enabled: Vec<usize> = Vec::new();
            let mut all_done = true;
            for (i, t) in self.threads.iter().enumerate() {
                match t.state {
                    ThreadState::Runnable => {
                        enabled.push(i);
                        all_done = false;
                    }
                    ThreadState::BlockedLock(m) => {
                        all_done = false;
                        if self.lock_holders[m as usize].is_none() {
                            enabled.push(i);
                        }
                    }
                    ThreadState::BlockedJoin(u) => {
                        all_done = false;
                        if matches!(self.threads[u as usize].state, ThreadState::Done(_)) {
                            enabled.push(i);
                        }
                    }
                    ThreadState::Waiting(_) => {
                        // Only a notify can unpark it.
                        all_done = false;
                    }
                    ThreadState::Done(_) => {}
                }
            }
            if enabled.is_empty() {
                return if all_done {
                    Ok(())
                } else {
                    Err(VmError::Deadlock)
                };
            }
            let ti = enabled[self.rng.gen_range(0..enabled.len())];
            self.threads[ti].state = ThreadState::Runnable;
            let mut quantum = self.rng.gen_range(1..=self.config.max_quantum);
            if let Some(faults) = self.faults {
                quantum = self.storm_quantum(faults.sched_storm, quantum);
            }
            for _ in 0..quantum {
                if !matches!(self.threads[ti].state, ThreadState::Runnable) {
                    break;
                }
                self.step(ti as u32, hooks)?;
                if let Some(gov) = &self.governor {
                    if gov.is_cancelled() {
                        // Cooperative cancellation at the ladder floor: a
                        // clean (degraded) outcome, not an error.
                        return Ok(());
                    }
                }
                if let Some(faults) = self.faults {
                    if let Some(budget) = faults.heap_oom_budget {
                        // With a governor armed the injected budget is
                        // governor-managed at GC boundaries instead of
                        // being a hard per-step failure.
                        if self.governor.is_none() && self.heap.total_allocated() > budget {
                            return Err(VmError::InjectedOom(budget));
                        }
                    }
                }
                if self.steps > self.config.max_steps {
                    return Err(VmError::StepLimit(self.steps));
                }
            }
        }
    }

    /// Applies an armed preemption storm: within each storm window the
    /// quantum is forced to 1, maximizing interleaving pressure.
    fn storm_quantum(&mut self, storm: Option<StormShape>, quantum: u32) -> u32 {
        let turn = self.sched_turns;
        self.sched_turns += 1;
        match storm {
            Some(shape) if shape.in_storm(turn) => {
                self.storm_turns += 1;
                1
            }
            _ => quantum,
        }
    }

    /// Forwards one action to the detector, firing an armed
    /// detector-panic fault first. The panic unwinds out of the VM and
    /// is caught by the harness's resilient trial engine.
    fn forward_to_detector(&mut self, action: &Action) {
        if let Some(faults) = self.faults {
            if let Some(after) = faults.detector_panic_after {
                if self.detector_actions >= after {
                    panic!("{INJECTED_PREFIX}detector panic (trial-armed, action {after})");
                }
            }
        }
        self.detector_actions += 1;
        self.detector.on_action(action);
    }

    fn emit_marker(&mut self, action: Action) {
        self.stats.count(&action);
        if matches!(self.config.instrument, InstrumentMode::Full) {
            self.forward_to_detector(&action);
        }
    }

    fn emit_sync(&mut self, action: Action) {
        self.stats.count(&action);
        self.sampler.count_sync();
        if !matches!(self.config.instrument, InstrumentMode::Off) {
            self.forward_to_detector(&action);
        }
    }

    fn emit_access(&mut self, action: Action) {
        self.stats.count(&action);
        if matches!(self.config.instrument, InstrumentMode::Full) {
            if self.sampler.is_sampling() {
                // Sampled accesses allocate analysis metadata, advancing
                // the allocation clock (§4's bias source).
                self.heap
                    .charge(self.config.metadata_bytes_per_sampled_access, false);
            }
            self.forward_to_detector(&action);
        }
    }

    fn maybe_gc<P, G>(&mut self, hooks: &mut Hooks<P, G>)
    where
        P: FnMut(&mut D, &SpaceSample),
        G: FnMut(&mut D, GovernorSignal) -> u64,
    {
        if self.heap.bytes_since_gc < self.config.nursery_bytes {
            return;
        }
        self.heap.bytes_since_gc = 0;
        self.gc_count += 1;
        if self.config.full_gc_every > 0
            && (self.gc_count).is_multiple_of(self.config.full_gc_every as u64)
        {
            self.full_gc_count += 1;
            let sample = SpaceSample {
                steps: self.steps,
                heap_bytes: self.heap.live_bytes(),
                allocated_bytes: self.heap.total_allocated(),
            };
            self.space_samples.push(sample);
            (hooks.probe)(self.detector, &sample);
        }
        if self.governor.is_some() {
            self.govern_boundary(hooks);
        }
        let was = self.sampler.is_sampling();
        let now = self.sampler.on_gc();
        if was != now {
            self.emit_marker(if now {
                Action::SampleBegin
            } else {
                Action::SampleEnd
            });
        }
    }

    /// Evaluates the armed governor's budgets at this GC boundary and
    /// applies its directive (retarget the sampler, notify the detector,
    /// or mark the run cancelled).
    fn govern_boundary<P, G>(&mut self, hooks: &mut Hooks<P, G>)
    where
        P: FnMut(&mut D, &SpaceSample),
        G: FnMut(&mut D, GovernorSignal) -> u64,
    {
        let Some(gov) = self.governor.as_mut() else {
            return;
        };
        if gov.is_cancelled() {
            return;
        }
        let mem_budget = gov.config().mem_budget_bytes;
        let deadline_budget = gov.config().deadline_events;
        // Memory pressure is the worse of two ratios: detector metadata
        // bytes against the configured budget, and (when a fault plan arms
        // an injected heap budget) simulated heap allocation against that
        // budget — the governor then manages the injected OOM instead of
        // the per-step hard failure.
        let mut mem: Option<(u64, u64)> = None;
        if let Some(limit) = mem_budget {
            let usage = (hooks.gov)(self.detector, GovernorSignal::PollMemBytes);
            mem = Some((usage, limit));
        }
        if let Some(faults) = self.faults {
            if let Some(limit) = faults.heap_oom_budget {
                let candidate = (self.heap.total_allocated(), limit);
                mem = Some(match mem {
                    Some(existing) if ratio_ge(existing, candidate) => existing,
                    _ => candidate,
                });
            }
        }
        let deadline = deadline_budget.map(|limit| (self.steps, limit));
        match gov.on_boundary(self.steps, mem, deadline) {
            Directive::None | Directive::Cancel { .. } => {}
            Directive::StepDown { to } | Directive::StepUp { to } => {
                self.sampler.set_target(rate_from_millionths(to));
                (hooks.gov)(self.detector, GovernorSignal::RateChanged(to));
            }
        }
    }

    fn frame(&mut self, ti: u32) -> &mut Frame {
        self.threads[ti as usize]
            .frames
            .last_mut()
            .expect("live thread has a frame")
    }

    fn pop(&mut self, ti: u32) -> Result<Value, VmError> {
        self.frame(ti).stack.pop().ok_or(VmError::StackUnderflow)
    }

    fn push(&mut self, ti: u32, v: Value) {
        self.frame(ti).stack.push(v);
    }

    #[allow(clippy::too_many_lines)]
    fn step<P, G>(&mut self, ti: u32, hooks: &mut Hooks<P, G>) -> Result<(), VmError>
    where
        P: FnMut(&mut D, &SpaceSample),
        G: FnMut(&mut D, GovernorSignal) -> u64,
    {
        let (func, pc) = {
            let f = self.frame(ti);
            (f.func, f.pc)
        };
        let instr = self.program.functions[func as usize].code[pc];
        self.steps += 1;
        let tid = ThreadId::new(ti);
        // Most instructions advance pc by one; blocking ones reset it.
        self.frame(ti).pc = pc + 1;
        match instr {
            Instr::Const(v) => self.push(ti, Value::Int(v)),
            Instr::LoadLocal(i) => {
                let v = self.frame(ti).locals[i as usize];
                self.push(ti, v);
            }
            Instr::StoreLocal(i) => {
                let v = self.pop(ti)?;
                let f = self.frame(ti);
                if f.locals.len() <= i as usize {
                    f.locals.resize(i as usize + 1, Value::Int(0));
                }
                f.locals[i as usize] = v;
            }
            Instr::LoadGlobal { slot, site } => {
                self.emit_access(Action::Read {
                    t: tid,
                    x: pacer_trace::VarId::new(slot),
                    site,
                });
                self.maybe_gc(hooks);
                let v = self.globals[slot as usize];
                self.push(ti, v);
            }
            Instr::StoreGlobal { slot, site } => {
                let v = self.pop(ti)?;
                self.emit_access(Action::Write {
                    t: tid,
                    x: pacer_trace::VarId::new(slot),
                    site,
                });
                self.maybe_gc(hooks);
                self.globals[slot as usize] = v;
            }
            Instr::LoadElem { base, len, site } => {
                let idx = self.pop(ti)?.as_int()?;
                let slot = base + (idx.rem_euclid(len as i64)) as u32;
                self.emit_access(Action::Read {
                    t: tid,
                    x: pacer_trace::VarId::new(slot),
                    site,
                });
                self.maybe_gc(hooks);
                let v = self.globals[slot as usize];
                self.push(ti, v);
            }
            Instr::StoreElem { base, len, site } => {
                let v = self.pop(ti)?;
                let idx = self.pop(ti)?.as_int()?;
                let slot = base + (idx.rem_euclid(len as i64)) as u32;
                self.emit_access(Action::Write {
                    t: tid,
                    x: pacer_trace::VarId::new(slot),
                    site,
                });
                self.maybe_gc(hooks);
                self.globals[slot as usize] = v;
            }
            Instr::NewObject => {
                let obj = self.heap.alloc();
                self.maybe_gc(hooks);
                self.push(ti, Value::Ref(obj));
            }
            Instr::LoadField {
                field,
                site,
                instrumented,
            } => {
                let obj = match self.pop(ti)? {
                    Value::Ref(o) => o,
                    other => {
                        return Err(VmError::Type(format!("field read on non-object {other:?}")))
                    }
                };
                if instrumented {
                    let x = self.heap.field_var(obj, field);
                    self.emit_access(Action::Read { t: tid, x, site });
                    self.maybe_gc(hooks);
                } else {
                    self.elided += 1;
                }
                let v = self.heap.load_field(obj, field);
                self.push(ti, v);
            }
            Instr::StoreField {
                field,
                site,
                instrumented,
            } => {
                let v = self.pop(ti)?;
                let obj = match self.pop(ti)? {
                    Value::Ref(o) => o,
                    other => {
                        return Err(VmError::Type(format!(
                            "field write on non-object {other:?}"
                        )))
                    }
                };
                if instrumented {
                    let x = self.heap.field_var(obj, field);
                    self.emit_access(Action::Write { t: tid, x, site });
                } else {
                    self.elided += 1;
                }
                self.heap.store_field(obj, field, v);
                self.maybe_gc(hooks);
            }
            Instr::LoadVolatile(v) => {
                self.emit_sync(Action::VolRead {
                    t: tid,
                    v: VolatileId::new(v),
                });
                let value = self.volatiles[v as usize];
                self.push(ti, value);
            }
            Instr::StoreVolatile(v) => {
                let value = self.pop(ti)?;
                self.emit_sync(Action::VolWrite {
                    t: tid,
                    v: VolatileId::new(v),
                });
                self.volatiles[v as usize] = value;
            }
            Instr::Acquire(m) => {
                if self.lock_holders[m as usize].is_none() {
                    self.lock_holders[m as usize] = Some(ti);
                    self.emit_sync(Action::Acquire {
                        t: tid,
                        m: LockId::new(m),
                    });
                } else {
                    // Retry later: stay at this instruction.
                    self.frame(ti).pc = pc;
                    self.threads[ti as usize].state = ThreadState::BlockedLock(m);
                }
            }
            Instr::Release(m) => {
                debug_assert_eq!(self.lock_holders[m as usize], Some(ti));
                self.lock_holders[m as usize] = None;
                self.emit_sync(Action::Release {
                    t: tid,
                    m: LockId::new(m),
                });
            }
            Instr::WaitRelease(m) => {
                // First half of `wait m`: release the monitor and park.
                // The following Acquire instruction (always emitted by the
                // compiler) re-enters the monitor once notified.
                debug_assert_eq!(self.lock_holders[m as usize], Some(ti));
                self.lock_holders[m as usize] = None;
                self.emit_sync(Action::Release {
                    t: tid,
                    m: LockId::new(m),
                });
                self.wait_queues[m as usize].push(ti);
                self.threads[ti as usize].state = ThreadState::Waiting(m);
            }
            Instr::Notify { lock, all } => {
                // Wakes waiters; they contend on the monitor like Java's
                // notify. No happens-before edge beyond the monitor itself,
                // so no action is emitted.
                let queue = &mut self.wait_queues[lock as usize];
                let count = if all {
                    queue.len()
                } else {
                    usize::from(!queue.is_empty())
                };
                for _ in 0..count {
                    let waiter = queue.remove(0);
                    debug_assert!(matches!(
                        self.threads[waiter as usize].state,
                        ThreadState::Waiting(_)
                    ));
                    self.threads[waiter as usize].state = ThreadState::Runnable;
                }
            }
            Instr::Spawn { func, argc } => {
                let callee = &self.program.functions[func as usize];
                let mut locals = vec![Value::Int(0); callee.n_locals as usize];
                for i in (0..argc as usize).rev() {
                    locals[i] = self.pop(ti)?;
                }
                let child = self.threads.len() as u32;
                self.threads.push(SimThread {
                    frames: vec![Frame {
                        func,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    }],
                    state: ThreadState::Runnable,
                });
                let live = self
                    .threads
                    .iter()
                    .filter(|t| !matches!(t.state, ThreadState::Done(_)))
                    .count();
                self.max_live = self.max_live.max(live);
                self.emit_sync(Action::Fork {
                    t: tid,
                    u: ThreadId::new(child),
                });
                self.push(ti, Value::Thread(child));
            }
            Instr::Call { func, argc } => {
                let callee = &self.program.functions[func as usize];
                let mut locals = vec![Value::Int(0); callee.n_locals as usize];
                for i in (0..argc as usize).rev() {
                    locals[i] = self.pop(ti)?;
                }
                self.threads[ti as usize].frames.push(Frame {
                    func,
                    pc: 0,
                    locals,
                    stack: Vec::new(),
                });
            }
            Instr::JoinThread => {
                let handle = *self.frame(ti).stack.last().ok_or(VmError::StackUnderflow)?;
                let u = match handle {
                    Value::Thread(u) => u,
                    other => return Err(VmError::Type(format!("join of non-thread {other:?}"))),
                };
                if matches!(self.threads[u as usize].state, ThreadState::Done(_)) {
                    self.pop(ti)?;
                    self.emit_sync(Action::Join {
                        t: tid,
                        u: ThreadId::new(u),
                    });
                } else {
                    self.frame(ti).pc = pc;
                    self.threads[ti as usize].state = ThreadState::BlockedJoin(u);
                }
            }
            Instr::Jump(target) => self.frame(ti).pc = target as usize,
            Instr::JumpIfZero(target) => {
                let v = self.pop(ti)?;
                if !v.truthy() {
                    self.frame(ti).pc = target as usize;
                }
            }
            Instr::Bin(op) => {
                let b = self.pop(ti)?;
                let a = self.pop(ti)?;
                let result = self.binop(op, a, b)?;
                self.push(ti, result);
            }
            Instr::Neg => {
                let v = self.pop(ti)?.as_int()?;
                self.push(ti, Value::Int(v.wrapping_neg()));
            }
            Instr::Not => {
                let v = self.pop(ti)?;
                self.push(ti, Value::Int(i64::from(!v.truthy())));
            }
            Instr::Pop => {
                self.pop(ti)?;
            }
            Instr::Return => {
                let value = self.pop(ti)?;
                let thread = &mut self.threads[ti as usize];
                thread.frames.pop();
                if let Some(caller) = thread.frames.last_mut() {
                    caller.stack.push(value);
                } else {
                    thread.state = ThreadState::Done(value);
                }
            }
        }
        Ok(())
    }

    fn binop(&self, op: BinOp, a: Value, b: Value) -> Result<Value, VmError> {
        // Equality works on any same-kind values; everything else is
        // integer arithmetic.
        match op {
            BinOp::Eq => return Ok(Value::Int(i64::from(a == b))),
            BinOp::Ne => return Ok(Value::Int(i64::from(a != b))),
            _ => {}
        }
        let a = a.as_int()?;
        let b = b.as_int()?;
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
            BinOp::And => i64::from(a != 0 && b != 0),
            BinOp::Or => i64::from(a != 0 || b != 0),
            BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
        };
        Ok(Value::Int(v))
    }
}

/// `a.0/a.1 >= b.0/b.1` in exact integer arithmetic (u128-widened).
fn ratio_ge(a: (u64, u64), b: (u64, u64)) -> bool {
    u128::from(a.0) * u128::from(b.1) >= u128::from(b.0) * u128::from(a.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_core::PacerDetector;
    use pacer_fasttrack::FastTrackDetector;

    fn run_src(src: &str, seed: u64) -> (RunOutcome, FastTrackDetector) {
        let program = pacer_lang::parse(src).unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(seed);
        let outcome = Vm::run(&compiled, &mut det, &cfg).unwrap();
        (outcome, det)
    }

    const SPAWNY: &str = "
        shared x; lock m;
        fn worker() {
            let i = 0;
            while (i < 20) {
                sync m { x = x + 1; }
                i = i + 1;
            }
        }
        fn main() {
            let a = spawn worker();
            let b = spawn worker();
            join a; join b;
            return x;
        }
    ";

    fn compile_src(src: &str) -> CompiledProgram {
        pacer_lang::compile(&pacer_lang::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn injected_heap_oom_fires_on_budget() {
        // Allocates ~10 objects (~480 bytes), comfortably past the budget.
        let compiled = compile_src(
            "
            fn main() {
                let i = 0;
                while (i < 10) {
                    let o = new obj;
                    o.a = i;
                    i = i + 1;
                }
                return i;
            }
        ",
        );
        let faults = TrialFaults {
            heap_oom_budget: Some(64),
            ..TrialFaults::default()
        };
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(3).with_faults(faults);
        let err = Vm::run(&compiled, &mut det, &cfg).unwrap_err();
        assert_eq!(err, VmError::InjectedOom(64));
        assert!(err.to_string().starts_with(INJECTED_PREFIX));
    }

    #[test]
    fn injected_detector_panic_unwinds_with_marked_payload() {
        let compiled = compile_src(SPAWNY);
        let faults = TrialFaults {
            detector_panic_after: Some(5),
            ..TrialFaults::default()
        };
        let result = std::panic::catch_unwind(|| {
            let mut det = FastTrackDetector::new();
            let cfg = VmConfig::new(3).with_faults(faults);
            Vm::run(&compiled, &mut det, &cfg)
        });
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .expect("panic message is a formatted String");
        assert!(
            message.starts_with(INJECTED_PREFIX) && message.contains("detector panic"),
            "payload self-identifies: {message}"
        );
    }

    #[test]
    fn sched_storm_forces_short_quanta_and_is_counted() {
        let compiled = compile_src(SPAWNY);
        let faults = TrialFaults {
            sched_storm: Some(StormShape { period: 4, len: 2 }),
            ..TrialFaults::default()
        };
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(3).with_faults(faults);
        let out = Vm::run(&compiled, &mut det, &cfg).unwrap();
        assert_eq!(
            out.main_result,
            Value::Int(40),
            "storms change timing, not results"
        );
        assert!(out.fault_storm_turns > 0, "storm windows were entered");
    }

    #[test]
    fn unarmed_faults_change_nothing() {
        let compiled = compile_src(SPAWNY);
        let mut det = FastTrackDetector::new();
        let base = Vm::run(&compiled, &mut det, &VmConfig::new(9)).unwrap();
        let mut det2 = FastTrackDetector::new();
        let cfg = VmConfig::new(9).with_faults(TrialFaults::default());
        let armed = Vm::run(&compiled, &mut det2, &cfg).unwrap();
        assert_eq!(base.steps, armed.steps);
        assert_eq!(base.main_result, armed.main_result);
        assert_eq!(armed.fault_storm_turns, 0);
    }

    /// Allocation-heavy source: drives many nursery GCs (governor
    /// boundaries) while racing on a shared counter.
    const ALLOCY: &str = "
        shared x;
        fn main() {
            let i = 0;
            while (i < 4000) { let o = new obj; x = x + 1; i = i + 1; }
            return x;
        }
    ";

    #[test]
    fn governed_heap_budget_degrades_instead_of_injected_oom() {
        let compiled = compile_src(ALLOCY);
        let faults = TrialFaults {
            heap_oom_budget: Some(16 * 1024),
            ..TrialFaults::default()
        };
        // Ungoverned: the injected budget is a hard per-step failure.
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(11)
            .with_sampling_rate(0.5)
            .with_faults(faults);
        assert_eq!(
            Vm::run(&compiled, &mut det, &cfg).unwrap_err(),
            VmError::InjectedOom(16 * 1024)
        );
        // Governed (deadline-armed so the governor is constructed): the
        // budget becomes governor-managed. Total allocation only grows, so
        // the ladder walks to the floor and the run cancels cleanly.
        let mut gov_cfg = GovernorConfig::for_rate(0.5);
        gov_cfg.deadline_events = Some(u64::MAX);
        let mut det2 = FastTrackDetector::new();
        let cfg2 = VmConfig::new(11)
            .with_sampling_rate(0.5)
            .with_faults(faults)
            .with_governor(gov_cfg);
        let out = Vm::run(&compiled, &mut det2, &cfg2).unwrap();
        let summary = out.governor.expect("governor was armed");
        assert!(summary.degraded());
        assert_eq!(summary.cancelled, Some(pacer_governor::BudgetKind::Mem));
        assert!(summary.steps_down > 0, "walked the ladder before the floor");
        assert!(summary.breaches >= 1);
    }

    #[test]
    fn deadline_budget_cancels_cleanly() {
        let compiled = compile_src(ALLOCY);
        let mut gov_cfg = GovernorConfig::for_rate(0.5);
        gov_cfg.deadline_events = Some(5_000);
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(7)
            .with_sampling_rate(0.5)
            .with_governor(gov_cfg);
        let out = Vm::run(&compiled, &mut det, &cfg).unwrap();
        let summary = out.governor.expect("governor was armed");
        assert_eq!(
            summary.cancelled,
            Some(pacer_governor::BudgetKind::Deadline)
        );
        assert!(out.steps < 40_000, "cancelled well before the full run");
    }

    #[test]
    fn unarmed_governor_config_is_normalized_away() {
        let compiled = compile_src(ALLOCY);
        let mut det = FastTrackDetector::new();
        let base_cfg = VmConfig::new(5).with_sampling_rate(0.3);
        let base = Vm::run(&compiled, &mut det, &base_cfg).unwrap();
        // No budgets set: with_governor() stores None and nothing changes.
        let mut det2 = FastTrackDetector::new();
        let cfg = VmConfig::new(5)
            .with_sampling_rate(0.3)
            .with_governor(GovernorConfig::for_rate(0.3));
        let governed = Vm::run(&compiled, &mut det2, &cfg).unwrap();
        assert!(governed.governor.is_none());
        assert_eq!(base.steps, governed.steps);
        assert_eq!(base.main_result, governed.main_result);
        assert_eq!(base.gc_count, governed.gc_count);
    }

    #[test]
    fn governed_runs_are_deterministic() {
        let compiled = compile_src(ALLOCY);
        let run = || {
            let mut gov_cfg = GovernorConfig::for_rate(0.5);
            gov_cfg.deadline_events = Some(20_000);
            let mut det = FastTrackDetector::new();
            let cfg = VmConfig::new(13)
                .with_sampling_rate(0.5)
                .with_governor(gov_cfg);
            let out = Vm::run(&compiled, &mut det, &cfg).unwrap();
            (out.steps, out.gc_count, out.governor.unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn governor_signals_reach_the_hook() {
        let compiled = compile_src(ALLOCY);
        let mut gov_cfg = GovernorConfig::for_rate(0.5);
        // A tiny metadata budget: PollMemBytes drives immediate pressure.
        gov_cfg.mem_budget_bytes = Some(64);
        let mut det = FastTrackDetector::new();
        let cfg = VmConfig::new(3)
            .with_sampling_rate(0.5)
            .with_governor(gov_cfg);
        let mut polls = 0u64;
        let mut rate_changes = Vec::new();
        let out = Vm::run_governed(
            &compiled,
            &mut det,
            &cfg,
            |_, _| {},
            |_, sig| match sig {
                GovernorSignal::PollMemBytes => {
                    polls += 1;
                    1_000 // always over the 64-byte budget
                }
                GovernorSignal::RateChanged(m) => {
                    rate_changes.push(m);
                    0
                }
            },
        )
        .unwrap();
        assert!(polls > 0, "mem budget was polled at boundaries");
        let expected: Vec<u32> = vec![250_000, 125_000, 62_500];
        assert_eq!(rate_changes, expected, "walked the default ladder down");
        let summary = out.governor.unwrap();
        assert_eq!(summary.cancelled, Some(pacer_governor::BudgetKind::Mem));
        assert_eq!(summary.final_rate_millionths, 62_500);
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (out, _) = run_src(
            "
            fn main() {
                let s = 0;
                let i = 1;
                while (i <= 10) {
                    if (i % 2 == 0) { s = s + i; }
                    i = i + 1;
                }
                return s;
            }
        ",
            1,
        );
        assert_eq!(out.main_result, Value::Int(30), "2+4+6+8+10");
    }

    #[test]
    fn calls_return_values() {
        let (out, _) = run_src(
            "
            fn add(a, b) { return a + b; }
            fn main() { return add(add(1, 2), 4); }
        ",
            1,
        );
        assert_eq!(out.main_result, Value::Int(7));
    }

    #[test]
    fn objects_store_fields() {
        let (out, _) = run_src(
            "
            fn main() {
                let o = new obj;
                o.a = 5;
                o.b = o.a * 2;
                return o.b;
            }
        ",
            1,
        );
        assert_eq!(out.main_result, Value::Int(10));
        assert_eq!(out.elided_accesses, 4, "all field accesses elided");
        assert_eq!(out.stats.accesses(), 0);
    }

    #[test]
    fn spawn_join_and_shared_counter_with_lock() {
        let (out, det) = run_src(
            "
            shared x; lock m;
            fn worker() {
                let i = 0;
                while (i < 20) {
                    sync m { x = x + 1; }
                    i = i + 1;
                }
            }
            fn main() {
                let a = spawn worker();
                let b = spawn worker();
                join a; join b;
                return x;
            }
        ",
            42,
        );
        assert_eq!(out.main_result, Value::Int(40), "no lost updates");
        assert!(det.races().is_empty(), "guarded counter is race-free");
        assert_eq!(out.threads_started, 3);
        assert_eq!(out.max_live_threads, 3);
    }

    #[test]
    fn unguarded_counter_races_and_loses_updates_sometimes() {
        let mut any_race = false;
        for seed in 0..8 {
            let (_, det) = run_src(
                "
                shared x;
                fn worker() {
                    let i = 0;
                    while (i < 30) { x = x + 1; i = i + 1; }
                }
                fn main() {
                    let a = spawn worker();
                    let b = spawn worker();
                    join a; join b;
                }
            ",
                seed,
            );
            any_race |= !det.races().is_empty();
        }
        assert!(any_race, "unguarded increments must race under FASTTRACK");
    }

    #[test]
    fn volatile_flag_publishes() {
        let (out, det) = run_src(
            "
            shared data; volatile ready;
            fn producer() { data = 99; ready = 1; }
            fn consumer() {
                while (ready == 0) { }
                return data;
            }
            fn main() {
                let p = spawn producer();
                let c = spawn consumer();
                join p; join c;
            }
        ",
            7,
        );
        assert!(det.races().is_empty(), "volatile handoff orders accesses");
        assert!(out.stats.vol_reads > 0);
        assert_eq!(out.stats.vol_writes, 1);
    }

    #[test]
    fn deadlock_is_detected() {
        let program = pacer_lang::parse(
            "
            lock a; lock b; volatile turn;
            fn one() { sync a { turn = 1; while (turn != 2) {} sync b {} } }
            fn two() { sync b { while (turn != 1) {} turn = 2; sync a {} } }
            fn main() {
                let x = spawn one();
                let y = spawn two();
                join x; join y;
            }
        ",
        )
        .unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = NullDetector;
        // The two threads each hold one lock and spin for the other. The
        // volatile handshake forces the overlap under every schedule; the
        // spin loops make progress (so it is the step limit or the lock
        // blocking that ends the run).
        let cfg = VmConfig::new(3).with_max_steps(2_000_000);
        let err = Vm::run(&compiled, &mut det, &cfg).unwrap_err();
        assert!(
            matches!(err, VmError::Deadlock | VmError::StepLimit(_)),
            "got {err}"
        );
    }

    #[test]
    fn locks_are_not_reentrant() {
        // Java monitors are reentrant; this simulated runtime's locks are
        // not (trace well-formedness forbids double acquire), so nested
        // sync on the same lock self-deadlocks — documented behavior.
        let program = pacer_lang::parse("lock m; fn main() { sync m { sync m { } } }").unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = NullDetector;
        assert_eq!(
            Vm::run(&compiled, &mut det, &VmConfig::new(0)).unwrap_err(),
            VmError::Deadlock
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let program = pacer_lang::parse("fn main() { while (1) { } }").unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = NullDetector;
        let cfg = VmConfig::new(0).with_max_steps(10_000);
        assert!(matches!(
            Vm::run(&compiled, &mut det, &cfg),
            Err(VmError::StepLimit(_))
        ));
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let program = pacer_lang::parse("shared x; fn main() { x = 1 / x; }").unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = NullDetector;
        assert_eq!(
            Vm::run(&compiled, &mut det, &VmConfig::new(0)).unwrap_err(),
            VmError::DivideByZero
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let src = "
            shared x;
            fn w() { let i = 0; while (i < 50) { x = x + 1; i = i + 1; } }
            fn main() { let a = spawn w(); let b = spawn w(); join a; join b; return x; }
        ";
        let (o1, d1) = run_src(src, 99);
        let (o2, d2) = run_src(src, 99);
        assert_eq!(o1.main_result, o2.main_result);
        assert_eq!(o1.steps, o2.steps);
        assert_eq!(d1.races().len(), d2.races().len());
    }

    #[test]
    fn different_seeds_interleave_differently() {
        let src = "
            shared x;
            fn w() { let i = 0; while (i < 50) { x = x + 1; i = i + 1; } }
            fn main() { let a = spawn w(); let b = spawn w(); join a; join b; return x; }
        ";
        let results: std::collections::HashSet<i64> = (0..10)
            .map(|seed| match run_src(src, seed).0.main_result {
                Value::Int(v) => v,
                _ => -1,
            })
            .collect();
        assert!(results.len() > 1, "lost updates vary across schedules");
    }

    #[test]
    fn gc_fires_and_samples_space() {
        let program = pacer_lang::parse(
            "
            fn main() {
                let i = 0;
                while (i < 3000) { let o = new obj; o.f = i; i = i + 1; }
            }
        ",
        )
        .unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = NullDetector;
        let cfg = VmConfig::new(1).with_nursery_bytes(4 * 1024);
        let out = Vm::run(&compiled, &mut det, &cfg).unwrap();
        assert!(out.gc_count > 10, "allocation drives nursery GCs");
        assert!(out.full_gc_count >= 1);
        assert_eq!(out.space_samples.len(), out.full_gc_count as usize);
        assert!(out.space_samples.last().unwrap().heap_bytes > 0);
    }

    #[test]
    fn sampling_markers_reach_the_detector() {
        let program = pacer_lang::parse(
            "
            shared x;
            fn main() {
                let i = 0;
                while (i < 4000) { let o = new obj; x = x + 1; i = i + 1; }
            }
        ",
        )
        .unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        let mut det = PacerDetector::new();
        let cfg = VmConfig::new(5)
            .with_sampling_rate(0.5)
            .with_nursery_bytes(2 * 1024);
        let out = Vm::run(&compiled, &mut det, &cfg).unwrap();
        assert!(det.stats().sample_periods >= 1, "sampling toggled at GCs");
        let eff = det.stats().effective_rate().unwrap();
        assert!(
            (0.2..0.9).contains(&eff),
            "effective rate {eff} should be near 0.5"
        );
        assert!(out.gc_count > 20);
    }

    #[test]
    fn instrument_off_emits_nothing() {
        let program =
            pacer_lang::parse("shared x; lock m; fn main() { sync m { x = 1; } }").unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        struct Panicker;
        impl Detector for Panicker {
            fn name(&self) -> String {
                "panicker".into()
            }
            fn on_action(&mut self, a: &Action) {
                panic!("detector called in Off mode: {a}");
            }
            fn races(&self) -> &[RaceReport] {
                &[]
            }
        }
        let cfg = VmConfig::new(0).with_instrument(InstrumentMode::Off);
        let out = Vm::run(&compiled, &mut Panicker, &cfg).unwrap();
        // Ops are still counted for comparability.
        assert_eq!(out.stats.writes, 1);
        assert_eq!(out.stats.acquires, 1);
    }

    #[test]
    fn sync_only_forwards_sync_but_not_accesses() {
        let program =
            pacer_lang::parse("shared x; lock m; fn main() { sync m { x = 1; } }").unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        #[derive(Default)]
        struct Counter {
            sync: u64,
            access: u64,
        }
        impl Detector for Counter {
            fn name(&self) -> String {
                "counter".into()
            }
            fn on_action(&mut self, a: &Action) {
                if a.is_sync() {
                    self.sync += 1;
                } else if a.is_access() {
                    self.access += 1;
                }
            }
            fn races(&self) -> &[RaceReport] {
                &[]
            }
        }
        let mut c = Counter::default();
        let cfg = VmConfig::new(0).with_instrument(InstrumentMode::SyncOnly);
        Vm::run(&compiled, &mut c, &cfg).unwrap();
        assert_eq!(c.sync, 2);
        assert_eq!(c.access, 0);
    }

    #[test]
    fn array_indices_wrap() {
        let (out, _) = run_src(
            "
            shared a[4];
            fn main() { a[7] = 9; return a[3]; }
        ",
            0,
        );
        assert_eq!(out.main_result, Value::Int(9), "7 mod 4 == 3");
    }

    #[test]
    fn vm_trace_is_well_formed_and_matches_oracle_precision() {
        use pacer_trace::{HbOracle, Trace};

        // Record the emitted actions with a recording detector, validate
        // the trace, and check FASTTRACK's reports against the oracle.
        #[derive(Default)]
        struct Recorder {
            trace: Trace,
        }
        impl Detector for Recorder {
            fn name(&self) -> String {
                "recorder".into()
            }
            fn on_action(&mut self, a: &Action) {
                self.trace.push(*a);
            }
            fn races(&self) -> &[RaceReport] {
                &[]
            }
        }
        let program = pacer_lang::parse(
            "
            shared x; shared y; lock m;
            fn w(k) {
                let i = 0;
                while (i < 10) {
                    sync m { x = x + k; }
                    y = y + 1;
                    i = i + 1;
                }
            }
            fn main() {
                let a = spawn w(1);
                let b = spawn w(2);
                join a; join b;
            }
        ",
        )
        .unwrap();
        let compiled = pacer_lang::compile(&program).unwrap();
        for seed in 0..5 {
            let mut rec = Recorder::default();
            Vm::run(&compiled, &mut rec, &VmConfig::new(seed)).unwrap();
            rec.trace.validate().unwrap();
            let oracle = HbOracle::analyze(&rec.trace);
            let mut ft = FastTrackDetector::new();
            ft.run(&rec.trace);
            let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();
            for r in ft.races() {
                assert!(truth.contains(&r.distinct_key()));
            }
        }
    }
}
