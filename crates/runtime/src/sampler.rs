//! The GC-boundary sampling controller with bias correction (§4).

use pacer_prng::Rng;

/// Decides, at the end of each (nursery) garbage collection, whether the
/// next inter-collection window is a sampling period.
///
/// Naively enabling sampling with probability `r` *undersamples*: sampling
/// windows allocate race-detection metadata, so collections arrive sooner
/// and less program work happens inside them. Following §4, the controller
/// measures program work in **synchronization operations** (which are
/// independent of sampling), estimates the average work per sampled and
/// per unsampled window, and adjusts the enable probability so the
/// *work-weighted* fraction of sampled execution converges to the target
/// rate. Table 1 evaluates exactly this mechanism.
///
/// # Examples
///
/// ```
/// use pacer_runtime::GcSampler;
///
/// let mut s = GcSampler::new(0.25, 7);
/// let mut sampled_windows = 0;
/// for _ in 0..1000 {
///     if s.on_gc() {
///         sampled_windows += 1;
///     }
///     // …window executes; the VM reports sync ops via count_sync()…
/// }
/// // With no feedback the probability stays at the target rate.
/// assert!((150..350).contains(&sampled_windows));
/// ```
#[derive(Clone, Debug)]
pub struct GcSampler {
    target: f64,
    rng: Rng,
    sampling: bool,
    /// Sync ops observed in sampled / unsampled windows.
    sampled_sync: u64,
    unsampled_sync: u64,
    /// Completed windows of each kind.
    sampled_windows: u64,
    unsampled_windows: u64,
}

impl GcSampler {
    /// Creates a controller targeting sampling rate `rate ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        GcSampler {
            target: rate,
            rng: Rng::seed_from_u64(seed),
            sampling: false,
            sampled_sync: 0,
            unsampled_sync: 0,
            sampled_windows: 0,
            unsampled_windows: 0,
        }
    }

    /// The target sampling rate.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Retargets the controller to a new rate `rate ∈ [0, 1]` — the
    /// resource governor calls this at GC boundaries when stepping the
    /// rate along its ladder. Window statistics are kept: the bias
    /// correction keeps converging on the (new) work-weighted target.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_target(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.target = rate;
    }

    /// Whether the current window is a sampling period.
    pub fn is_sampling(&self) -> bool {
        self.sampling
    }

    /// Records one synchronization operation in the current window.
    pub fn count_sync(&mut self) {
        if self.sampling {
            self.sampled_sync += 1;
        } else {
            self.unsampled_sync += 1;
        }
    }

    /// Called at the end of a collection: closes the current window and
    /// draws the next one. Returns the new sampling state.
    pub fn on_gc(&mut self) -> bool {
        if self.sampling {
            self.sampled_windows += 1;
        } else {
            self.unsampled_windows += 1;
        }
        let p = self.adjusted_probability();
        self.sampling = p > 0.0 && self.rng.gen_bool(p.min(1.0));
        self.sampling
    }

    /// The bias-corrected enable probability: solves
    /// `p·w_s / (p·w_s + (1−p)·w_n) = r` for `p`, where `w_s`/`w_n` are
    /// the measured mean sync-ops per sampled/unsampled window.
    fn adjusted_probability(&self) -> f64 {
        let r = self.target;
        if r <= 0.0 {
            return 0.0;
        }
        if r >= 1.0 {
            return 1.0;
        }
        let ws = if self.sampled_windows > 0 {
            self.sampled_sync as f64 / self.sampled_windows as f64
        } else {
            return r; // no observations yet: start at the target
        };
        let wn = if self.unsampled_windows > 0 {
            self.unsampled_sync as f64 / self.unsampled_windows as f64
        } else {
            return r;
        };
        if ws <= 0.0 || wn <= 0.0 {
            return r;
        }
        (r * wn) / (ws * (1.0 - r) + r * wn)
    }

    /// The work-weighted effective rate observed so far (sync-op measure).
    ///
    /// Returns `None` before any sync op.
    pub fn observed_rate(&self) -> Option<f64> {
        let total = self.sampled_sync + self.unsampled_sync;
        (total > 0).then(|| self.sampled_sync as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_samples() {
        let mut s = GcSampler::new(0.0, 1);
        assert!((0..100).all(|_| !s.on_gc()));
    }

    #[test]
    fn full_rate_always_samples() {
        let mut s = GcSampler::new(1.0, 1);
        assert!((0..100).all(|_| s.on_gc()));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn out_of_range_rate_panics() {
        GcSampler::new(1.5, 0);
    }

    #[test]
    fn uncorrected_probability_matches_target() {
        // Equal work per window: correction is a no-op.
        let mut s = GcSampler::new(0.10, 3);
        let mut sampled = 0;
        for _ in 0..20_000 {
            if s.on_gc() {
                sampled += 1;
            }
            for _ in 0..50 {
                s.count_sync();
            }
        }
        let rate = sampled as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn correction_compensates_short_sampled_windows() {
        // Sampled windows see only 20% of the work of unsampled windows
        // (metadata allocation shortens them). Without correction the
        // work-weighted rate would be ≈ r/5.
        let mut s = GcSampler::new(0.10, 5);
        for _ in 0..50_000 {
            let sampling = s.on_gc();
            let work = if sampling { 10 } else { 50 };
            for _ in 0..work {
                s.count_sync();
            }
        }
        let observed = s.observed_rate().unwrap();
        assert!(
            (0.08..0.13).contains(&observed),
            "work-weighted rate {observed} should converge to 0.10"
        );
    }

    #[test]
    fn set_target_retargets_future_windows() {
        let mut s = GcSampler::new(1.0, 9);
        assert!(s.on_gc());
        s.set_target(0.0);
        assert_eq!(s.target(), 0.0);
        assert!((0..100).all(|_| !s.on_gc()));
        s.set_target(1.0);
        assert!((0..100).all(|_| s.on_gc()));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn set_target_rejects_out_of_range() {
        GcSampler::new(0.5, 0).set_target(1.5);
    }

    #[test]
    fn observed_rate_none_without_work() {
        let s = GcSampler::new(0.5, 0);
        assert_eq!(s.observed_rate(), None);
        assert_eq!(s.target(), 0.5);
        assert!(!s.is_sampling());
    }
}
