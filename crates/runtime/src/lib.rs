//! Simulated runtime: a virtual machine with a seeded preemptive
//! scheduler, an allocating heap with nursery collections, and the paper's
//! GC-boundary sampling controller.
//!
//! The PACER implementation lives inside Jikes RVM: instrumentation calls
//! the analysis at synchronization operations and (potentially) shared
//! reads/writes, and "the implementation turns sampling on and off at the
//! end of garbage collections … with a probability of r via pseudo-random
//! number generation", correcting for the sampling bias introduced by
//! metadata allocation by "measuring program work in terms of
//! synchronization operations" (§4). This crate reproduces that substrate
//! for programs compiled by `pacer-lang`:
//!
//! * [`Vm`] executes a [`CompiledProgram`](pacer_lang::ir::CompiledProgram)
//!   under a seeded, preemptive interleaving scheduler, emitting
//!   [`Action`](pacer_trace::Action)s to any detector;
//! * [`Heap`] models the object store — two header words per object (§4's
//!   metadata words), an allocation clock, nursery collections every
//!   `nursery_bytes` of allocation, and periodic full-heap collections for
//!   space measurements (Figure 10);
//! * [`GcSampler`] toggles global sampling periods at collection
//!   boundaries with the paper's bias correction (Table 1).
//!
//! # Examples
//!
//! ```
//! use pacer_core::PacerDetector;
//! use pacer_runtime::{InstrumentMode, Vm, VmConfig};
//! use pacer_trace::Detector;
//!
//! let program = pacer_lang::parse(
//!     "
//!     shared x;
//!     fn worker() { x = x + 1; }
//!     fn main() {
//!         let a = spawn worker();
//!         let b = spawn worker();
//!         join a; join b;
//!     }
//! ",
//! )?;
//! let compiled = pacer_lang::compile(&program)?;
//! let mut detector = PacerDetector::new();
//! let config = VmConfig::new(7).with_sampling_rate(1.0);
//! let outcome = Vm::run(&compiled, &mut detector, &config)?;
//! assert!(outcome.steps > 0);
//! // x = x + 1 unsynchronized from two threads: racy under most schedules.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap;
mod sampler;
mod vm;

pub use heap::{Heap, ObjId, SpaceSample, FIELD_BYTES, OBJECT_BYTES};
pub use sampler::GcSampler;
pub use vm::{
    GovernorSignal, InstrumentMode, NullDetector, RunOutcome, Value, Vm, VmConfig, VmError,
};
