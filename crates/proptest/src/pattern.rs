//! Generation of strings from the regex-like literals the property tests
//! use as strategies (`"[a-z][a-z0-9_]{0,6}x"`, `"\\PC*"`).
//!
//! This is a generator, not a matcher: it parses the tiny regex subset
//! below and draws a random member of the language.
//!
//! * literal characters
//! * character classes `[...]` with single chars and `a-z` ranges
//! * `\PC` — any printable character (everything outside Unicode
//!   category C, approximated as printable ASCII plus a few multibyte
//!   code points to keep UTF-8 handling honest)
//! * `\d`, `\w`, `\s` shorthand classes; `\\` and other escapes literal
//! * quantifiers `*` (0..=16), `+` (1..=16), `?`, `{m}`, `{m,n}`

use crate::TestRng;

/// One parsed atom: a set of candidate characters to draw from.
enum Atom {
    Literal(char),
    Choice(Vec<CharRange>),
    Printable,
}

/// An inclusive character range within a class.
struct CharRange {
    lo: char,
    hi: char,
}

/// Draws one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax this subset does not cover — a property test with an
/// unsupported pattern should fail loudly, not silently generate garbage.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => parse_class(pattern, &mut chars),
            '\\' => parse_escape(pattern, &mut chars),
            '(' | ')' | '|' => {
                panic!("unsupported regex construct {c:?} in strategy pattern {pattern:?}")
            }
            '.' => Atom::Printable,
            _ => Atom::Literal(c),
        };
        let (min, max) = parse_quantifier(pattern, &mut chars);
        let span = (max - min + 1) as u64;
        let count = min + rng.bounded_u64(span) as usize;
        for _ in 0..count {
            out.push(draw(&atom, rng));
        }
    }
    out
}

fn parse_class(pattern: &str, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in strategy pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                ranges.push(CharRange { lo: esc, hi: esc });
            }
            _ => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling range in {pattern:?}"));
                    assert!(hi != ']', "dangling range in strategy pattern {pattern:?}");
                    assert!(c <= hi, "inverted range {c}-{hi} in {pattern:?}");
                    ranges.push(CharRange { lo: c, hi });
                } else {
                    ranges.push(CharRange { lo: c, hi: c });
                }
            }
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty class in strategy pattern {pattern:?}"
    );
    Atom::Choice(ranges)
}

fn parse_escape(pattern: &str, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let c = chars
        .next()
        .unwrap_or_else(|| panic!("dangling escape in strategy pattern {pattern:?}"));
    match c {
        'P' | 'p' => {
            // `\PC` (or `\p{C}` in long form, unused here): proptest's
            // idiom for "any printable char".
            let class = chars
                .next()
                .unwrap_or_else(|| panic!("dangling \\P in {pattern:?}"));
            assert!(
                class == 'C',
                "only \\PC is supported, got \\P{class} in {pattern:?}"
            );
            Atom::Printable
        }
        'd' => Atom::Choice(vec![CharRange { lo: '0', hi: '9' }]),
        'w' => Atom::Choice(vec![
            CharRange { lo: 'a', hi: 'z' },
            CharRange { lo: 'A', hi: 'Z' },
            CharRange { lo: '0', hi: '9' },
            CharRange { lo: '_', hi: '_' },
        ]),
        's' => Atom::Choice(vec![
            CharRange { lo: ' ', hi: ' ' },
            CharRange { lo: '\t', hi: '\t' },
        ]),
        _ => Atom::Literal(c),
    }
}

/// Parses an optional quantifier after an atom, returning the inclusive
/// repetition bounds (1..=1 when absent).
fn parse_quantifier(
    pattern: &str,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, 16)
        }
        Some('+') => {
            chars.next();
            (1, 16)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated quantifier in strategy pattern {pattern:?}"),
                }
            }
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in {pattern:?}"))
            };
            match spec.split_once(',') {
                Some((m, n)) => {
                    let (m, n) = (parse(m), parse(n));
                    assert!(m <= n, "inverted quantifier {{{spec}}} in {pattern:?}");
                    (m, n)
                }
                None => {
                    let m = parse(&spec);
                    (m, m)
                }
            }
        }
        _ => (1, 1),
    }
}

fn draw(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Choice(ranges) => {
            // Weight by range width so `[a-z0]` is not half zeros.
            let total: u64 = ranges.iter().map(range_width).sum();
            let mut pick = rng.bounded_u64(total);
            for r in ranges {
                let w = range_width(r);
                if pick < w {
                    return char::from_u32(r.lo as u32 + pick as u32)
                        .expect("class ranges stay within valid scalar values");
                }
                pick -= w;
            }
            unreachable!("pick is bounded by the total width")
        }
        Atom::Printable => {
            // Mostly printable ASCII, with occasional multibyte code
            // points so consumers exercise real UTF-8 boundaries.
            const EXOTIC: [char; 8] = ['é', 'λ', 'ß', '∀', '中', '🦀', 'Ω', 'ñ'];
            if rng.bounded_u64(8) == 0 {
                EXOTIC[rng.bounded_u64(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.bounded_u64(0x5F) as u32).expect("printable ASCII range")
            }
        }
    }
}

fn range_width(r: &CharRange) -> u64 {
    (r.hi as u32 - r.lo as u32 + 1) as u64
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::TestRng;

    #[test]
    fn identifier_pattern_matches_shape() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..500 {
            let s = generate("[a-z][a-z0-9_]{0,6}x", &mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!((2..=8).contains(&chars.len()), "{s:?}");
            assert!(chars[0].is_ascii_lowercase(), "{s:?}");
            assert_eq!(*chars.last().unwrap(), 'x', "{s:?}");
            for c in &chars[1..chars.len() - 1] {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_star_is_printable_and_varies() {
        let mut rng = TestRng::seed_from_u64(12);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = generate("\\PC*", &mut rng);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            lens.insert(s.chars().count());
        }
        assert!(lens.len() > 4, "lengths should vary: {lens:?}");
    }

    #[test]
    fn exact_and_bounded_quantifiers() {
        let mut rng = TestRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(generate("a{3}", &mut rng), "aaa");
            let s = generate("[01]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c == '0' || c == '1'));
        }
    }

    #[test]
    fn literals_and_escapes_pass_through() {
        let mut rng = TestRng::seed_from_u64(14);
        assert_eq!(generate("abc_1", &mut rng), "abc_1");
        assert_eq!(generate("\\\\", &mut rng), "\\");
        let d = generate("\\d", &mut rng);
        assert!(d.chars().all(|c| c.is_ascii_digit()));
    }
}
