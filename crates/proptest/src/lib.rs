//! An in-tree, fully offline property-testing shim exposing the subset of
//! the `proptest` crate's API that this workspace's property tests use.
//!
//! The workspace builds with zero external dependencies, so the real
//! `proptest` crate cannot be a dev-dependency. Rather than leave the
//! `#[cfg(feature = "proptest")]`-gated property tests dead code, this
//! crate re-implements the API surface they consume — [`Strategy`] with
//! `prop_map`/`prop_recursive`, [`BoxedStrategy`], [`prop_oneof!`],
//! [`Just`], range and tuple strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::bool::ANY`, [`any`], regex-literal string
//! strategies, [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] macros — on top of the workspace's own
//! [`pacer_prng`] generator. The consumer crates depend on it under the
//! alias `proptest`, so their test sources read exactly as they would
//! against the real crate.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated values, the
//!   case seed, and a ready-to-paste regression line instead.
//! * **Deterministic runs.** Case seeds derive from the test name and
//!   case index, never from the clock, so CI failures always reproduce.
//! * **Regression replay by seed.** Each `cc` entry in a sibling
//!   `*.proptest-regressions` file is replayed before any novel cases:
//!   entries written by this shim (16 hex digits) replay their exact
//!   seed, while entries inherited from the real proptest (64-digit
//!   tokens) are hashed into a deterministic seed so the committed file
//!   still drives executed cases.
//! * `ProptestConfig::default()` runs 64 cases (the real crate runs 256);
//!   individual tests override it with `with_cases` as usual.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // Under `#[cfg(test)]` this would carry `#[test]`.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::rc::Rc;

pub use pacer_prng::Rng as TestRng;

mod pattern;
mod runner;

pub use runner::{run_property_test, ProptestConfig};

// ---------------------------------------------------------------------------
// The Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type from a seeded RNG.
///
/// The mirror of proptest's `Strategy`, minus shrinking: `generate` draws
/// one value. Strategies are cheap `Clone`s so they can be reused across
/// branches of [`prop_oneof!`] and levels of [`prop_recursive`].
///
/// [`prop_recursive`]: Strategy::prop_recursive
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { base: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps
    /// an inner strategy into one more level of structure, applied up to
    /// `depth` times. The `_desired_size` and `_expected_branch_size`
    /// hints exist for signature compatibility and are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mixing the leaf back in at every level keeps expected
            // depth well below the bound, like the real crate.
            current = Union::new(vec![leaf.clone(), f(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheap reference-counted handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted [`Strategy`] handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between several strategies producing the same type —
/// the engine behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.bounded_u64(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniform choice among strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                // Mild edge bias: boundary values find off-by-one bugs.
                match rng.bounded_u64(16) {
                    0 => self.start,
                    1 => (hi - 1) as $ty,
                    _ => (lo + rng.bounded_u64((hi - lo) as u64) as i128) as $ty,
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                match rng.bounded_u64(16) {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ if span == u64::MAX => rng.next_u64() as $ty,
                    _ => (lo + rng.bounded_u64(span + 1) as i128) as $ty,
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.bounded_u64(16) == 0 {
            self.start
        } else {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        match rng.bounded_u64(16) {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.next_f64(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Collections, options, booleans
// ---------------------------------------------------------------------------

/// Strategies over collections (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// The result of [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.bounded_u64(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option` (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` half the time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bounded_u64(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategies over `bool` (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bounded_u64(2) == 1
        }
    }
}

// ---------------------------------------------------------------------------
// `any` / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy over the whole domain of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full domain).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = std::ops::RangeInclusive<$ty>;
            fn arbitrary() -> Self::Strategy {
                <$ty>::MIN..=<$ty>::MAX
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    type Strategy = bool::BoolAny;
    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-like literals
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Assertion macros
// ---------------------------------------------------------------------------

/// Like `assert!`, but fails the current property case with a message
/// instead of panicking, so the harness can report the generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Like `assert_eq!`, for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right),
                    ::std::format!($($fmt)+), l, r
                );
            }
        }
    };
}

/// Like `assert_ne!`, for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

// ---------------------------------------------------------------------------
// The proptest! macro
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that replays the sibling `*.proptest-regressions`
/// entries and then runs `ProptestConfig::cases` seeded novel cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property_test(
                    config,
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                        let __case = ::std::format!(
                            concat!($(stringify!($arg), " = {:?}, "),+),
                            $(&$arg),+
                        );
                        let __outcome: ::std::result::Result<(), ::std::string::String> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (__case, __outcome)
                    },
                );
            }
        )*
    };
}

/// Everything the property tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`,
    /// `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let a = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&a));
            let b = (-100i64..100).generate(&mut r);
            assert!((-100..100).contains(&b));
            let c = (0.0f64..=1.0).generate(&mut r);
            assert!((0.0..=1.0).contains(&c));
            let d = (2usize..6).generate(&mut r);
            assert!((2..6).contains(&d));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_endpoints() {
        let mut r = rng();
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match (0u32..=3).generate(&mut r) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "edge bias should surface both endpoints");
    }

    #[test]
    fn oneof_covers_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut r) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_recursive_and_collections_compose() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10, "leaf payload out of range");
                    1
                }
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut r)));
        }
        assert!(max_depth > 1, "recursion should nest");
        assert!(max_depth <= 4, "depth bound respected, saw {max_depth}");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (
            crate::collection::vec(0u64..50, 0..12),
            crate::option::of("[a-z]{1,5}"),
            crate::bool::ANY,
        );
        let a: Vec<_> = {
            let mut r = TestRng::seed_from_u64(99);
            (0..50).map(|_| strat.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = TestRng::seed_from_u64(99);
            (0..50).map(|_| strat.generate(&mut r)).collect()
        };
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn any_spans_the_domain() {
        let mut r = rng();
        let mut seen_high = false;
        for _ in 0..200 {
            if any::<u8>().generate(&mut r) > 200 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }

    // The macro itself, self-hosted.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn tuples_and_options_generate(
            pair in (0u32..10, prop::option::of(0u32..10)),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(pair.0 < 10);
            if let Some(v) = pair.1 {
                prop_assert!(v < 10, "flag was {flag}");
            }
        }
    }

    #[test]
    fn failing_property_panics_with_seed_and_values() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property_test(
                ProptestConfig::with_cases(8),
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                "always_fails",
                |rng: &mut TestRng| {
                    let v = (0u32..100).generate(rng);
                    (format!("v = {v:?}, "), Err("boom".to_string()))
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("cc "), "replay line present: {msg}");
    }
}
