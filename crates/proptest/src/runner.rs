//! The case runner behind the [`proptest!`](crate::proptest) macro:
//! deterministic seeding, `*.proptest-regressions` replay, and failure
//! reporting with a ready-to-paste regression line.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::TestRng;

/// Per-block configuration: `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of novel cases to run (regression replays run in addition).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` novel cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs one property test: replays any committed regression entries for
/// `source_file`, then `config.cases` novel cases seeded from the test
/// name. `case` draws values from the RNG and returns a description of
/// the drawn values plus the case outcome.
///
/// Called by the [`proptest!`](crate::proptest) macro expansion;
/// `manifest_dir` and `source_file` are the consumer crate's
/// `env!("CARGO_MANIFEST_DIR")` and `file!()`, used to locate the
/// sibling `*.proptest-regressions` file.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first failing case,
/// with the seed, the generated values, and a `cc` line to commit.
pub fn run_property_test<F>(
    config: ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    case: F,
) where
    F: Fn(&mut TestRng) -> (String, Result<(), String>),
{
    let regressions = regressions_path(manifest_dir, source_file);
    let replay_seeds = regressions
        .as_deref()
        .map(load_regression_seeds)
        .unwrap_or_default();

    let base = fnv1a64(test_name.as_bytes());
    let replays = replay_seeds
        .into_iter()
        .map(|seed| (seed, "regression replay"));
    let novel =
        (0..config.cases).map(|i| (pacer_prng::derive_seed(base, u64::from(i)), "novel case"));

    for (seed, kind) in replays.chain(novel) {
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        let (values, error) = match outcome {
            Ok((_, Ok(()))) => continue,
            Ok((values, Err(msg))) => (values, msg),
            Err(panic) => ("<lost to panic>".to_string(), panic_message(&panic)),
        };
        let file = regressions
            .as_deref()
            .map_or_else(|| infer_regressions_name(source_file), display_path);
        panic!(
            "property test `{test_name}` failed ({kind})\n  \
             seed: 0x{seed:016x}\n  \
             values: {values}\n  \
             error: {error}\n\
             To replay this case first on future runs, add this line to {file}:\n\
             cc {seed:016x}\n"
        );
    }
}

/// Finds the `*.proptest-regressions` sibling of `source_file`.
///
/// `file!()` paths are relative to the workspace root when crates build
/// as workspace members, and to the crate root when built standalone, so
/// try the manifest dir and each of its ancestors.
fn regressions_path(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    let mut dir = Some(Path::new(manifest_dir));
    while let Some(d) = dir {
        let candidate = d.join(&rel);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = d.parent();
    }
    None
}

/// Parses `cc <token>` lines into replay seeds. Tokens this shim wrote
/// are exactly 16 hex digits and replay their literal seed; longer
/// tokens (the real proptest's 64-digit persistence format) hash to a
/// deterministic seed so inherited files still drive executed cases.
fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            Some(parse_seed_token(token))
        })
        .collect()
}

fn parse_seed_token(token: &str) -> u64 {
    if token.len() == 16 && token.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(token, 16).expect("16 hex digits fit in u64")
    } else {
        fnv1a64(token.as_bytes())
    }
}

fn infer_regressions_name(source_file: &str) -> String {
    display_path(&Path::new(source_file).with_extension("proptest-regressions"))
}

fn display_path(p: &Path) -> String {
    p.display().to_string()
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// FNV-1a, the usual 64-bit offset basis and prime. Used only to derive
/// stable seeds from test names and foreign regression tokens.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_tokens_round_trip_and_foreign_tokens_hash() {
        assert_eq!(parse_seed_token("00000000000000ff"), 0xff);
        assert_eq!(parse_seed_token("deadbeefdeadbeef"), 0xdead_beef_dead_beef);
        let foreign = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12";
        assert_eq!(parse_seed_token(foreign), fnv1a64(foreign.as_bytes()));
        // FNV-1a known-answer vector, so an accidental constant change is noticed.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn regression_file_parsing_skips_comments() {
        let dir = std::env::temp_dir().join("pacer-proptest-runner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.proptest-regressions");
        std::fs::write(
            &path,
            "# Seeds for failure cases proptest has generated.\n\
             # shrinks to input = ...\n\
             cc 0000000000000001 # shrinks to x = 3\n\
             cc 000000000000000a\n",
        )
        .unwrap();
        assert_eq!(load_regression_seeds(&path), vec![1, 10]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn regressions_path_walks_ancestors() {
        // This crate has no regressions file, so lookup must return None
        // rather than erroring.
        assert_eq!(
            regressions_path(env!("CARGO_MANIFEST_DIR"), "crates/nonexistent/tests/x.rs"),
            None
        );
    }
}
