//! Synthetic benchmark workloads modeled on the paper's programs.
//!
//! The paper evaluates on the multithreaded DaCapo benchmarks (eclipse,
//! hsqldb, xalan; 2006-10-MR1) and pseudojbb (§5.1). Those are Java
//! programs we cannot run on this substrate, so each is replaced by a
//! mini-language program engineered to match the characteristics the
//! evaluation depends on (see DESIGN.md):
//!
//! | workload   | threads (total/max live) | race profile                     |
//! |------------|--------------------------|----------------------------------|
//! | eclipse    | 16 / 8                   | many races: hot–hot (LITERACE's blind spot), cold, and rare ones |
//! | hsqldb     | many short sessions      | moderate count, highly reliable  |
//! | xalan      | 9 / 9                    | many distinct array races, long tail of rare ones |
//! | pseudojbb  | waves of 9               | few races, mostly reliable       |
//!
//! Race *occurrence* rates vary because racy accesses sit behind
//! schedule-dependent conditions; distinct races are distinct static site
//! pairs. Every workload also exercises volatiles (Appendix C), guarded
//! accesses, and thread-local objects that escape analysis elides.
//!
//! The extra [`adversarial`] workload churns short-lived threads so that
//! fresh clock versions keep arriving during non-sampling periods — the
//! worst case for PACER's version-based join elision that §3.2 leaves
//! open.
//!
//! # Examples
//!
//! ```
//! use pacer_workloads::Scale;
//!
//! let w = pacer_workloads::eclipse(Scale::Test);
//! let compiled = w.compiled();
//! assert!(compiled.instrumented_sites() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use pacer_lang::ir::CompiledProgram;

/// How big a workload instance to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: unit-test sized (tens of milliseconds per run).
    Test,
    /// Small: harness default for multi-trial experiments.
    Small,
    /// Full: closest to the paper's proportions (slow; use for final
    /// reproduction runs).
    Paper,
}

impl Scale {
    /// A multiplier applied to inner-loop lengths.
    fn ops(self, test: u32, small: u32, paper: u32) -> u32 {
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// A generated workload: name, program source, and expectations.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name ("eclipse", …).
    pub name: &'static str,
    /// Mini-language source text.
    pub source: String,
    /// Threads the program starts, including main (Table 2 "Total").
    pub threads_total: usize,
    /// Expected maximum simultaneously live threads (Table 2 "Max live").
    pub max_live: usize,
}

impl Workload {
    /// Parses and compiles the workload.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to parse or compile — that is
    /// a bug in this crate, covered by tests.
    pub fn compiled(&self) -> CompiledProgram {
        let ast = pacer_lang::parse(&self.source)
            .unwrap_or_else(|e| panic!("workload {}: parse error: {e}", self.name));
        pacer_lang::compile(&ast)
            .unwrap_or_else(|e| panic!("workload {}: compile error: {e}", self.name))
    }
}

/// All four paper workloads at the given scale.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        eclipse(scale),
        hsqldb(scale),
        xalan(scale),
        pseudojbb(scale),
    ]
}

/// Emits `let h<i> = spawn f(<i>);` … `join h<i>;` pairs.
fn spawn_wave(out: &mut String, func: &str, ids: impl Iterator<Item = u32> + Clone) {
    for id in ids.clone() {
        let _ = writeln!(out, "    let h{id} = spawn {func}({id});");
    }
    for id in ids {
        let _ = writeln!(out, "    join h{id};");
    }
}

/// The eclipse-like workload: 16 worker threads in two waves of 8, with
/// hot–hot races (shared counters hammered in the inner loop), cold races
/// (one-shot per-thread slot writes), guarded traffic, thread-local
/// objects, and rare schedule-dependent races.
pub fn eclipse(scale: Scale) -> Workload {
    let ops = scale.ops(40, 150, 600);
    let mut src = String::from(
        "shared hot_a; shared hot_b; shared hot_c;\n\
         shared cold[8];\n\
         shared registry[16];\n\
         shared pool[24];\n\
         shared guarded; shared phase;\n\
         shared rare_a; shared rare_b; shared rare_c; shared rare_d;\n\
         lock m; lock reg_lock;\n\
         volatile published;\n\n",
    );
    let _ = writeln!(
        src,
        "// Cold code in its own function = its own LITERACE region: stays at
// a 100% sampling rate, so LITERACE finds these races easily.
fn cold_init(id) {{
    cold[id % 8] = id + 1;    // one-shot: races with the sibling wave
}}
fn cold_finish(id) {{
    let fin = hot_c;          // medium-frequency race
    hot_c = fin + 1;
    if (fin % 7 == 3) {{ rare_c = fin; }}
    if (fin % 11 == 5) {{ rare_d = id; }}
}}
// The hot loop: LITERACE's per-(method × thread) rate decays toward its
// floor here, so the hot-hot races below are its blind spot (Figure 6).
fn hot_loop(id) {{
    let i = 0;
    while (i < {ops}) {{
        sync m {{ guarded = guarded + 1; }}
        hot_a = hot_a + 1;            // hot-hot write-write race
        let snap = hot_b;             // hot read
        hot_b = snap + id;            // hot write
        registry[(id * 3 + i) % 16] = i;
        let scratch = new obj;        // provably local: elided
        scratch.acc = i * id;
        scratch.acc = scratch.acc + 1;
        // Escaping objects: published to a shared pool and mutated by
        // whoever pulls them — like eclipse's shared AST/build state.
        // Their per-field metadata is what makes Figure 10 interesting.
        let fresh = new obj;
        fresh.load = i;
        pool[(id * 5 + i) % 24] = fresh;
        let pulled = pool[(id * 7 + i * 3) % 24];
        if (pulled != 0) {{
            pulled.load = pulled.load + 1;   // racy field traffic
        }}
        if (i * 8 + id == snap) {{ rare_a = snap; }}   // rare
        if (snap % 97 == 13) {{ rare_b = id; }}        // rare
        i = i + 1;
    }}
}}
fn worker(id) {{
    cold_init(id);
    hot_loop(id);
    cold_finish(id);
    published = id;                   // volatile publish
}}"
    );
    src.push_str("fn main() {\n    phase = 1;\n");
    spawn_wave(&mut src, "worker", 0..8);
    src.push_str("    phase = 2;\n");
    spawn_wave(&mut src, "worker", 8..16);
    src.push_str("    phase = 3;\n}\n");
    Workload {
        name: "eclipse",
        source: src,
        threads_total: 17,
        max_live: 9,
    }
}

/// The hsqldb-like workload: many short-lived "session" threads in waves,
/// disciplined table updates plus a handful of unguarded statistics
/// counters that race in essentially every run.
pub fn hsqldb(scale: Scale) -> Workload {
    // Sessions must live long enough that steady-state lock handoffs
    // dominate first-communication slow joins (Table 3's hsqldb row still
    // shows mostly fast non-sampling joins despite 403 threads).
    let (waves, per_wave, ops) = match scale {
        Scale::Test => (3u32, 8u32, 40u32),
        Scale::Small => (6, 17, 120),
        Scale::Paper => (12, 33, 400),
    };
    let total = waves * per_wave;
    let mut src = String::from(
        "shared table[32];\n\
         shared stat_reads; shared stat_writes; shared stat_sessions;\n\
         shared audit[4];\n\
         lock table_lock; lock audit_lock;\n\
         volatile epoch;\n\n",
    );
    let _ = writeln!(
        src,
        "fn session(id) {{
    stat_sessions = stat_sessions + 1;   // reliable race
    let i = 0;
    while (i < {ops}) {{
        sync table_lock {{
            let row = (id + i * 7) % 32;
            table[row] = table[row] + id;
        }}
        stat_reads = stat_reads + 1;     // reliable race
        if (i % 5 == 0) {{ stat_writes = stat_writes + 1; }}
        let buf = new obj;
        buf.row = i;
        i = i + 1;
    }}
    audit[id % 4] = id;                  // racy across sessions
    epoch = id;
}}"
    );
    src.push_str("fn main() {\n");
    for w in 0..waves {
        spawn_wave(&mut src, "session", (w * per_wave)..((w + 1) * per_wave));
    }
    src.push_str("}\n");
    Workload {
        name: "hsqldb",
        source: src,
        threads_total: (total + 1) as usize,
        max_live: (per_wave + 1) as usize,
    }
}

/// The xalan-like workload: 8 transformer threads over a shared table with
/// mostly-independent regions that occasionally collide, yielding many
/// distinct races with a long tail of rare ones.
pub fn xalan(scale: Scale) -> Workload {
    let ops = scale.ops(50, 200, 800);
    let mut src = String::from(
        "shared doc[24];\n\
         shared out_a; shared out_b; shared out_c; shared out_d;\n\
         shared collide[6];\n\
         shared done_count;\n\
         lock pool;\n\
         volatile barrier;\n\n",
    );
    let _ = writeln!(
        src,
        "fn transform(id) {{
    let i = 0;
    while (i < {ops}) {{
        // regioned accesses: mostly private, colliding when the stripe
        // wraps onto a neighbour's
        doc[(id * 3 + (i % 3)) % 24] = i;
        let peek = doc[(id * 3 + i) % 24];
        if (id % 4 == 0) {{ out_a = out_a + peek; }}
        if (id % 4 == 1) {{ out_b = out_b + peek; }}
        if (id % 4 == 2) {{ out_c = out_c + peek; }}
        if (id % 4 == 3) {{ out_d = out_d + peek; }}
        if (peek == i * 2 + id) {{ collide[id % 6] = peek; }}  // rare
        if (peek % 89 == 7) {{ collide[(id + 1) % 6] = id; }}  // rare
        sync pool {{ done_count = done_count + 1; }}
        let node = new obj;         // result node: drives the allocation
        node.tag = i;               // clock that triggers GCs (§4)
        i = i + 1;
    }}
    barrier = id;
}}"
    );
    src.push_str("fn main() {\n");
    spawn_wave(&mut src, "transform", 0..8);
    src.push_str("}\n");
    Workload {
        name: "xalan",
        source: src,
        threads_total: 9,
        max_live: 9,
    }
}

/// The pseudojbb-like workload: four waves of 9 warehouse threads (37
/// total), disciplined except for a few order-book counters.
pub fn pseudojbb(scale: Scale) -> Workload {
    let ops = scale.ops(30, 100, 400);
    let mut src = String::from(
        "shared warehouse[9];\n\
         shared orders; shared new_order_id;\n\
         shared spill;\n\
         lock order_lock;\n\
         volatile tick;\n\n",
    );
    let _ = writeln!(
        src,
        "fn clerk(id) {{
    let i = 0;
    while (i < {ops}) {{
        sync order_lock {{ orders = orders + 1; }}
        warehouse[id % 9] = warehouse[id % 9] + 1;  // races across waves
        new_order_id = new_order_id + 1;            // reliable race
        let rec = new obj;
        rec.amount = i;
        rec.total = rec.amount * 3;
        if (new_order_id == id * 17 + 5) {{ spill = id; }}  // rare
        i = i + 1;
    }}
    tick = id;
}}"
    );
    src.push_str("fn main() {\n");
    for w in 0..4u32 {
        spawn_wave(&mut src, "clerk", (w * 9)..((w + 1) * 9));
    }
    src.push_str("}\n");
    Workload {
        name: "pseudojbb",
        source: src,
        threads_total: 37,
        max_live: 10,
    }
}

/// A fully disciplined, race-free workload (a Monte-Carlo-style reduction):
/// workers accumulate into thread-local objects and merge under a lock.
/// Used to validate zero false positives at every sampling rate and to
/// measure the overhead floor on clean code.
pub fn montecarlo(scale: Scale) -> Workload {
    let ops = scale.ops(60, 250, 1000);
    let workers = 6u32;
    let mut src = String::from(
        "shared total; shared rounds;\n\
         lock merge_lock;\n\
         volatile done;\n\n",
    );
    let _ = writeln!(
        src,
        "fn simulate(id) {{
    let acc = new obj;           // provably thread-local accumulator
    acc.sum = 0;
    let state = id * 7 + 3;
    let i = 0;
    while (i < {ops}) {{
        state = (state * 1103515245 + 12345) % 2147483647;
        if (state < 0) {{ state = -state; }}
        if (state % 4 < 2) {{ acc.sum = acc.sum + 1; }}
        i = i + 1;
    }}
    sync merge_lock {{
        total = total + acc.sum;
        rounds = rounds + {ops};
    }}
    done = id;
}}"
    );
    src.push_str("fn main() {\n");
    spawn_wave(&mut src, "simulate", 0..workers);
    src.push_str("}\n");
    Workload {
        name: "montecarlo",
        source: src,
        threads_total: workers as usize + 1,
        max_live: workers as usize + 1,
    }
}

/// The adversarial thread-churn workload: continuously forks and joins
/// short-lived threads, so every join brings a genuinely new clock version
/// and the version fast path cannot converge (§3.2's open worst case).
pub fn adversarial(scale: Scale) -> Workload {
    let churn = scale.ops(12, 60, 240);
    let mut src = String::from(
        "shared sink;\n\
         lock relay;\n\n\
         fn flash(id) {\n\
             sync relay { sink = sink + id; }\n\
         }\n\
         fn main() {\n\
             let k = 0;\n",
    );
    let _ = writeln!(
        src,
        "    while (k < {churn}) {{
        let a = spawn flash(k);
        let b = spawn flash(k + 1);
        join a;
        join b;
        k = k + 1;
    }}
}}"
    );
    Workload {
        name: "adversarial",
        source: src,
        threads_total: (2 * churn + 1) as usize,
        max_live: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_fasttrack::FastTrackDetector;
    use pacer_runtime::{Vm, VmConfig};
    use pacer_trace::Detector;

    fn run(w: &Workload, seed: u64) -> (pacer_runtime::RunOutcome, FastTrackDetector) {
        let compiled = w.compiled();
        let mut det = FastTrackDetector::new();
        let out = Vm::run(&compiled, &mut det, &VmConfig::new(seed)).unwrap();
        (out, det)
    }

    #[test]
    fn all_workloads_compile_at_every_scale() {
        for scale in [Scale::Test, Scale::Small, Scale::Paper] {
            for w in all(scale) {
                let c = w.compiled();
                assert!(c.instrumented_sites() > 0, "{}", w.name);
            }
            adversarial(scale).compiled();
        }
    }

    #[test]
    fn thread_counts_match_specs() {
        for w in all(Scale::Test) {
            let (out, _) = run(&w, 11);
            assert_eq!(out.threads_started, w.threads_total, "{}", w.name);
            assert!(
                out.max_live_threads <= w.max_live,
                "{}: live {} > spec {}",
                w.name,
                out.max_live_threads,
                w.max_live
            );
        }
    }

    #[test]
    fn every_workload_races_under_fasttrack() {
        for w in all(Scale::Test) {
            let (_, det) = run(&w, 3);
            assert!(!det.races().is_empty(), "{} should contain races", w.name);
        }
    }

    #[test]
    fn hsqldb_races_are_reliable_across_seeds() {
        let w = hsqldb(Scale::Test);
        for seed in 0..5 {
            let (_, det) = run(&w, seed);
            assert!(
                det.distinct_races().len() >= 2,
                "seed {seed}: reliable races missing"
            );
        }
    }

    #[test]
    fn eclipse_has_more_distinct_races_than_pseudojbb() {
        // Table 2's ordering: eclipse ≫ pseudojbb in distinct races.
        let mut eclipse_races = std::collections::HashSet::new();
        let mut jbb_races = std::collections::HashSet::new();
        for seed in 0..5 {
            let (_, d1) = run(&eclipse(Scale::Test), seed);
            eclipse_races.extend(d1.distinct_races());
            let (_, d2) = run(&pseudojbb(Scale::Test), seed);
            jbb_races.extend(d2.distinct_races());
        }
        assert!(
            eclipse_races.len() > jbb_races.len(),
            "eclipse {} vs pseudojbb {}",
            eclipse_races.len(),
            jbb_races.len()
        );
    }

    #[test]
    fn rare_races_exist_somewhere() {
        // Across seeds, the distinct-race set should vary: some races do
        // not occur in every trial (Table 2's ≥1 vs ≥25 columns).
        let w = eclipse(Scale::Test);
        let sets: Vec<std::collections::BTreeSet<_>> = (0..6)
            .map(|seed| run(&w, seed).1.distinct_races().into_iter().collect())
            .collect();
        let union: std::collections::BTreeSet<_> = sets.iter().flatten().copied().collect();
        let intersection = sets.iter().skip(1).fold(sets[0].clone(), |acc, s| {
            acc.intersection(s).copied().collect()
        });
        assert!(
            intersection.len() < union.len(),
            "expected rare races: union {} == intersection {}",
            union.len(),
            intersection.len()
        );
        assert!(!intersection.is_empty(), "and some reliable ones");
    }

    #[test]
    fn workloads_use_escape_elision_and_volatiles() {
        for w in all(Scale::Test) {
            let (out, _) = run(&w, 0);
            if w.name != "xalan" {
                assert!(out.elided_accesses > 0, "{}: no elided accesses", w.name);
            }
            assert!(out.stats.vol_writes > 0, "{}: no volatile traffic", w.name);
        }
    }

    #[test]
    fn montecarlo_is_race_free_at_every_rate() {
        use pacer_core::PacerDetector;
        let w = montecarlo(Scale::Test);
        let compiled = w.compiled();
        for (seed, rate) in [(0u64, 0.0f64), (1, 0.25), (2, 1.0)] {
            let mut pacer = PacerDetector::new();
            let cfg = VmConfig::new(seed).with_sampling_rate(rate);
            let out = Vm::run(&compiled, &mut pacer, &cfg).unwrap();
            assert!(
                pacer.races().is_empty(),
                "montecarlo raced at rate {rate} seed {seed}"
            );
            assert!(out.elided_accesses > 0, "accumulators are elided");
        }
        // FASTTRACK agrees.
        let (_, det) = run(&w, 9);
        assert!(det.races().is_empty());
    }

    #[test]
    fn adversarial_churns_threads() {
        let w = adversarial(Scale::Test);
        let (out, _) = run(&w, 1);
        assert_eq!(out.threads_started, w.threads_total);
        assert!(out.max_live_threads <= 3);
        assert_eq!(out.stats.forks as usize, w.threads_total - 1);
    }
}
