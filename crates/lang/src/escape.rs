//! Intraprocedural escape analysis.
//!
//! Mirrors the paper's use of "Jikes RVM's existing static escape analysis
//! to identify accesses to provably local data, which it does not
//! instrument" (§4) — a "simple, mostly intraprocedural escape analysis"
//! (§6.1). Field accesses through a local variable that provably holds only
//! thread-local allocations are compiled *without* race-check
//! instrumentation.
//!
//! The analysis is flow-insensitive. Per function it computes, for each
//! local:
//!
//! * `may_hold` — the local may hold a heap object;
//! * `unknown` — it may hold an object of unknown origin (a parameter, a
//!   call result, or a value read out of a heap field);
//! * `escaping` — an object it holds may become reachable by another
//!   thread (stored to a shared global or array, stored into any heap
//!   field, passed to `spawn` or a call, or returned).
//!
//! Escape facts propagate backwards through copy assignments (`a = b`
//! makes `b` escape whenever `a` does) to a fixpoint.
//!
//! # Examples
//!
//! ```
//! use pacer_lang::escape::analyze;
//!
//! let program = pacer_lang::parse(
//!     "
//!     shared g;
//!     fn main() {
//!         let local = new obj;     // never escapes
//!         local.f = 1;
//!         let leaked = new obj;    // stored to a shared global
//!         g = leaked;
//!     }
//! ",
//! )?;
//! let info = analyze(&program.functions[0]);
//! assert!(info.is_provably_local("local"));
//! assert!(!info.is_provably_local("leaked"));
//! # Ok::<(), pacer_lang::ParseError>(())
//! ```

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, Function, LValue, Stmt};

/// Per-function escape facts. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct EscapeInfo {
    may_hold: HashSet<String>,
    unknown: HashSet<String>,
    escaping: HashSet<String>,
}

impl EscapeInfo {
    /// Returns `true` if field accesses through `local` need no race-check
    /// instrumentation: it provably holds only allocations that never
    /// escape this thread.
    pub fn is_provably_local(&self, local: &str) -> bool {
        self.may_hold.contains(local)
            && !self.unknown.contains(local)
            && !self.escaping.contains(local)
    }

    /// Locals proven thread-local, sorted (for tests and diagnostics).
    pub fn provably_local_locals(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .may_hold
            .iter()
            .filter(|l| self.is_provably_local(l))
            .map(String::as_str)
            .collect();
        v.sort_unstable();
        v
    }
}

#[derive(Default)]
struct Collector {
    info: EscapeInfo,
    /// Names that are locals of this function (params + `let` targets).
    /// Bare names outside this set are shared globals or volatiles.
    locals: HashSet<String>,
    /// `flows[a]` = locals whose objects may flow into `a` (a ⊇ b).
    flows: HashMap<String, HashSet<String>>,
}

/// Collects every `let`-bound name in a statement tree (shared with the
/// lockset lint).
pub(crate) fn collect_lets_pub(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_lets_pub(then_branch, out);
                collect_lets_pub(else_branch, out);
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => collect_lets_pub(body, out),
            _ => {}
        }
    }
}

impl Collector {
    /// The locals whose objects may reach the value of `e`, plus whether
    /// the value may be an object at all.
    fn obj_sources(&mut self, e: &Expr) -> (HashSet<String>, bool) {
        match e {
            Expr::New => (HashSet::new(), true),
            Expr::Name(n) => {
                if self.locals.contains(n) {
                    let mut s = HashSet::new();
                    s.insert(n.clone());
                    // Conservatively treat any local as possibly holding an
                    // object; non-object locals are filtered by `may_hold`
                    // later.
                    (s, true)
                } else {
                    // Reading a shared global: anything it holds already
                    // escaped when it was stored there; nothing new leaks,
                    // and the holder is of unknown origin.
                    (HashSet::new(), true)
                }
            }
            Expr::Field(..) => {
                // Reading a field yields heap content of unknown origin.
                // The *base* object does not escape through a read — only
                // the value does, and that value was either stored through
                // a tracked write or is itself unknown.
                (HashSet::new(), true)
            }
            Expr::Call { args, .. } => {
                // Arguments escape into the callee; result is unknown.
                for a in args {
                    self.escape_expr(a);
                }
                (HashSet::new(), true)
            }
            Expr::Spawn { args, .. } => {
                for a in args {
                    self.escape_expr(a);
                }
                (HashSet::new(), false) // a thread handle, not an object
            }
            Expr::Unary(_, inner) => {
                self.visit_expr(inner);
                (HashSet::new(), false)
            }
            Expr::Binary(_, l, r) => {
                self.visit_expr(l);
                self.visit_expr(r);
                (HashSet::new(), false)
            }
            Expr::Index(_, index) => {
                self.visit_expr(index);
                // Shared array elements may hold references published by
                // any thread: unknown origin.
                (HashSet::new(), true)
            }
            Expr::Int(_) => (HashSet::new(), false),
        }
    }

    /// Marks every object reaching `e` as escaping.
    fn escape_expr(&mut self, e: &Expr) {
        let (sources, is_obj) = self.obj_sources(e);
        if is_obj {
            for s in sources {
                self.info.escaping.insert(s);
            }
            if matches!(e, Expr::Field(..)) {
                // The *content* escapes; mark unknown-origin content.
            }
        }
    }

    /// Visits an expression in a non-escaping context (condition,
    /// arithmetic operand): only nested calls/spawns leak.
    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Call { args, .. } | Expr::Spawn { args, .. } => {
                for a in args {
                    self.escape_expr(a);
                }
            }
            Expr::Unary(_, inner) => self.visit_expr(inner),
            Expr::Binary(_, l, r) => {
                self.visit_expr(l);
                self.visit_expr(r);
            }
            Expr::Index(_, index) => self.visit_expr(index),
            _ => {}
        }
    }

    fn bind(&mut self, target: &str, value: &Expr) {
        let (sources, is_obj) = self.obj_sources(value);
        if !is_obj {
            return;
        }
        match value {
            Expr::New => {
                self.info.may_hold.insert(target.to_string());
            }
            Expr::Name(n) if self.locals.contains(n) => {
                self.info.may_hold.insert(target.to_string());
                self.flows
                    .entry(target.to_string())
                    .or_default()
                    .extend(sources);
            }
            // Globals, array elements, field reads, and call results hold
            // objects of unknown origin.
            Expr::Name(_) | Expr::Index(..) | Expr::Field(..) | Expr::Call { .. } => {
                self.info.may_hold.insert(target.to_string());
                self.info.unknown.insert(target.to_string());
            }
            _ => {}
        }
    }

    fn visit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, init } => self.bind(name, init),
            Stmt::Assign { target, value } => match target {
                LValue::Name(n) if self.locals.contains(n) => self.bind(n, value),
                LValue::Name(_) => {
                    // A shared global or volatile: the value escapes.
                    self.escape_expr(value);
                }
                LValue::Index(_, index) => {
                    self.visit_expr(index);
                    self.escape_expr(value);
                }
                LValue::Field(_, _) => {
                    // Stored into the heap: conservatively escapes (the
                    // holder object may itself escape later).
                    self.escape_expr(value);
                }
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.visit_expr(cond);
                for s in then_branch.iter().chain(else_branch) {
                    self.visit_stmt(s);
                }
            }
            Stmt::While { cond, body } => {
                self.visit_expr(cond);
                for s in body {
                    self.visit_stmt(s);
                }
            }
            Stmt::Sync { body, .. } => {
                for s in body {
                    self.visit_stmt(s);
                }
            }
            Stmt::Join { thread } => self.visit_expr(thread),
            Stmt::Wait { .. } | Stmt::Notify { .. } => {}
            Stmt::Return { value } => {
                if let Some(v) = value {
                    self.escape_expr(v);
                }
            }
            Stmt::Expr(e) => self.visit_expr(e),
        }
    }
}

/// Analyzes one function. See the [module docs](self).
pub fn analyze(function: &Function) -> EscapeInfo {
    let mut c = Collector::default();
    c.locals.extend(function.params.iter().cloned());
    collect_lets_pub(&function.body, &mut c.locals);
    // Parameters hold values of unknown origin.
    for p in &function.params {
        c.info.may_hold.insert(p.clone());
        c.info.unknown.insert(p.clone());
    }
    // Two constraint-collection passes make the flow-insensitive facts
    // independent of statement order (e.g. `g = a;` before `a = b;`).
    for s in &function.body {
        c.visit_stmt(s);
    }
    for s in &function.body {
        c.visit_stmt(s);
    }

    // Propagate escaping backwards along copy edges to a fixpoint.
    let mut worklist: Vec<String> = c.info.escaping.iter().cloned().collect();
    while let Some(l) = worklist.pop() {
        if let Some(sources) = c.flows.get(&l).cloned() {
            for s in sources {
                if c.info.escaping.insert(s.clone()) {
                    worklist.push(s);
                }
            }
        }
    }
    // Unknown origin also flows backwards? No: `a = b` gives `a` whatever
    // `b` has; unknown propagates *forwards*. Iterate to a fixpoint.
    loop {
        let mut changed = false;
        let flows = c.flows.clone();
        for (target, sources) in &flows {
            if sources.iter().any(|s| c.info.unknown.contains(s))
                && c.info.unknown.insert(target.clone())
            {
                changed = true;
            }
            if sources.iter().any(|s| c.info.may_hold.contains(s))
                && c.info.may_hold.insert(target.clone())
            {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    c.info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn info(src: &str) -> EscapeInfo {
        let p = parse(src).unwrap();
        analyze(p.function("main").expect("main"))
    }

    #[test]
    fn fresh_allocation_is_local() {
        let i = info("fn main() { let o = new obj; o.f = 1; let v = o.f; }");
        assert!(i.is_provably_local("o"));
        assert_eq!(i.provably_local_locals(), vec!["o"]);
    }

    #[test]
    fn stored_to_global_escapes() {
        let i = info("shared g; fn main() { let o = new obj; g = o; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn stored_to_array_escapes() {
        let i = info("shared a[4]; fn main() { let o = new obj; a[0] = o; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn spawn_argument_escapes() {
        let i = info("fn w(x) {} fn main() { let o = new obj; let t = spawn w(o); join t; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn call_argument_escapes() {
        let i = info("fn f(x) {} fn main() { let o = new obj; f(o); }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn returned_object_escapes() {
        let i = info("fn main() { let o = new obj; return o; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn alias_of_escaping_local_escapes() {
        let i = info("shared g; fn main() { let o = new obj; let p = o; g = p; }");
        assert!(!i.is_provably_local("o"), "escape flows back through p");
        assert!(!i.is_provably_local("p"));
    }

    #[test]
    fn escape_before_alias_in_program_order() {
        // `g = p;` textually precedes the aliasing — the two collection
        // passes make order irrelevant.
        let i = info("shared g; fn main() { let p = 0; let o = new obj; g = p; p = o; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn alias_of_local_stays_local() {
        let i = info("fn main() { let o = new obj; let p = o; p.f = 2; }");
        assert!(i.is_provably_local("o"));
        assert!(i.is_provably_local("p"));
    }

    #[test]
    fn parameters_are_unknown() {
        let p = parse("fn main(q) { q.f = 1; }").unwrap();
        let i = analyze(&p.functions[0]);
        assert!(!i.is_provably_local("q"));
    }

    #[test]
    fn call_result_is_unknown() {
        let i = info("fn mk() { return new obj; } fn main() { let o = mk(); o.f = 1; }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn field_read_result_is_unknown() {
        let i = info("fn main() { let o = new obj; let q = o.inner; q.f = 1; }");
        assert!(i.is_provably_local("o"));
        assert!(!i.is_provably_local("q"));
    }

    #[test]
    fn object_stored_into_heap_field_escapes() {
        // Conservative: even storing into a local object's field escapes
        // the stored object.
        let i = info("fn main() { let o = new obj; let p = new obj; o.child = p; }");
        assert!(i.is_provably_local("o"));
        assert!(!i.is_provably_local("p"));
    }

    #[test]
    fn escape_inside_control_flow_is_seen() {
        let i =
            info("shared g; fn main() { let o = new obj; while (g < 3) { if (g) { g = o; } } }");
        assert!(!i.is_provably_local("o"));
    }

    #[test]
    fn integer_locals_are_not_provably_local_objects() {
        let i = info("fn main() { let i = 3; }");
        assert!(!i.is_provably_local("i"), "holds no allocation");
    }
}
