//! A mini concurrent programming language and its instrumenting compiler.
//!
//! The PACER paper instruments Java bytecode inside Jikes RVM's two dynamic
//! compilers, using "Jikes RVM's existing static escape analysis to
//! identify accesses to provably local data, which it does not instrument"
//! (§4). We do not have a JVM, so this crate provides the equivalent
//! substrate: a small, Java-flavored concurrent language with
//!
//! * a lexer and recursive-descent [`parse`]r;
//! * an intraprocedural [escape analysis](escape) that proves allocations
//!   thread-local;
//! * a [lowering pass](compile) to a compact stack-machine IR
//!   ([`ir::Instr`]) that *instruments* shared-data accesses with race-check
//!   sites and elides instrumentation on provably local field accesses —
//!   exactly the shape of the paper's compiler pass.
//!
//! The `pacer-runtime` crate executes compiled programs under a seeded
//! scheduler, feeding the instrumented accesses to any detector.
//!
//! # Language tour
//!
//! ```text
//! shared counter;          // scalar shared variable
//! shared table[16];        // shared array (16 variables)
//! lock m;                  // a lock
//! volatile flag;           // a volatile (synchronization) variable
//!
//! fn worker(id) {
//!     let i = 0;
//!     while (i < 50) {
//!         sync m { counter = counter + 1; }   // guarded access
//!         table[id] = i;                      // unguarded access
//!         let scratch = new obj;              // provably thread-local:
//!         scratch.sum = i * 2;                // NOT instrumented
//!         i = i + 1;
//!     }
//!     flag = 1;                               // volatile write
//! }
//!
//! fn main() {
//!     let a = spawn worker(0);
//!     let b = spawn worker(1);
//!     join a;
//!     join b;
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! let source = "
//!     shared x;
//!     fn main() { x = 1; }
//! ";
//! let program = pacer_lang::parse(source)?;
//! let compiled = pacer_lang::compile(&program)?;
//! assert_eq!(compiled.globals, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod escape;
mod fold;
pub mod ir;
mod lexer;
pub mod lockset;
mod lower;
mod parser;
mod printer;

pub use fold::fold_program;
pub use lexer::{LexError, Token, TokenKind};
pub use lower::{compile, CompileError, REGION_ALIGN};
pub use parser::{parse, ParseError};
pub use printer::print;
