//! Abstract syntax for the mini concurrent language.

/// A complete program: global declarations plus function definitions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Shared (racy) global variables, scalar or array.
    pub shareds: Vec<SharedDecl>,
    /// Declared locks.
    pub locks: Vec<String>,
    /// Declared volatile variables.
    pub volatiles: Vec<String>,
    /// Function definitions; execution starts at `main`.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A `shared` declaration: a scalar (`shared x;`) or a fixed-size array
/// (`shared xs[16];`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedDecl {
    /// Variable name.
    pub name: String,
    /// Array length, or `None` for a scalar.
    pub len: Option<u32>,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (integers, references, or thread handles at
    /// runtime).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` — declares a local.
    Let {
        /// Local name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned value.
        value: Expr,
    },
    /// `if (cond) { … } else { … }` (else optional).
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `sync m { … }` — a lock-guarded block (like Java `synchronized`).
    Sync {
        /// Lock name.
        lock: String,
        /// Guarded body.
        body: Vec<Stmt>,
    },
    /// `join expr;` — blocks until the thread value terminates.
    Join {
        /// Thread handle expression.
        thread: Expr,
    },
    /// `wait m;` — releases lock `m` (which must be held by an enclosing
    /// `sync m`), blocks until notified, then reacquires it. Like Java's
    /// `Object.wait`.
    Wait {
        /// The lock/monitor name.
        lock: String,
    },
    /// `notify m;` / `notifyall m;` — wakes one/all threads waiting on
    /// `m` (which must be held). Like Java's `notify`/`notifyAll`.
    Notify {
        /// The lock/monitor name.
        lock: String,
        /// Wake every waiter instead of one.
        all: bool,
    },
    /// `return expr;` (or `return;`, yielding 0).
    Return {
        /// Returned value.
        value: Option<Expr>,
    },
    /// An expression evaluated for effect (e.g. a call).
    Expr(Expr),
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// A bare name: a local, shared scalar, or volatile (resolved during
    /// lowering against the declaration tables).
    Name(String),
    /// `name[index]` — a shared array element.
    Index(String, Box<Expr>),
    /// `name.field` — a field of the object held by local `name`.
    Field(String, String),
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// A bare name (local, shared scalar, or volatile).
    Name(String),
    /// `name[index]` — shared array element read.
    Index(String, Box<Expr>),
    /// `name.field` — field read of the object held by local `name`.
    Field(String, String),
    /// `new obj` — heap allocation.
    New,
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `spawn f(args)` — starts a thread, evaluates to a thread handle.
    Spawn {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `f(args)` — a plain (same-thread) call.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x`: 1 if zero, else 0).
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (trapping on division by zero)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (strict, both sides evaluated)
    And,
    /// `||` (strict)
    Or,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_lookup() {
        let p = Program {
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body: vec![],
            }],
            ..Program::default()
        };
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
    }
}
