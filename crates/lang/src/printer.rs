//! Pretty-printer: AST → canonical source text.
//!
//! The printer emits source the [parser](crate::parse) accepts, and
//! round-trips: `parse(print(p)) == p` (property-tested). Useful for
//! dumping generated workloads, normalizing fixtures, and debugging
//! transformation passes.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program as canonical source text.
///
/// # Examples
///
/// ```
/// let program = pacer_lang::parse("shared x; fn main() { x = x + 1; }")?;
/// let text = pacer_lang::print(&program);
/// assert!(text.contains("x = (x + 1);"), "canonical, fully parenthesized");
/// let again = pacer_lang::parse(&text)?;
/// assert_eq!(program, again);
/// # Ok::<(), pacer_lang::ParseError>(())
/// ```
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    for s in &program.shareds {
        match s.len {
            None => {
                let _ = writeln!(out, "shared {};", s.name);
            }
            Some(len) => {
                let _ = writeln!(out, "shared {}[{len}];", s.name);
            }
        }
    }
    for m in &program.locks {
        let _ = writeln!(out, "lock {m};");
    }
    for v in &program.volatiles {
        let _ = writeln!(out, "volatile {v};");
    }
    if !out.is_empty() {
        out.push('\n');
    }
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

fn print_function(out: &mut String, f: &Function) {
    let _ = write!(out, "fn {}({})", f.name, f.params.join(", "));
    out.push_str(" {\n");
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, body: &[Stmt], level: usize) {
    out.push_str("{\n");
    for s in body {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Let { name, init } => {
            let _ = write!(out, "let {name} = {};", expr(init));
        }
        Stmt::Assign { target, value } => {
            let t = match target {
                LValue::Name(n) => n.clone(),
                LValue::Index(n, i) => format!("{n}[{}]", expr(i)),
                LValue::Field(o, f) => format!("{o}.{f}"),
            };
            let _ = write!(out, "{t} = {};", expr(value));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = write!(out, "if ({}) ", expr(cond));
            print_block(out, then_branch, level);
            if !else_branch.is_empty() {
                out.push_str(" else ");
                print_block(out, else_branch, level);
            }
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "while ({}) ", expr(cond));
            print_block(out, body, level);
        }
        Stmt::Sync { lock, body } => {
            let _ = write!(out, "sync {lock} ");
            print_block(out, body, level);
        }
        Stmt::Join { thread } => {
            let _ = write!(out, "join {};", expr(thread));
        }
        Stmt::Wait { lock } => {
            let _ = write!(out, "wait {lock};");
        }
        Stmt::Notify { lock, all } => {
            let kw = if *all { "notifyall" } else { "notify" };
            let _ = write!(out, "{kw} {lock};");
        }
        Stmt::Return { value } => match value {
            Some(v) => {
                let _ = write!(out, "return {};", expr(v));
            }
            None => out.push_str("return;"),
        },
        Stmt::Expr(e) => {
            let _ = write!(out, "{};", expr(e));
        }
    }
    out.push('\n');
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders an expression, parenthesizing every compound subexpression so
/// precedence never needs reconstruction (canonical, not minimal).
fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                // Negative literals print as parenthesized unary minus so
                // `a - -1` stays parseable.
                format!("(-{})", v.unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Expr::Name(n) => n.clone(),
        Expr::Index(n, i) => format!("{n}[{}]", expr(i)),
        Expr::Field(o, f) => format!("{o}.{f}"),
        Expr::New => "new obj".to_string(),
        Expr::Unary(UnOp::Neg, inner) => format!("(-{})", expr(inner)),
        Expr::Unary(UnOp::Not, inner) => format!("(!{})", expr(inner)),
        Expr::Binary(op, l, r) => format!("({} {} {})", expr(l), bin_op(*op), expr(r)),
        Expr::Spawn { func, args } => format!(
            "spawn {func}({})",
            args.iter().map(expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Call { func, args } => format!(
            "{func}({})",
            args.iter().map(expr).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_declarations() {
        round_trip("shared x; shared a[4]; lock m; volatile v; fn main() {}");
    }

    #[test]
    fn round_trips_statements() {
        round_trip(
            "
            shared x; lock m;
            fn main() {
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { x = x + i; } else { x = x - 1; }
                    sync m { x = 0; }
                    i = i + 1;
                }
                return x;
            }
        ",
        );
    }

    #[test]
    fn round_trips_objects_threads_arrays() {
        round_trip(
            "
            shared g; shared a[3];
            fn w(p, q) { return p + q; }
            fn main() {
                let o = new obj;
                o.f = 1;
                g = o.f;
                a[2] = w(1, 2);
                let t = spawn w(3, 4);
                join t;
                w(a[0], -1);
            }
        ",
        );
    }

    #[test]
    fn round_trips_nested_expressions() {
        round_trip("fn main() { let z = !(1 + 2 * 3 < 4) && (5 >= -6 || 7 != 8 / 2); }");
    }

    #[test]
    fn round_trips_generated_workloads() {
        for w in pacer_workloads_sources() {
            round_trip(&w);
        }
    }

    /// Inline copies of small generated-workload shapes (avoiding a dev
    /// dependency cycle with pacer-workloads).
    fn pacer_workloads_sources() -> Vec<String> {
        vec!["
            shared sink; lock relay;
            fn flash(id) { sync relay { sink = sink + id; } }
            fn main() {
                let k = 0;
                while (k < 4) {
                    let a = spawn flash(k);
                    join a;
                    k = k + 1;
                }
            }
            "
        .to_string()]
    }

    #[test]
    fn negative_literals_print_parseable() {
        round_trip("fn main() { let a = 1 - -2; let b = -3; }");
    }

    #[test]
    fn printed_text_is_stable() {
        // print(parse(print(p))) == print(p): canonical form is a fixpoint.
        let p = parse("shared x; fn main() { x = (1 + 2) * 3; }").unwrap();
        let once = print(&p);
        let twice = print(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
