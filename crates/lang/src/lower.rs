//! Lowering: AST → instrumented stack-machine IR.
//!
//! This pass plays the role of the paper's compiler instrumentation (§4):
//! every access to potentially shared data (shared scalars, array elements,
//! and heap fields) is compiled to an instruction carrying a static
//! [`SiteId`]; field accesses proven thread-local by the
//! [escape analysis](crate::escape) are compiled with `instrumented:
//! false` and never reach the detector.
//!
//! Sites are numbered consecutively within each function, so dividing a
//! site id by a region size recovers a LITERACE-style "method" region.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pacer_trace::SiteId;

use crate::ast::*;
use crate::escape::{analyze, EscapeInfo};
use crate::ir::{CompiledFunction, CompiledProgram, Instr, SiteInfo};

/// A semantic error found while lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// The function being compiled, if any.
    pub function: Option<String>,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in fn {name}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for CompileError {}

#[derive(Clone, Copy)]
enum GlobalRef {
    Scalar(u32),
    Array { base: u32, len: u32 },
}

struct ProgramCtx {
    globals: HashMap<String, GlobalRef>,
    n_global_slots: u32,
    locks: HashMap<String, u32>,
    volatiles: HashMap<String, u32>,
    functions: HashMap<String, (u16, usize)>, // name -> (index, arity)
    field_names: Vec<String>,
    field_ids: HashMap<String, u16>,
    sites: Vec<SiteInfo>,
}

/// Site ids are padded to this alignment at every function boundary, so
/// `site / REGION_ALIGN` never crosses a function: integer-dividing a site
/// id recovers LITERACE's "method" region exactly.
pub const REGION_ALIGN: u32 = 64;

impl ProgramCtx {
    /// Pads the site table to the next region boundary (called at each
    /// function start).
    fn align_sites(&mut self) {
        while !(self.sites.len() as u32).is_multiple_of(REGION_ALIGN) {
            self.sites.push(SiteInfo {
                function: u16::MAX,
                description: "(padding)".to_string(),
            });
        }
    }

    fn field_id(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.field_ids.get(name) {
            return id;
        }
        let id = self.field_names.len() as u16;
        self.field_names.push(name.to_string());
        self.field_ids.insert(name.to_string(), id);
        id
    }

    fn new_site(&mut self, function: u16, description: String) -> SiteId {
        let id = SiteId::new(self.sites.len() as u32);
        self.sites.push(SiteInfo {
            function,
            description,
        });
        id
    }
}

struct FnCtx<'p> {
    ctx: &'p mut ProgramCtx,
    fn_name: String,
    fn_index: u16,
    locals: HashMap<String, u16>,
    escape: EscapeInfo,
    code: Vec<Instr>,
    /// Locks held by enclosing `sync` blocks (for `return` unwinding).
    lock_stack: Vec<u32>,
}

/// Compiles a parsed program.
///
/// # Errors
///
/// Reports undeclared names, arity mismatches, shape mismatches (indexing
/// a scalar, assigning to an array name), and a missing `main`.
///
/// # Examples
///
/// ```
/// let program = pacer_lang::parse("shared x; fn main() { x = x + 1; }")?;
/// let compiled = pacer_lang::compile(&program)?;
/// assert_eq!(compiled.instrumented_sites(), 2, "one read + one write site");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    let mut globals = HashMap::new();
    let mut n_global_slots = 0u32;
    for s in &program.shareds {
        let r = match s.len {
            None => {
                let r = GlobalRef::Scalar(n_global_slots);
                n_global_slots += 1;
                r
            }
            Some(len) => {
                let r = GlobalRef::Array {
                    base: n_global_slots,
                    len,
                };
                n_global_slots += len;
                r
            }
        };
        if globals.insert(s.name.clone(), r).is_some() {
            return Err(CompileError {
                function: None,
                message: format!("duplicate shared declaration `{}`", s.name),
            });
        }
    }
    let locks: HashMap<String, u32> = program
        .locks
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u32))
        .collect();
    let volatiles: HashMap<String, u32> = program
        .volatiles
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u32))
        .collect();
    let functions: HashMap<String, (u16, usize)> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), (i as u16, f.params.len())))
        .collect();
    if functions.len() != program.functions.len() {
        return Err(CompileError {
            function: None,
            message: "duplicate function definition".into(),
        });
    }

    let mut ctx = ProgramCtx {
        globals,
        n_global_slots,
        locks,
        volatiles,
        functions,
        field_names: Vec::new(),
        field_ids: HashMap::new(),
        sites: Vec::new(),
    };

    let mut compiled_fns = Vec::with_capacity(program.functions.len());
    for (i, f) in program.functions.iter().enumerate() {
        ctx.align_sites();
        let mut fc = FnCtx {
            fn_name: f.name.clone(),
            fn_index: i as u16,
            locals: f
                .params
                .iter()
                .enumerate()
                .map(|(j, p)| (p.clone(), j as u16))
                .collect(),
            escape: analyze(f),
            code: Vec::new(),
            lock_stack: Vec::new(),
            ctx: &mut ctx,
        };
        fc.block(&f.body)?;
        // Implicit `return 0`.
        fc.code.push(Instr::Const(0));
        fc.code.push(Instr::Return);
        compiled_fns.push(CompiledFunction {
            name: f.name.clone(),
            n_params: f.params.len() as u16,
            n_locals: fc.locals.len() as u16,
            code: fc.code,
        });
    }

    let entry = ctx
        .functions
        .get("main")
        .map(|&(i, _)| i)
        .ok_or_else(|| CompileError {
            function: None,
            message: "program has no `main` function".into(),
        })?;

    Ok(CompiledProgram {
        functions: compiled_fns,
        entry,
        globals: ctx.n_global_slots,
        locks: ctx.locks.len() as u32,
        volatiles: ctx.volatiles.len() as u32,
        sites: ctx.sites,
        field_names: ctx.field_names,
    })
}

impl FnCtx<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError {
            function: Some(self.fn_name.clone()),
            message: message.into(),
        })
    }

    fn local(&mut self, name: &str) -> u16 {
        if let Some(&i) = self.locals.get(name) {
            return i;
        }
        let i = self.locals.len() as u16;
        self.locals.insert(name.to_string(), i);
        i
    }

    fn site(&mut self, what: &str, kind: &str) -> SiteId {
        let desc = format!("{}: {} ({})", self.fn_name, what, kind);
        self.ctx.new_site(self.fn_index, desc)
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { name, init } => {
                self.expr(init)?;
                let slot = self.local(name);
                self.code.push(Instr::StoreLocal(slot));
            }
            Stmt::Assign { target, value } => match target {
                LValue::Name(name) => {
                    if self.locals.contains_key(name.as_str()) {
                        self.expr(value)?;
                        let slot = self.locals[name.as_str()];
                        self.code.push(Instr::StoreLocal(slot));
                    } else if let Some(&vid) = self.ctx.volatiles.get(name) {
                        self.expr(value)?;
                        self.code.push(Instr::StoreVolatile(vid));
                    } else if let Some(&g) = self.ctx.globals.get(name) {
                        match g {
                            GlobalRef::Scalar(slot) => {
                                self.expr(value)?;
                                let site = self.site(name, "write");
                                self.code.push(Instr::StoreGlobal { slot, site });
                            }
                            GlobalRef::Array { .. } => {
                                return self
                                    .err(format!("`{name}` is an array; assign to an element"));
                            }
                        }
                    } else {
                        return self.err(format!("assignment to undeclared `{name}`"));
                    }
                }
                LValue::Index(name, index) => {
                    let Some(&g) = self.ctx.globals.get(name) else {
                        return self.err(format!("undeclared shared array `{name}`"));
                    };
                    let GlobalRef::Array { base, len } = g else {
                        return self.err(format!("`{name}` is a scalar, not an array"));
                    };
                    self.expr(index)?;
                    self.expr(value)?;
                    let site = self.site(&format!("{name}[..]"), "write");
                    self.code.push(Instr::StoreElem { base, len, site });
                }
                LValue::Field(obj, field) => {
                    let Some(&slot) = self.locals.get(obj.as_str()) else {
                        return self.err(format!("field store through undeclared local `{obj}`"));
                    };
                    self.code.push(Instr::LoadLocal(slot));
                    self.expr(value)?;
                    let instrumented = !self.escape.is_provably_local(obj);
                    let field_id = self.ctx.field_id(field);
                    let kind = if instrumented {
                        "write"
                    } else {
                        "write, local: elided"
                    };
                    let site = self.site(&format!("{obj}.{field}"), kind);
                    self.code.push(Instr::StoreField {
                        field: field_id,
                        site,
                        instrumented,
                    });
                }
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond)?;
                let jz = self.emit_placeholder();
                self.block(then_branch)?;
                if else_branch.is_empty() {
                    let end = self.code.len() as u32;
                    self.code[jz] = Instr::JumpIfZero(end);
                } else {
                    let jmp = self.code.len();
                    self.code.push(Instr::Jump(0));
                    let else_start = self.code.len() as u32;
                    self.code[jz] = Instr::JumpIfZero(else_start);
                    self.block(else_branch)?;
                    let end = self.code.len() as u32;
                    self.code[jmp] = Instr::Jump(end);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.code.len() as u32;
                self.expr(cond)?;
                let jz = self.emit_placeholder();
                self.block(body)?;
                self.code.push(Instr::Jump(top));
                let end = self.code.len() as u32;
                self.code[jz] = Instr::JumpIfZero(end);
            }
            Stmt::Sync { lock, body } => {
                let Some(&m) = self.ctx.locks.get(lock) else {
                    return self.err(format!("undeclared lock `{lock}`"));
                };
                self.code.push(Instr::Acquire(m));
                self.lock_stack.push(m);
                self.block(body)?;
                self.lock_stack.pop();
                self.code.push(Instr::Release(m));
            }
            Stmt::Join { thread } => {
                self.expr(thread)?;
                self.code.push(Instr::JoinThread);
            }
            Stmt::Wait { lock } => {
                let Some(&m) = self.ctx.locks.get(lock) else {
                    return self.err(format!("undeclared lock `{lock}`"));
                };
                if !self.lock_stack.contains(&m) {
                    return self.err(format!("`wait {lock}` outside a `sync {lock}` block"));
                }
                self.code.push(Instr::WaitRelease(m));
                self.code.push(Instr::Acquire(m));
            }
            Stmt::Notify { lock, all } => {
                let Some(&m) = self.ctx.locks.get(lock) else {
                    return self.err(format!("undeclared lock `{lock}`"));
                };
                if !self.lock_stack.contains(&m) {
                    return self.err(format!("`notify {lock}` outside a `sync {lock}` block"));
                }
                self.code.push(Instr::Notify { lock: m, all: *all });
            }
            Stmt::Return { value } => {
                match value {
                    Some(v) => self.expr(v)?,
                    None => self.code.push(Instr::Const(0)),
                }
                // Unwind any `sync` blocks we are returning out of.
                for &m in self.lock_stack.clone().iter().rev() {
                    self.code.push(Instr::Release(m));
                }
                self.code.push(Instr::Return);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Instr::Pop);
            }
        }
        Ok(())
    }

    fn emit_placeholder(&mut self) -> usize {
        let at = self.code.len();
        self.code.push(Instr::JumpIfZero(0));
        at
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(v) => self.code.push(Instr::Const(*v)),
            Expr::Name(name) => {
                if let Some(&slot) = self.locals.get(name.as_str()) {
                    self.code.push(Instr::LoadLocal(slot));
                } else if let Some(&vid) = self.ctx.volatiles.get(name) {
                    self.code.push(Instr::LoadVolatile(vid));
                } else if let Some(&g) = self.ctx.globals.get(name) {
                    match g {
                        GlobalRef::Scalar(slot) => {
                            let site = self.site(name, "read");
                            self.code.push(Instr::LoadGlobal { slot, site });
                        }
                        GlobalRef::Array { .. } => {
                            return self.err(format!("`{name}` is an array; index it"));
                        }
                    }
                } else {
                    return self.err(format!("undeclared name `{name}`"));
                }
            }
            Expr::Index(name, index) => {
                let Some(&g) = self.ctx.globals.get(name) else {
                    return self.err(format!("undeclared shared array `{name}`"));
                };
                let GlobalRef::Array { base, len } = g else {
                    return self.err(format!("`{name}` is a scalar, not an array"));
                };
                self.expr(index)?;
                let site = self.site(&format!("{name}[..]"), "read");
                self.code.push(Instr::LoadElem { base, len, site });
            }
            Expr::Field(obj, field) => {
                let Some(&slot) = self.locals.get(obj.as_str()) else {
                    return self.err(format!("field read through undeclared local `{obj}`"));
                };
                self.code.push(Instr::LoadLocal(slot));
                let instrumented = !self.escape.is_provably_local(obj);
                let field_id = self.ctx.field_id(field);
                let kind = if instrumented {
                    "read"
                } else {
                    "read, local: elided"
                };
                let site = self.site(&format!("{obj}.{field}"), kind);
                self.code.push(Instr::LoadField {
                    field: field_id,
                    site,
                    instrumented,
                });
            }
            Expr::New => self.code.push(Instr::NewObject),
            Expr::Unary(op, inner) => {
                self.expr(inner)?;
                self.code.push(match op {
                    UnOp::Neg => Instr::Neg,
                    UnOp::Not => Instr::Not,
                });
            }
            Expr::Binary(op, l, r) => {
                self.expr(l)?;
                self.expr(r)?;
                self.code.push(Instr::Bin(*op));
            }
            Expr::Spawn { func, args } => {
                let (idx, arity) = self.resolve_fn(func)?;
                if args.len() != arity {
                    return self.err(format!(
                        "spawn {func}: expected {arity} args, got {}",
                        args.len()
                    ));
                }
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Instr::Spawn {
                    func: idx,
                    argc: args.len() as u8,
                });
            }
            Expr::Call { func, args } => {
                let (idx, arity) = self.resolve_fn(func)?;
                if args.len() != arity {
                    return self.err(format!(
                        "call {func}: expected {arity} args, got {}",
                        args.len()
                    ));
                }
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Instr::Call {
                    func: idx,
                    argc: args.len() as u8,
                });
            }
        }
        Ok(())
    }

    fn resolve_fn(&self, name: &str) -> Result<(u16, usize), CompileError> {
        self.ctx
            .functions
            .get(name)
            .copied()
            .ok_or_else(|| CompileError {
                function: Some(self.fn_name.clone()),
                message: format!("call to undefined function `{name}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> CompileError {
        compile(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn globals_get_slots() {
        let p = compile_src("shared x; shared a[4]; shared y; fn main() {}");
        assert_eq!(p.globals, 6);
    }

    #[test]
    fn scalar_accesses_are_instrumented_with_sites() {
        let p = compile_src("shared x; fn main() { x = x + 1; }");
        let main = &p.functions[p.entry as usize];
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::LoadGlobal { slot: 0, .. })));
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobal { slot: 0, .. })));
        assert_eq!(p.sites.len(), 2);
        assert!(p
            .describe_site(pacer_trace::SiteId::new(0))
            .contains("read"));
    }

    #[test]
    fn local_object_accesses_are_elided() {
        let p = compile_src("fn main() { let o = new obj; o.f = 1; let v = o.f; }");
        let main = &p.functions[0];
        let fields: Vec<bool> =
            main.code
                .iter()
                .filter_map(|i| match i {
                    Instr::LoadField { instrumented, .. }
                    | Instr::StoreField { instrumented, .. } => Some(*instrumented),
                    _ => None,
                })
                .collect();
        assert_eq!(fields, vec![false, false], "both accesses elided");
    }

    #[test]
    fn escaping_object_accesses_are_instrumented() {
        let p = compile_src("shared g; fn main() { let o = new obj; g = o; o.f = 1; }");
        let main = &p.functions[0];
        assert!(main.code.iter().any(|i| matches!(
            i,
            Instr::StoreField {
                instrumented: true,
                ..
            }
        )));
    }

    #[test]
    fn sync_compiles_to_acquire_release() {
        let p = compile_src("lock m; fn main() { sync m { } }");
        assert_eq!(
            p.functions[0].code[..2],
            [Instr::Acquire(0), Instr::Release(0)]
        );
    }

    #[test]
    fn return_inside_sync_releases_locks() {
        let p = compile_src("lock m; lock l; fn main() { sync m { sync l { return 3; } } }");
        let code = &p.functions[0].code;
        let ret = code.iter().position(|i| *i == Instr::Return).unwrap();
        assert_eq!(code[ret - 1], Instr::Release(0), "outer lock released");
        assert_eq!(code[ret - 2], Instr::Release(1), "inner lock released");
    }

    #[test]
    fn while_loops_jump_back() {
        let p = compile_src("shared x; fn main() { while (x < 3) { x = x + 1; } }");
        let code = &p.functions[0].code;
        assert!(code.iter().any(|i| matches!(i, Instr::Jump(0))));
        assert!(code.iter().any(|i| matches!(i, Instr::JumpIfZero(_))));
    }

    #[test]
    fn if_else_branches() {
        let p = compile_src("shared x; fn main() { if (x) { x = 1; } else { x = 2; } }");
        let code = &p.functions[0].code;
        let jz = code
            .iter()
            .find_map(|i| match i {
                Instr::JumpIfZero(t) => Some(*t),
                _ => None,
            })
            .unwrap();
        assert!(matches!(code[jz as usize - 1], Instr::Jump(_)));
    }

    #[test]
    fn volatile_accesses_use_volatile_instrs() {
        let p = compile_src("volatile v; fn main() { v = v + 1; }");
        let code = &p.functions[0].code;
        assert!(code.contains(&Instr::LoadVolatile(0)));
        assert!(code.contains(&Instr::StoreVolatile(0)));
        assert_eq!(p.sites.len(), 0, "volatiles never race: no sites");
    }

    #[test]
    fn spawn_and_call_resolve_arity() {
        let p = compile_src("fn w(a, b) {} fn main() { let t = spawn w(1, 2); join t; w(3, 4); }");
        let code = &p.functions[1].code;
        assert!(code
            .iter()
            .any(|i| matches!(i, Instr::Spawn { func: 0, argc: 2 })));
        assert!(code
            .iter()
            .any(|i| matches!(i, Instr::Call { func: 0, argc: 2 })));
        assert!(code.contains(&Instr::JoinThread));
    }

    #[test]
    fn functions_end_with_return() {
        let p = compile_src("fn main() {}");
        assert_eq!(p.functions[0].code, vec![Instr::Const(0), Instr::Return]);
    }

    #[test]
    fn field_names_are_interned() {
        let p = compile_src(
            "shared g; fn main() { let o = new obj; g = o; o.a = 1; o.b = 2; o.a = 3; }",
        );
        assert_eq!(p.field_names, vec!["a", "b"]);
    }

    #[test]
    fn error_missing_main() {
        let e = compile_err("fn helper() {}");
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn error_undeclared_name() {
        let e = compile_err("fn main() { x = 1; }");
        assert!(e.to_string().contains("undeclared"));
        assert!(e.to_string().contains("in fn main"));
    }

    #[test]
    fn error_bad_arity() {
        let e = compile_err("fn w(a) {} fn main() { w(); }");
        assert!(e.message.contains("expected 1 args"));
    }

    #[test]
    fn error_index_scalar() {
        let e = compile_err("shared x; fn main() { x[0] = 1; }");
        assert!(e.message.contains("scalar"));
    }

    #[test]
    fn error_assign_whole_array() {
        let e = compile_err("shared a[2]; fn main() { a = 1; }");
        assert!(e.message.contains("array"));
    }

    #[test]
    fn error_undefined_function() {
        let e = compile_err("fn main() { nope(); }");
        assert!(e.message.contains("undefined function"));
    }

    #[test]
    fn error_duplicate_shared() {
        let e = compile_err("shared x; shared x; fn main() {}");
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn sites_are_consecutive_per_function() {
        let p = compile_src(
            "shared x; shared y;
             fn a() { x = 1; y = 2; }
             fn main() { x = 3; }",
        );
        assert_eq!(p.sites[0].function, 0);
        assert_eq!(p.sites[1].function, 0);
        // The second function starts at the next region boundary.
        assert_eq!(p.sites[REGION_ALIGN as usize].function, 1);
        assert_eq!(p.sites[2].function, u16::MAX, "padding");
        assert_eq!(p.instrumented_sites(), 3);
    }
}

#[cfg(test)]
mod wait_notify_tests {
    use super::*;
    use crate::parse;

    #[test]
    fn wait_compiles_to_release_then_reacquire() {
        let p = compile(&parse("lock m; fn main() { sync m { wait m; } }").unwrap()).unwrap();
        let code = &p.functions[0].code;
        let pos = code
            .iter()
            .position(|i| matches!(i, Instr::WaitRelease(0)))
            .expect("wait emitted");
        assert_eq!(code[pos + 1], Instr::Acquire(0), "monitor reacquired");
    }

    #[test]
    fn notify_variants_compile() {
        let p = compile(&parse("lock m; fn main() { sync m { notify m; notifyall m; } }").unwrap())
            .unwrap();
        let code = &p.functions[0].code;
        assert!(code.contains(&Instr::Notify {
            lock: 0,
            all: false
        }));
        assert!(code.contains(&Instr::Notify { lock: 0, all: true }));
    }

    #[test]
    fn wait_outside_sync_is_rejected() {
        let e = compile(&parse("lock m; fn main() { wait m; }").unwrap()).unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
        let e = compile(&parse("lock m; lock l; fn main() { sync l { notify m; } }").unwrap())
            .unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
    }

    #[test]
    fn wait_on_undeclared_lock_is_rejected() {
        let e = compile(&parse("fn main() { wait nothere; }").unwrap()).unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn wait_notify_round_trip_through_printer() {
        let src = "lock m; fn main() { sync m { wait m; notify m; notifyall m; } }";
        let p1 = parse(src).unwrap();
        let p2 = parse(&crate::print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }
}
