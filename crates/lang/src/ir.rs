//! The stack-machine IR produced by the lowering pass.

use std::fmt;

use pacer_trace::SiteId;

pub use crate::ast::BinOp;

/// One IR instruction. The virtual machine is a simple operand-stack
/// machine with per-frame local slots.
///
/// Stack effects are noted as `[inputs] → [outputs]` (top of stack last).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `[] → [k]`
    Const(i64),
    /// `[] → [locals[i]]`
    LoadLocal(u16),
    /// `[v] → []`, `locals[i] = v`
    StoreLocal(u16),
    /// `[] → [global[slot]]` — instrumented shared-scalar read.
    LoadGlobal {
        /// Global slot (also the runtime `VarId`).
        slot: u32,
        /// Static race-check site.
        site: SiteId,
    },
    /// `[v] → []` — instrumented shared-scalar write.
    StoreGlobal {
        /// Global slot.
        slot: u32,
        /// Static race-check site.
        site: SiteId,
    },
    /// `[i] → [global[base + i mod len]]` — instrumented array read
    /// (indices wrap, keeping every access in bounds).
    LoadElem {
        /// First slot of the array.
        base: u32,
        /// Array length.
        len: u32,
        /// Static race-check site.
        site: SiteId,
    },
    /// `[i, v] → []` — instrumented array write.
    StoreElem {
        /// First slot of the array.
        base: u32,
        /// Array length.
        len: u32,
        /// Static race-check site.
        site: SiteId,
    },
    /// `[] → [ref]` — heap allocation.
    NewObject,
    /// `[ref] → [value]` — field read; `instrumented == false` when escape
    /// analysis proved the object thread-local (§4).
    LoadField {
        /// Interned field name.
        field: u16,
        /// Static race-check site.
        site: SiteId,
        /// Whether the access emits a race-check event.
        instrumented: bool,
    },
    /// `[ref, v] → []` — field write.
    StoreField {
        /// Interned field name.
        field: u16,
        /// Static race-check site.
        site: SiteId,
        /// Whether the access emits a race-check event.
        instrumented: bool,
    },
    /// `[] → [v]` — volatile read (synchronization, never races).
    LoadVolatile(u32),
    /// `[v] → []` — volatile write.
    StoreVolatile(u32),
    /// `[] → []` — lock acquire (blocks if held).
    Acquire(u32),
    /// `[] → []` — lock release.
    Release(u32),
    /// `[] → []` — first half of `wait m`: releases the (held) lock and
    /// parks the thread on `m`'s wait queue. The compiler always emits an
    /// [`Instr::Acquire`] of the same lock immediately after, which the
    /// thread retries once notified (the monitor-reacquire half).
    WaitRelease(u32),
    /// `[] → []` — wakes one (`all == false`) or every waiter of lock `m`;
    /// a no-op when nobody waits (like Java's `notify`).
    Notify {
        /// The lock whose wait queue is signalled.
        lock: u32,
        /// Wake all waiters instead of one.
        all: bool,
    },
    /// `[arg0..argN] → [thread]` — start a thread running function `func`.
    Spawn {
        /// Callee index.
        func: u16,
        /// Argument count.
        argc: u8,
    },
    /// `[arg0..argN] → [ret]` — same-thread call.
    Call {
        /// Callee index.
        func: u16,
        /// Argument count.
        argc: u8,
    },
    /// `[thread] → []` — blocks until the thread terminates.
    JoinThread,
    /// `[] → []` — unconditional branch.
    Jump(u32),
    /// `[v] → []` — branch when `v == 0`.
    JumpIfZero(u32),
    /// `[a, b] → [a ⊕ b]`
    Bin(BinOp),
    /// `[a] → [-a]`
    Neg,
    /// `[a] → [!a]` (1 if zero, else 0)
    Not,
    /// `[v] → []`
    Pop,
    /// `[v] → returns v` — pops the frame; the last instruction of every
    /// function body.
    Return,
}

/// Descriptive metadata for one static access site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteInfo {
    /// Index of the function containing the site.
    pub function: u16,
    /// Human-readable location, e.g. `worker: counter (write)`.
    pub description: String,
}

/// A lowered function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledFunction {
    /// Source name.
    pub name: String,
    /// Number of parameters (stored in the first local slots).
    pub n_params: u16,
    /// Total local slots (params included).
    pub n_locals: u16,
    /// Instructions; always ends with [`Instr::Return`].
    pub code: Vec<Instr>,
}

/// A compiled program, ready for the `pacer-runtime` virtual machine.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    /// Function bodies; [`CompiledProgram::entry`] indexes `main`.
    pub functions: Vec<CompiledFunction>,
    /// Index of `main`.
    pub entry: u16,
    /// Number of shared global slots (scalar = 1 slot, array = its length).
    /// Runtime `VarId`s `0..globals` are globals; object fields allocate
    /// ids above this.
    pub globals: u32,
    /// Number of declared locks.
    pub locks: u32,
    /// Number of declared volatiles.
    pub volatiles: u32,
    /// Site metadata, indexed by [`SiteId`]. Sites are numbered
    /// consecutively within each function and padded to
    /// [`crate::lower::REGION_ALIGN`] at function boundaries, so
    /// `site / REGION_ALIGN` is exactly the containing function — the
    /// LITERACE "method" region. Padding entries have `function ==
    /// u16::MAX`.
    pub sites: Vec<SiteInfo>,
    /// Interned field names.
    pub field_names: Vec<String>,
}

impl CompiledProgram {
    /// Looks up a compiled function by name.
    pub fn function(&self, name: &str) -> Option<(u16, &CompiledFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (i as u16, f))
    }

    /// Human-readable description of a site (for race reports).
    pub fn describe_site(&self, site: SiteId) -> &str {
        self.sites
            .get(site.index())
            .map_or("<unknown site>", |s| s.description.as_str())
    }

    /// Count of instrumented access instructions (static sites),
    /// excluding region-alignment padding.
    pub fn instrumented_sites(&self) -> usize {
        self.sites.iter().filter(|s| s.function != u16::MAX).count()
    }
}

impl fmt::Display for CompiledFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {} (params={}, locals={})",
            self.name, self.n_params, self.n_locals
        )?;
        for (i, instr) in self.code.iter().enumerate() {
            writeln!(f, "  {i:4}: {instr:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_lookup_and_describe() {
        let prog = CompiledProgram {
            functions: vec![CompiledFunction {
                name: "main".into(),
                n_params: 0,
                n_locals: 0,
                code: vec![Instr::Const(0), Instr::Return],
            }],
            sites: vec![SiteInfo {
                function: 0,
                description: "main: x (write)".into(),
            }],
            ..CompiledProgram::default()
        };
        assert_eq!(prog.function("main").unwrap().0, 0);
        assert!(prog.function("nope").is_none());
        assert_eq!(prog.describe_site(SiteId::new(0)), "main: x (write)");
        assert_eq!(prog.describe_site(SiteId::new(9)), "<unknown site>");
        assert_eq!(prog.instrumented_sites(), 1);
    }

    #[test]
    fn display_lists_instructions() {
        let f = CompiledFunction {
            name: "main".into(),
            n_params: 0,
            n_locals: 1,
            code: vec![
                Instr::Const(3),
                Instr::StoreLocal(0),
                Instr::Const(0),
                Instr::Return,
            ],
        };
        let text = f.to_string();
        assert!(text.contains("fn main"));
        assert!(text.contains("Const(3)"));
    }
}
