//! Recursive-descent parser for the mini concurrent language.
//!
//! Grammar (EBNF, `;`-terminated statements, C-style expressions):
//!
//! ```text
//! program   := (shared | lock | volatile | function)*
//! shared    := "shared" IDENT ("[" INT "]")? ";"
//! lock      := "lock" IDENT ";"
//! volatile  := "volatile" IDENT ";"
//! function  := "fn" IDENT "(" params? ")" block
//! block     := "{" stmt* "}"
//! stmt      := "let" IDENT "=" expr ";"
//!            | "if" "(" expr ")" block ("else" block)?
//!            | "while" "(" expr ")" block
//!            | "sync" IDENT block
//!            | "join" expr ";"
//!            | "return" expr? ";"
//!            | lvalue "=" expr ";"
//!            | expr ";"
//! lvalue    := IDENT | IDENT "[" expr "]" | IDENT "." IDENT
//! expr      := or ; or := and ("||" and)* ; and := cmp ("&&" cmp)*
//! cmp       := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add       := mul (("+"|"-") mul)* ; mul := unary (("*"|"/"|"%") unary)*
//! unary     := ("-"|"!") unary | primary
//! primary   := INT | "new" "obj" | "spawn" IDENT "(" args? ")"
//!            | IDENT "(" args? ")" | lvalue | "(" expr ")"
//! ```

use std::error::Error;
use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};

/// A syntax error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

const KEYWORDS: &[&str] = &[
    "fn",
    "let",
    "if",
    "else",
    "while",
    "sync",
    "spawn",
    "join",
    "new",
    "obj",
    "shared",
    "lock",
    "volatile",
    "return",
    "wait",
    "notify",
    "notifyall",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a full program.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line on malformed input.
///
/// # Examples
///
/// ```
/// let p = pacer_lang::parse("shared x; fn main() { x = 3; }")?;
/// assert_eq!(p.shareds.len(), 1);
/// assert_eq!(p.functions[0].name, "main");
/// # Ok::<(), pacer_lang::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let other = other.clone();
                self.error(format!("expected `{p}`, found {other}"))
            }
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    fn eat_if_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            let found = self.peek().clone();
            self.error(format!("expected `{kw}`, found {found}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => {
                let other = other.clone();
                self.error(format!("expected identifier, found {other}"))
            }
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(v)
            }
            other => {
                let other = other.clone();
                self.error(format!("expected integer, found {other}"))
            }
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Ident(kw) => match kw.as_str() {
                    "shared" => {
                        self.bump();
                        let name = self.ident()?;
                        let len = if self.eat_if_punct("[") {
                            let n = self.int()?;
                            if n <= 0 || n > 1_000_000 {
                                return self.error("array length must be in 1..=1000000");
                            }
                            self.eat_punct("]")?;
                            Some(n as u32)
                        } else {
                            None
                        };
                        self.eat_punct(";")?;
                        program.shareds.push(SharedDecl { name, len });
                    }
                    "lock" => {
                        self.bump();
                        let name = self.ident()?;
                        self.eat_punct(";")?;
                        program.locks.push(name);
                    }
                    "volatile" => {
                        self.bump();
                        let name = self.ident()?;
                        self.eat_punct(";")?;
                        program.volatiles.push(name);
                    }
                    "fn" => {
                        program.functions.push(self.function()?);
                    }
                    other => {
                        let other = other.to_string();
                        return self.error(format!(
                            "expected `shared`, `lock`, `volatile`, or `fn`, found `{other}`"
                        ));
                    }
                },
                other => {
                    let other = other.clone();
                    return self.error(format!("expected a declaration, found {other}"));
                }
            }
        }
        Ok(program)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.eat_keyword("fn")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                params.push(self.ident()?);
                if !self.eat_if_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.error("unterminated block: expected `}`");
            }
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.at_keyword("let") {
            self.bump();
            let name = self.ident()?;
            self.eat_punct("=")?;
            let init = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Let { name, init });
        }
        if self.at_keyword("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let then_branch = self.block()?;
            let else_branch = if self.at_keyword("else") {
                self.bump();
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.at_keyword("while") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_keyword("sync") {
            self.bump();
            let lock = self.ident()?;
            let body = self.block()?;
            return Ok(Stmt::Sync { lock, body });
        }
        if self.at_keyword("join") {
            self.bump();
            let thread = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Join { thread });
        }
        if self.at_keyword("wait") {
            self.bump();
            let lock = self.ident()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Wait { lock });
        }
        if self.at_keyword("notify") {
            self.bump();
            let lock = self.ident()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Notify { lock, all: false });
        }
        if self.at_keyword("notifyall") {
            self.bump();
            let lock = self.ident()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Notify { lock, all: true });
        }
        if self.at_keyword("return") {
            self.bump();
            let value = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.eat_punct(";")?;
            return Ok(Stmt::Return { value });
        }
        // Assignment or expression statement. Try an lvalue followed by `=`.
        let checkpoint = self.pos;
        if let TokenKind::Ident(name) = self.peek().clone() {
            if !KEYWORDS.contains(&name.as_str()) {
                self.bump();
                if self.eat_if_punct("=") {
                    let value = self.expr()?;
                    self.eat_punct(";")?;
                    return Ok(Stmt::Assign {
                        target: LValue::Name(name),
                        value,
                    });
                }
                if self.at_punct("[") {
                    self.bump();
                    let index = self.expr()?;
                    self.eat_punct("]")?;
                    if self.eat_if_punct("=") {
                        let value = self.expr()?;
                        self.eat_punct(";")?;
                        return Ok(Stmt::Assign {
                            target: LValue::Index(name, Box::new(index)),
                            value,
                        });
                    }
                    // Not an assignment: rewind and parse as expression.
                    self.pos = checkpoint;
                } else if self.at_punct(".") {
                    self.bump();
                    let field = self.ident()?;
                    if self.eat_if_punct("=") {
                        let value = self.expr()?;
                        self.eat_punct(";")?;
                        return Ok(Stmt::Assign {
                            target: LValue::Field(name, field),
                            value,
                        });
                    }
                    self.pos = checkpoint;
                } else {
                    self.pos = checkpoint;
                }
            }
        }
        let expr = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Expr(expr))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_if_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_if_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Punct("==") => Some(BinOp::Eq),
            TokenKind::Punct("!=") => Some(BinOp::Ne),
            TokenKind::Punct("<") => Some(BinOp::Lt),
            TokenKind::Punct("<=") => Some(BinOp::Le),
            TokenKind::Punct(">") => Some(BinOp::Gt),
            TokenKind::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("+") => BinOp::Add,
                TokenKind::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("*") => BinOp::Mul,
                TokenKind::Punct("/") => BinOp::Div,
                TokenKind::Punct("%") => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_if_punct("-") {
            let inner = self.unary_expr()?;
            // Negated literals fold at parse time, so `Expr::Int` covers
            // the full i64 range and `-5` round-trips through the printer
            // as a literal. `Unary(Neg, Int(_))` therefore never appears
            // in parsed ASTs.
            if let Expr::Int(v) = inner {
                return Ok(Expr::Int(v.wrapping_neg()));
            }
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat_if_punct("!") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        if let TokenKind::Int(v) = self.peek() {
            let v = *v;
            self.bump();
            return Ok(Expr::Int(v));
        }
        if self.eat_if_punct("(") {
            let e = self.expr()?;
            self.eat_punct(")")?;
            return Ok(e);
        }
        if self.at_keyword("new") {
            self.bump();
            self.eat_keyword("obj")?;
            return Ok(Expr::New);
        }
        if self.at_keyword("spawn") {
            self.bump();
            let func = self.ident()?;
            let args = self.call_args()?;
            return Ok(Expr::Spawn { func, args });
        }
        let name = self.ident()?;
        if self.at_punct("(") {
            let args = self.call_args()?;
            return Ok(Expr::Call { func: name, args });
        }
        if self.eat_if_punct("[") {
            let index = self.expr()?;
            self.eat_punct("]")?;
            return Ok(Expr::Index(name, Box::new(index)));
        }
        if self.eat_if_punct(".") {
            let field = self.ident()?;
            return Ok(Expr::Field(name, field));
        }
        Ok(Expr::Name(name))
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat_punct("(")?;
        let mut args = Vec::new();
        if !self.at_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_if_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let p = parse("shared x; shared a[4]; lock m; volatile v; fn main() {}").unwrap();
        assert_eq!(p.shareds.len(), 2);
        assert_eq!(p.shareds[1].len, Some(4));
        assert_eq!(p.locks, vec!["m"]);
        assert_eq!(p.volatiles, vec!["v"]);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parses_statements() {
        let p = parse(
            "
            shared x; lock m;
            fn main() {
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { x = x + i; } else { x = x - 1; }
                    sync m { x = 0; }
                    i = i + 1;
                }
                return x;
            }
        ",
        )
        .unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[0], Stmt::Let { .. }));
        assert!(matches!(body[1], Stmt::While { .. }));
        assert!(matches!(body[2], Stmt::Return { .. }));
    }

    #[test]
    fn parses_spawn_join_and_calls() {
        let p = parse(
            "
            fn work(a, b) { return a + b; }
            fn main() {
                let t = spawn work(1, 2);
                join t;
                let r = work(3, 4);
                work(r, 0);
            }
        ",
        )
        .unwrap();
        let body = &p.functions[1].body;
        assert!(matches!(
            &body[0],
            Stmt::Let { init: Expr::Spawn { func, .. }, .. } if func == "work"
        ));
        assert!(matches!(&body[1], Stmt::Join { .. }));
        assert!(matches!(&body[3], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn parses_objects_and_fields() {
        let p = parse(
            "
            shared g;
            fn main() {
                let o = new obj;
                o.count = 3;
                let v = o.count;
                g = o.count + 1;
            }
        ",
        )
        .unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Let {
                init: Expr::New,
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::Assign { target: LValue::Field(o, f), .. } if o == "o" && f == "count"
        ));
    }

    #[test]
    fn parses_array_accesses() {
        let p = parse("shared a[8]; fn main() { a[3] = a[2] + 1; }").unwrap();
        assert!(matches!(
            &p.functions[0].body[0],
            Stmt::Assign {
                target: LValue::Index(..),
                value: Expr::Binary(..)
            }
        ));
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("fn main() { let x = 1 + 2 * 3 < 7 && 1; }").unwrap();
        let Stmt::Let { init, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        // && at the top.
        assert!(matches!(init, Expr::Binary(BinOp::And, ..)));
    }

    #[test]
    fn array_read_without_assign_is_expression() {
        let p = parse("shared a[2]; fn f(i) {} fn main() { f(a[1]); a[0]; }").unwrap();
        assert!(matches!(
            &p.functions[1].body[1],
            Stmt::Expr(Expr::Index(..))
        ));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("fn main() {\n  let = 3;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("identifier"));
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert!(parse("fn while() {}").is_err());
        assert!(parse("shared fn;").is_err());
    }

    #[test]
    fn unterminated_block_is_reported() {
        let err = parse("fn main() { let a = 1;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn empty_program_parses() {
        let p = parse("").unwrap();
        assert!(p.functions.is_empty());
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("fn main() { let a = - ! - 1; }").unwrap();
        let Stmt::Let { init, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::Unary(UnOp::Neg, _)));
    }
}
