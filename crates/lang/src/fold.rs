//! Constant folding: a semantics-preserving optimization pass.
//!
//! Folds compile-time-constant arithmetic, collapses `if`/`while` with
//! constant conditions, and prunes dead branches — the kind of cleanup a
//! JIT performs before the instrumentation pass runs. Crucially for a race
//! detector, the pass is *effect-preserving*: it never removes or reorders
//! shared-variable accesses, volatile accesses, lock operations, calls,
//! spawns, or joins, so the instrumented event stream of the optimized
//! program is a subset of the original only where control flow was provably
//! dead.
//!
//! # Examples
//!
//! ```
//! use pacer_lang::{fold_program, parse, print};
//!
//! let p = parse("shared x; fn main() { if (2 > 1) { x = 3 * 4; } else { x = 0; } }")?;
//! let folded = fold_program(&p);
//! let text = print(&folded);
//! assert!(text.contains("x = 12;"), "{text}");
//! assert!(!text.contains("else"), "dead branch pruned: {text}");
//! # Ok::<(), pacer_lang::ParseError>(())
//! ```

use crate::ast::*;

/// Folds every function of a program. Folds constants, prunes dead branches; see the module docs above.
pub fn fold_program(program: &Program) -> Program {
    Program {
        shareds: program.shareds.clone(),
        locks: program.locks.clone(),
        volatiles: program.volatiles.clone(),
        functions: program
            .functions
            .iter()
            .map(|f| Function {
                name: f.name.clone(),
                params: f.params.clone(),
                body: fold_block(&f.body),
            })
            .collect(),
    }
}

fn fold_block(body: &[Stmt]) -> Vec<Stmt> {
    body.iter().flat_map(fold_stmt).collect()
}

fn fold_stmt(stmt: &Stmt) -> Vec<Stmt> {
    match stmt {
        Stmt::Let { name, init } => vec![Stmt::Let {
            name: name.clone(),
            init: fold_expr(init),
        }],
        Stmt::Assign { target, value } => {
            let target = match target {
                LValue::Index(n, i) => LValue::Index(n.clone(), Box::new(fold_expr(i))),
                other => other.clone(),
            };
            vec![Stmt::Assign {
                target,
                value: fold_expr(value),
            }]
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond = fold_expr(cond);
            match const_of(&cond) {
                Some(0) => fold_block(else_branch),
                Some(_) => fold_block(then_branch),
                None => vec![Stmt::If {
                    cond,
                    then_branch: fold_block(then_branch),
                    else_branch: fold_block(else_branch),
                }],
            }
        }
        Stmt::While { cond, body } => {
            let cond = fold_expr(cond);
            match const_of(&cond) {
                // `while (0)` never runs; drop it entirely.
                Some(0) => vec![],
                // `while (k)` for nonzero k loops forever: keep as-is (the
                // body's effects are not ours to judge).
                _ => vec![Stmt::While {
                    cond,
                    body: fold_block(body),
                }],
            }
        }
        Stmt::Sync { lock, body } => vec![Stmt::Sync {
            lock: lock.clone(),
            body: fold_block(body),
        }],
        Stmt::Join { thread } => vec![Stmt::Join {
            thread: fold_expr(thread),
        }],
        Stmt::Wait { .. } | Stmt::Notify { .. } => vec![stmt.clone()],
        Stmt::Return { value } => vec![Stmt::Return {
            value: value.as_ref().map(fold_expr),
        }],
        Stmt::Expr(e) => vec![Stmt::Expr(fold_expr(e))],
    }
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        _ => None,
    }
}

fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Unary(op, inner) => {
            let inner = fold_expr(inner);
            match (op, const_of(&inner)) {
                (UnOp::Neg, Some(v)) => Expr::Int(v.wrapping_neg()),
                (UnOp::Not, Some(v)) => Expr::Int(i64::from(v == 0)),
                _ => Expr::Unary(*op, Box::new(inner)),
            }
        }
        Expr::Binary(op, l, r) => {
            let l = fold_expr(l);
            let r = fold_expr(r);
            if let (Some(a), Some(b)) = (const_of(&l), const_of(&r)) {
                if let Some(v) = eval_bin(*op, a, b) {
                    return Expr::Int(v);
                }
            }
            // Algebraic identities that cannot change effects (both sides
            // are pure once one is a literal and the other stays).
            match (op, const_of(&l), const_of(&r)) {
                (BinOp::Add, Some(0), _) => r,
                (BinOp::Add | BinOp::Sub, _, Some(0)) => l,
                (BinOp::Mul, _, Some(1)) => l,
                (BinOp::Mul, Some(1), _) => r,
                _ => Expr::Binary(*op, Box::new(l), Box::new(r)),
            }
        }
        Expr::Index(n, i) => Expr::Index(n.clone(), Box::new(fold_expr(i))),
        Expr::Spawn { func, args } => Expr::Spawn {
            func: func.clone(),
            args: args.iter().map(fold_expr).collect(),
        },
        Expr::Call { func, args } => Expr::Call {
            func: func.clone(),
            args: args.iter().map(fold_expr).collect(),
        },
        other => other.clone(),
    }
}

/// Evaluates a binary op on constants; `None` for division by zero (left
/// for the runtime to trap, preserving the error).
fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, print};

    fn folded(src: &str) -> String {
        print(&fold_program(&parse(src).unwrap()))
    }

    #[test]
    fn folds_arithmetic() {
        let t = folded("fn main() { let a = 2 + 3 * 4; }");
        assert!(t.contains("let a = 14;"), "{t}");
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let t = folded("fn main() { let a = (3 < 4) && !(0); }");
        assert!(t.contains("let a = 1;"), "{t}");
    }

    #[test]
    fn prunes_dead_if_branches() {
        let t = folded("shared x; fn main() { if (0) { x = 1; } else { x = 2; } }");
        assert!(t.contains("x = 2;"), "{t}");
        assert!(!t.contains("x = 1;"), "{t}");
        assert!(!t.contains("if"), "{t}");
    }

    #[test]
    fn drops_never_running_loops() {
        let t = folded("shared x; fn main() { while (1 > 2) { x = 1; } }");
        assert!(!t.contains("while"), "{t}");
    }

    #[test]
    fn keeps_infinite_loops() {
        let t = folded("shared x; fn main() { while (1) { x = 1; } }");
        assert!(t.contains("while (1)"), "{t}");
    }

    #[test]
    fn preserves_division_by_zero_for_runtime() {
        let t = folded("fn main() { let a = 1 / 0; }");
        assert!(t.contains("1 / 0"), "{t}");
    }

    #[test]
    fn identities_do_not_drop_effects() {
        // `x + 0` where x is a shared read must keep the read.
        let t = folded("shared x; fn main() { let a = x + 0; let b = 0 + x; let c = x * 1; }");
        assert_eq!(t.matches('x').count() - 1, 3, "all three reads kept: {t}");
    }

    #[test]
    fn folding_preserves_program_results() {
        // Fold, compile both, run both: same main result and same shared
        // access counts (single-threaded, so fully deterministic).
        let src = "
            shared x;
            fn main() {
                let i = 0;
                while (i < 2 + 3) {
                    if (1) { x = x + i * 1; }
                    if (0) { x = 999; }
                    i = i + 1 + 0;
                }
                return x;
            }
        ";
        let original = parse(src).unwrap();
        let folded = fold_program(&original);
        let run = |p: &Program| {
            let compiled = crate::compile(p).unwrap();
            // The lang crate has no VM; interpret via instruction counts is
            // not possible here, so compare compiled shapes instead:
            // the folded program must still contain the x accesses.
            compiled
        };
        let c1 = run(&original);
        let c2 = run(&folded);
        assert!(c2.instrumented_sites() <= c1.instrumented_sites());
        assert!(c2.instrumented_sites() >= 2, "x read+write survive");
        assert!(
            c2.functions[c2.entry as usize].code.len() < c1.functions[c1.entry as usize].code.len(),
            "folding shrinks code"
        );
    }

    #[test]
    fn folding_is_idempotent() {
        let p = parse("shared x; fn main() { x = (1 + 2) * (3 + 4) + x; }").unwrap();
        let once = fold_program(&p);
        let twice = fold_program(&once);
        assert_eq!(once, twice);
    }
}
