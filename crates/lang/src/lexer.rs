//! Tokenizer for the mini concurrent language.

use std::error::Error;
use std::fmt;

/// A lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A punctuation or operator lexeme (`"{"`, `"=="`, `"&&"`, …).
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A tokenization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

const PUNCTS2: &[&str] = &["==", "!=", "<=", ">=", "&&", "||"];
const PUNCTS1: &[&str] = &[
    "{", "}", "(", ")", "[", "]", ";", ",", "=", "+", "-", "*", "/", "%", "<", ">", "!", ".",
];

/// Tokenizes `source`. `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let bytes = source.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &source[start..i];
            let value = text.parse::<i64>().map_err(|_| LexError {
                line,
                message: format!("integer literal `{text}` out of range"),
            })?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                line,
            });
            continue;
        }
        // Operators are pure ASCII: compare bytes, never slice the string
        // (slicing could split a multi-byte character).
        if i + 1 < bytes.len() {
            let two = &bytes[i..i + 2];
            if let Some(&p) = PUNCTS2.iter().find(|&&p| p.as_bytes() == two) {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                i += 2;
                continue;
            }
        }
        if let Some(&p) = PUNCTS1.iter().find(|&&p| p.as_bytes() == [bytes[i]]) {
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            i += 1;
            continue;
        }
        let offending = source[i..].chars().next().expect("i < len");
        return Err(LexError {
            line,
            message: format!("unexpected character `{offending}`"),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_mixed_input() {
        let ks = kinds("let x = 42; // answer\nx = x + 1;");
        assert_eq!(ks[0], TokenKind::Ident("let".into()));
        assert_eq!(ks[1], TokenKind::Ident("x".into()));
        assert_eq!(ks[2], TokenKind::Punct("="));
        assert_eq!(ks[3], TokenKind::Int(42));
        assert_eq!(ks[4], TokenKind::Punct(";"));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn two_char_operators_win() {
        let ks = kinds("a <= b == c && d");
        assert!(ks.contains(&TokenKind::Punct("<=")));
        assert!(ks.contains(&TokenKind::Punct("==")));
        assert!(ks.contains(&TokenKind::Punct("&&")));
    }

    #[test]
    fn comments_run_to_eol() {
        let ks = kinds("a // b c d\ne");
        assert_eq!(ks.len(), 3); // a, e, EOF
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.to_string().contains('?'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_overflowing_integers() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn underscores_in_identifiers() {
        let ks = kinds("foo_bar _x x1");
        assert_eq!(ks[0], TokenKind::Ident("foo_bar".into()));
        assert_eq!(ks[1], TokenKind::Ident("_x".into()));
        assert_eq!(ks[2], TokenKind::Ident("x1".into()));
    }
}
