//! A static lockset lint: the Eraser-style discipline check, at compile
//! time.
//!
//! For every shared variable the lint intersects the sets of locks held at
//! its static accesses (from `sync` nesting). An empty intersection with at
//! least one write is a warning: no single lock consistently protects the
//! variable.
//!
//! This is the *imprecise* style of analysis the PACER paper contrasts
//! itself with (§2, §6.2): lockset enforces one particular discipline, so
//! it flags correct programs that synchronize through volatiles, fork/join
//! structure, or `wait`/`notify` protocols — see the
//! `producer_consumer.pl` sample, which is provably race-free (the dynamic
//! detectors stay silent at a 100% sampling rate) yet warned about here.
//! Keeping the lint in-tree makes that precision gap concrete and testable.
//!
//! # Examples
//!
//! ```
//! use pacer_lang::lockset::lockset_lint;
//!
//! let p = pacer_lang::parse(
//!     "
//!     shared guarded; shared bare; lock m;
//!     fn w() { sync m { guarded = guarded + 1; } bare = bare + 1; }
//!     fn main() { let t = spawn w(); join t; w(); }
//! ",
//! )?;
//! let report = lockset_lint(&p);
//! let flagged: Vec<_> = report.warnings.iter().map(|w| w.variable.as_str()).collect();
//! assert_eq!(flagged, vec!["bare"]);
//! # Ok::<(), pacer_lang::ParseError>(())
//! ```

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::ast::{Expr, LValue, Program, Stmt};

/// One recorded static access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessNote {
    /// Function containing the access.
    pub function: String,
    /// Whether it writes.
    pub write: bool,
    /// Locks held (by `sync` nesting) at the access, sorted.
    pub locks: Vec<String>,
}

/// A variable with no consistent lock discipline.
#[derive(Clone, Debug)]
pub struct LintWarning {
    /// The shared variable (arrays are treated as a whole).
    pub variable: String,
    /// Every static access, in program order.
    pub accesses: Vec<AccessNote>,
}

impl LintWarning {
    /// Renders the warning for human consumption.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "warning: shared `{}` has no consistent lock (candidate set empty)\n",
            self.variable
        );
        for a in &self.accesses {
            let locks = if a.locks.is_empty() {
                "no locks".to_string()
            } else {
                format!("holding {{{}}}", a.locks.join(", "))
            };
            let _ = writeln!(
                out,
                "  {} in fn {} ({locks})",
                if a.write { "write" } else { "read" },
                a.function
            );
        }
        out
    }
}

/// The lint's result.
#[derive(Clone, Debug, Default)]
pub struct LocksetReport {
    /// Variables flagged, in declaration order.
    pub warnings: Vec<LintWarning>,
    /// Shared variables examined.
    pub checked_vars: usize,
}

struct Walker<'p> {
    shared: HashSet<&'p str>,
    function: String,
    locals: HashSet<String>,
    held: Vec<String>,
    accesses: BTreeMap<String, Vec<AccessNote>>,
}

impl Walker<'_> {
    fn note(&mut self, var: &str, write: bool) {
        if !self.shared.contains(var) || self.locals.contains(var) {
            return;
        }
        let mut locks: Vec<String> = self.held.clone();
        locks.sort();
        locks.dedup();
        self.accesses
            .entry(var.to_string())
            .or_default()
            .push(AccessNote {
                function: self.function.clone(),
                write,
                locks,
            });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Name(n) => self.note(n, false),
            Expr::Index(n, i) => {
                self.note(n, false);
                self.expr(i);
            }
            Expr::Unary(_, inner) => self.expr(inner),
            Expr::Binary(_, l, r) => {
                self.expr(l);
                self.expr(r);
            }
            Expr::Spawn { args, .. } | Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Field(..) | Expr::New | Expr::Int(_) => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { init, .. } => self.expr(init),
            Stmt::Assign { target, value } => {
                match target {
                    LValue::Name(n) => self.note(n, true),
                    LValue::Index(n, i) => {
                        self.note(n, true);
                        self.expr(i);
                    }
                    LValue::Field(..) => {}
                }
                self.expr(value);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                for s in then_branch.iter().chain(else_branch) {
                    self.stmt(s);
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond);
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::Sync { lock, body } => {
                self.held.push(lock.clone());
                for s in body {
                    self.stmt(s);
                }
                self.held.pop();
            }
            Stmt::Join { thread } => self.expr(thread),
            Stmt::Return { value } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Stmt::Expr(e) => self.expr(e),
            Stmt::Wait { .. } | Stmt::Notify { .. } => {}
        }
    }
}

/// Runs the lint over a program. See the [module docs](self).
pub fn lockset_lint(program: &Program) -> LocksetReport {
    let shared: HashSet<&str> = program.shareds.iter().map(|s| s.name.as_str()).collect();
    let mut accesses: BTreeMap<String, Vec<AccessNote>> = BTreeMap::new();
    for f in program.functions.iter() {
        let mut locals: HashSet<String> = f.params.iter().cloned().collect();
        crate::escape::collect_lets_pub(&f.body, &mut locals);
        let mut w = Walker {
            shared: shared.clone(),
            function: f.name.clone(),
            locals,
            held: Vec::new(),
            accesses: BTreeMap::new(),
        };
        for s in &f.body {
            w.stmt(s);
        }
        for (var, notes) in w.accesses {
            accesses.entry(var).or_default().extend(notes);
        }
    }

    let mut warnings = Vec::new();
    for decl in &program.shareds {
        let Some(notes) = accesses.get(&decl.name) else {
            continue;
        };
        if notes.len() < 2 || !notes.iter().any(|n| n.write) {
            continue;
        }
        // Candidate lockset: the intersection of all access locksets.
        let mut candidate: BTreeSet<&String> = notes[0].locks.iter().collect();
        for n in &notes[1..] {
            let here: BTreeSet<&String> = n.locks.iter().collect();
            candidate = candidate.intersection(&here).copied().collect();
        }
        if candidate.is_empty() {
            warnings.push(LintWarning {
                variable: decl.name.clone(),
                accesses: notes.clone(),
            });
        }
    }
    LocksetReport {
        warnings,
        checked_vars: accesses.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn flagged(src: &str) -> Vec<String> {
        lockset_lint(&parse(src).unwrap())
            .warnings
            .into_iter()
            .map(|w| w.variable)
            .collect()
    }

    #[test]
    fn consistent_discipline_is_clean() {
        let f = flagged(
            "shared x; lock m;
             fn a() { sync m { x = x + 1; } }
             fn main() { sync m { x = 0; } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unguarded_write_is_flagged() {
        let f = flagged(
            "shared x; lock m;
             fn a() { sync m { x = x + 1; } }
             fn main() { x = 0; }",
        );
        assert_eq!(f, vec!["x"]);
    }

    #[test]
    fn different_locks_are_flagged() {
        let f = flagged(
            "shared x; lock m; lock l;
             fn a() { sync m { x = 1; } }
             fn main() { sync l { x = 2; } }",
        );
        assert_eq!(f, vec!["x"]);
    }

    #[test]
    fn nested_locks_count_all_held() {
        let f = flagged(
            "shared x; lock m; lock l;
             fn a() { sync m { sync l { x = 1; } } }
             fn main() { sync l { x = 2; } }",
        );
        assert!(f.is_empty(), "l is held at both accesses: {f:?}");
    }

    #[test]
    fn read_only_vars_are_clean() {
        let f = flagged(
            "shared x;
             fn a() { let v = x; }
             fn main() { let w = x + 1; }",
        );
        assert!(f.is_empty(), "no writes, no warning: {f:?}");
    }

    #[test]
    fn single_access_is_clean() {
        let f = flagged("shared x; fn main() { x = 1; }");
        assert!(f.is_empty());
    }

    #[test]
    fn volatile_protocol_is_a_known_false_positive() {
        // Race-free by volatile publication, yet lockset warns — the
        // imprecision §6.2 describes.
        let f = flagged(
            "shared data; volatile ready;
             fn producer() { data = 9; ready = 1; }
             fn consumer() { while (ready == 0) { } let v = data; }
             fn main() {
                 let p = spawn producer();
                 let c = spawn consumer();
                 join p; join c;
             }",
        );
        assert_eq!(f, vec!["data"], "lockset cannot model the volatile edge");
    }

    #[test]
    fn locals_shadow_shared_names() {
        let f = flagged(
            "shared x;
             fn a() { let x = 1; x = x + 1; }
             fn main() { x = 2; }",
        );
        assert!(f.is_empty(), "the writes in `a` hit the local: {f:?}");
    }

    #[test]
    fn warning_renders_accesses() {
        let report = lockset_lint(
            &parse(
                "shared x; lock m;
                 fn a() { sync m { x = 1; } }
                 fn main() { let v = x; }",
            )
            .unwrap(),
        );
        assert_eq!(report.warnings.len(), 1);
        let text = report.warnings[0].render();
        assert!(text.contains("shared `x`"));
        assert!(text.contains("write in fn a (holding {m})"));
        assert!(text.contains("read in fn main (no locks)"));
        assert!(report.checked_vars >= 1);
    }
}
