//! Property tests for the language pipeline: printer round-trips, folding
//! laws, and lexer/parser robustness over generated ASTs.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_lang::ast::*;
use pacer_lang::{compile, fold_program, parse, print};

fn arb_name() -> impl Strategy<Value = String> {
    // Names that are never keywords.
    "[a-z][a-z0-9_]{0,6}x".prop_map(|s| s)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        arb_name().prop_map(Expr::Name),
        Just(Expr::New),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ];
                Expr::Binary(ops[op as usize % ops.len()], Box::new(l), Box::new(r))
            }),
            // Parsed ASTs never contain Neg of a literal (the parser folds
            // it into the literal), so the generator canonicalizes too.
            inner.clone().prop_map(|e| match e {
                Expr::Int(v) => Expr::Int(v.wrapping_neg()),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            }),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            (arb_name(), inner.clone()).prop_map(|(n, i)| Expr::Index(n, Box::new(i))),
            (arb_name(), arb_name()).prop_map(|(o, f)| Expr::Field(o, f)),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (arb_name(), arb_expr()).prop_map(|(name, init)| Stmt::Let { name, init }),
        (arb_name(), arb_expr()).prop_map(|(n, value)| Stmt::Assign {
            target: LValue::Name(n),
            value,
        }),
        (arb_name(), arb_expr(), arb_expr()).prop_map(|(n, i, value)| Stmt::Assign {
            target: LValue::Index(n, Box::new(i)),
            value,
        }),
        (arb_name(), arb_name(), arb_expr()).prop_map(|(o, f, value)| Stmt::Assign {
            target: LValue::Field(o, f),
            value,
        }),
        arb_expr().prop_map(Stmt::Expr),
        prop::option::of(arb_expr()).prop_map(|value| Stmt::Return { value }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                }),
            (arb_expr(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(cond, body)| Stmt::While { cond, body }),
            (arb_name(), prop::collection::vec(inner, 0..3))
                .prop_map(|(lock, body)| Stmt::Sync { lock, body }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec((arb_name(), prop::option::of(1u32..8)), 0..3),
        prop::collection::vec(arb_name(), 0..2),
        prop::collection::vec(arb_name(), 0..2),
        prop::collection::vec(
            (
                arb_name(),
                prop::collection::vec(arb_name(), 0..3),
                prop::collection::vec(arb_stmt(), 0..5),
            ),
            1..3,
        ),
    )
        .prop_map(|(shareds, locks, volatiles, fns)| Program {
            shareds: shareds
                .into_iter()
                .enumerate()
                .map(|(i, (name, len))| SharedDecl {
                    name: format!("{name}{i}"),
                    len,
                })
                .collect(),
            locks,
            volatiles,
            functions: fns
                .into_iter()
                .enumerate()
                .map(|(i, (name, params, body))| Function {
                    name: format!("{name}{i}"),
                    params,
                    body,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(print(p)) == p` for arbitrary ASTs (not just parseable
    /// sources): the printer is a total inverse of the parser.
    #[test]
    fn print_parse_round_trip(p in arb_program()) {
        let text = print(&p);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparseable text: {e}\n{text}"));
        prop_assert_eq!(reparsed, p);
    }

    /// Folding is idempotent.
    #[test]
    fn fold_is_idempotent(p in arb_program()) {
        let once = fold_program(&p);
        let twice = fold_program(&once);
        prop_assert_eq!(once, twice);
    }

    /// Folding commutes with the printer round trip.
    #[test]
    fn fold_commutes_with_round_trip(p in arb_program()) {
        let folded_then_printed = parse(&print(&fold_program(&p))).unwrap();
        prop_assert_eq!(folded_then_printed, fold_program(&p));
    }

    /// If the original compiles, the folded program compiles too, with no
    /// more instrumented sites.
    #[test]
    fn fold_preserves_compilability(p in arb_program()) {
        if let Ok(original) = compile(&p) {
            let folded = compile(&fold_program(&p))
                .expect("folding must not break a compilable program");
            prop_assert!(folded.instrumented_sites() <= original.instrumented_sites());
        }
    }

    /// The lexer+parser never panic on arbitrary input bytes.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC*") {
        let _ = parse(&s);
    }
}
