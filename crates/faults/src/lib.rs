//! Deterministic fault-injection plans for resilience testing.
//!
//! PACER's statistical claim only holds if every scheduled trial is
//! counted, so the harness must survive the failures a real detection
//! service sees: allocator exhaustion, scheduler preemption storms,
//! detector bugs that panic mid-callback, and IO errors while artifacts
//! are being written. This crate defines the *plan* for injecting those
//! failures on purpose — deterministically, so a fault campaign produces
//! byte-identical reports at any `--jobs N` and any retry schedule.
//!
//! A [`FaultPlan`] is parsed from a small line-oriented text spec
//! ([`FaultPlan::parse`]) and names which [`FaultSite`]s are armed. The
//! plan is *pure data*: consumers ask [`FaultPlan::for_trial`] which
//! faults apply to a given `(trial_index, attempt)` pair and wire the
//! answer into their own code. Nothing here keeps clocks or global
//! state, and every decision is a function of the plan text plus the
//! trial coordinates — no wall-clock, no process entropy.
//!
//! Injected failures identify themselves with the [`INJECTED_PREFIX`]
//! (`"injected: "`) in their message so the harness can classify a
//! quarantined trial's fault site from its panic payload alone.
//!
//! # Spec format
//!
//! One directive per line; `#` starts a comment; blank lines ignored.
//!
//! ```text
//! # fail the 0th, 3rd, 6th… trial's detector on its 100th action,
//! # twice, then let the retry succeed
//! seed 0
//! detector-panic every=3 limit=2 after=100
//! heap-oom budget=4096 every=1
//! sched-storm every=5 len=16
//! artifact-io every=2 limit=1
//! # serve-layer chaos sites (SERVICE.md): indices are per-shard event
//! # counts, session admission indices, and shard event counts
//! shard-panic every=64
//! conn-drop every=3 after=128
//! inbox-stall every=32 len=50
//! # network chaos sites for the durable TCP transport (SERVICE.md):
//! # indices are accepted-connection, client-frame, and server-ack counts
//! conn-reset every=2 after=3
//! sock-stall every=3 len=200
//! dup-frame every=4
//! torn-ack every=5
//! ```
//!
//! The serve-layer sites reuse the exact `(index + seed) % every` and
//! `attempt < limit` arithmetic. `shard-panic` defaults to `limit=1`
//! (fire once per targeted index) so the supervised replay-and-retry in
//! `pacer serve` succeeds and the merged transcript stays byte-identical
//! to the clean run; raise `limit` above the service's retry bound to
//! exercise the `ShardLost` path instead.
//!
//! # Examples
//!
//! ```
//! use pacer_faults::FaultPlan;
//!
//! let plan = FaultPlan::parse("detector-panic every=2 limit=1\n").unwrap();
//! // Trial 0 is targeted and fails on its first attempt…
//! assert!(plan.for_trial(0, 0).detector_panic_after.is_some());
//! // …but its retry (attempt 1) is past the limit and succeeds.
//! assert!(plan.for_trial(0, 1).detector_panic_after.is_none());
//! // Trial 1 is never targeted.
//! assert!(plan.for_trial(1, 0).is_clear());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Prefix carried by every injected failure message; the harness uses it
/// to tell injected faults from organic bugs when classifying quarantines.
pub const INJECTED_PREFIX: &str = "injected: ";

/// A named place in the stack where the plan can inject a failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Simulated allocator exhaustion once the VM heap's cumulative
    /// allocation exceeds a byte budget.
    HeapOom,
    /// Scheduler preemption storm: windows of forced quantum-1
    /// scheduling in the VM.
    SchedStorm,
    /// Forced panic inside a detector callback.
    DetectorPanic,
    /// IO error injected on an artifact write.
    ArtifactIo,
    /// Forced panic inside a `pacer serve` shard worker, caught and
    /// recovered by the shard supervisor.
    ShardPanic,
    /// Simulated client disconnect: a serve session's byte stream is cut
    /// off after a fixed prefix (reported as a truncated tail).
    ConnDrop,
    /// Cooperative stall inside a shard's inbox drain — a timing-only
    /// perturbation that must not change any output.
    InboxStall,
    /// Server-side hard close of a TCP connection after a fixed number
    /// of accepted frames — the client must reconnect and `RESUME`.
    ConnReset,
    /// Cooperative stall before a TCP connection is served — a
    /// timing-only perturbation that must not change any output.
    SockStall,
    /// Client-side duplicated retransmit: the previous frame is sent
    /// again, and the server must dedup it by offset.
    DupFrame,
    /// Server-side torn ack: a partial `ACK` line is written and the
    /// connection dropped, forcing a resume with retransmit overlap.
    TornAck,
}

impl FaultSite {
    /// The site's stable spec/report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::HeapOom => "heap_oom",
            FaultSite::SchedStorm => "sched_storm",
            FaultSite::DetectorPanic => "detector_panic",
            FaultSite::ArtifactIo => "artifact_io",
            FaultSite::ShardPanic => "shard_panic",
            FaultSite::ConnDrop => "conn_drop",
            FaultSite::InboxStall => "inbox_stall",
            FaultSite::ConnReset => "conn_reset",
            FaultSite::SockStall => "sock_stall",
            FaultSite::DupFrame => "dup_frame",
            FaultSite::TornAck => "torn_ack",
        }
    }

    /// Classifies a failure message produced by an injected fault, by
    /// its [`INJECTED_PREFIX`] marker; `None` for organic failures.
    pub fn classify(message: &str) -> Option<FaultSite> {
        let rest = message.strip_prefix(INJECTED_PREFIX)?;
        if rest.starts_with("heap OOM") {
            Some(FaultSite::HeapOom)
        } else if rest.starts_with("detector panic") {
            Some(FaultSite::DetectorPanic)
        } else if rest.starts_with("artifact IO") {
            Some(FaultSite::ArtifactIo)
        } else if rest.starts_with("sched storm") {
            Some(FaultSite::SchedStorm)
        } else if rest.starts_with("shard panic") {
            Some(FaultSite::ShardPanic)
        } else if rest.starts_with("conn drop") {
            Some(FaultSite::ConnDrop)
        } else if rest.starts_with("inbox stall") {
            Some(FaultSite::InboxStall)
        } else if rest.starts_with("conn reset") {
            Some(FaultSite::ConnReset)
        } else if rest.starts_with("sock stall") {
            Some(FaultSite::SockStall)
        } else if rest.starts_with("dup frame") {
            Some(FaultSite::DupFrame)
        } else if rest.starts_with("torn ack") {
            Some(FaultSite::TornAck)
        } else {
            None
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which trials a site rule targets and for how many attempts it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Targeting {
    /// Target every `every`-th trial (phase-shifted by the plan seed).
    every: u64,
    /// Fire on attempts `< limit`; `u32::MAX` means every attempt, which
    /// exhausts retries and quarantines the trial.
    limit: u32,
}

impl Targeting {
    fn applies(&self, seed: u64, trial_index: u64, attempt: u32) -> bool {
        trial_index.wrapping_add(seed) % self.every == 0 && attempt < self.limit
    }
}

/// A parsed, armed fault plan. See the [crate docs](crate) for the spec
/// format and determinism contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Phase shift applied to every `every=` rule: trial `i` is targeted
    /// when `(i + seed) % every == 0`. Changing the seed moves which
    /// trials fault without changing how many.
    seed: u64,
    heap_oom: Option<(Targeting, u64)>,
    sched_storm: Option<(Targeting, u64, u64)>,
    detector_panic: Option<(Targeting, u64)>,
    artifact_io: Option<Targeting>,
    shard_panic: Option<Targeting>,
    conn_drop: Option<(Targeting, u64)>,
    inbox_stall: Option<(Targeting, u64)>,
    conn_reset: Option<(Targeting, u64)>,
    sock_stall: Option<(Targeting, u64)>,
    dup_frame: Option<Targeting>,
    torn_ack: Option<Targeting>,
}

impl FaultPlan {
    /// Parses a plan from its text spec.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the offending line for any
    /// unknown directive, unknown or duplicate parameter, malformed
    /// number, or zero `every=`/`len=`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan {
            seed: 0,
            heap_oom: None,
            sched_storm: None,
            detector_panic: None,
            artifact_io: None,
            shard_panic: None,
            conn_drop: None,
            inbox_stall: None,
            conn_reset: None,
            sock_stall: None,
            dup_frame: None,
            torn_ack: None,
        };
        for (i, raw_line) in spec.lines().enumerate() {
            let line_no = i + 1;
            let line = match raw_line.find('#') {
                Some(hash) => &raw_line[..hash],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().expect("non-empty line has a first word");
            let err = |message: String| FaultPlanError {
                line: line_no,
                message,
            };
            match directive {
                "seed" => {
                    let value = words
                        .next()
                        .ok_or_else(|| err("seed needs a value".into()))?;
                    plan.seed = value
                        .parse()
                        .map_err(|_| err(format!("bad seed value '{value}'")))?;
                    if let Some(extra) = words.next() {
                        return Err(err(format!("unexpected trailing '{extra}'")));
                    }
                }
                "heap-oom" => {
                    let params = Params::parse(line_no, words, &["budget", "every", "limit"])?;
                    let budget = params.require("budget")?;
                    plan.heap_oom = Some((params.targeting()?, budget));
                }
                "sched-storm" => {
                    let params =
                        Params::parse(line_no, words, &["every", "len", "period", "limit"])?;
                    let len = params.get("len")?.unwrap_or(8).max(1);
                    let period = params.get("period")?.unwrap_or(64).max(1);
                    plan.sched_storm = Some((params.targeting()?, period, len));
                }
                "detector-panic" => {
                    let params = Params::parse(line_no, words, &["every", "limit", "after"])?;
                    let after = params.get("after")?.unwrap_or(0);
                    plan.detector_panic = Some((params.targeting()?, after));
                }
                "artifact-io" => {
                    let params = Params::parse(line_no, words, &["every", "limit"])?;
                    plan.artifact_io = Some(params.targeting()?);
                }
                "shard-panic" => {
                    let params = Params::parse(line_no, words, &["every", "limit"])?;
                    // Default limit=1: fire once per targeted event index
                    // so the supervised retry succeeds (see crate docs).
                    let mut t = params.targeting()?;
                    if params.get("limit")?.is_none() {
                        t.limit = 1;
                    }
                    plan.shard_panic = Some(t);
                }
                "conn-drop" => {
                    let params = Params::parse(line_no, words, &["every", "after"])?;
                    let after = params.get("after")?.unwrap_or(64);
                    plan.conn_drop = Some((params.targeting()?, after));
                }
                "inbox-stall" => {
                    let params = Params::parse(line_no, words, &["every", "len"])?;
                    let len = params.get("len")?.unwrap_or(64).max(1);
                    plan.inbox_stall = Some((params.targeting()?, len));
                }
                "conn-reset" => {
                    let params = Params::parse(line_no, words, &["every", "after"])?;
                    let after = params.get("after")?.unwrap_or(1);
                    plan.conn_reset = Some((params.targeting()?, after));
                }
                "sock-stall" => {
                    let params = Params::parse(line_no, words, &["every", "len"])?;
                    let len = params.get("len")?.unwrap_or(64).max(1);
                    plan.sock_stall = Some((params.targeting()?, len));
                }
                "dup-frame" => {
                    let params = Params::parse(line_no, words, &["every"])?;
                    plan.dup_frame = Some(params.targeting()?);
                }
                "torn-ack" => {
                    let params = Params::parse(line_no, words, &["every"])?;
                    plan.torn_ack = Some(params.targeting()?);
                }
                other => {
                    return Err(err(format!("unknown directive '{other}'")));
                }
            }
        }
        Ok(plan)
    }

    /// `true` when no site is armed; consumers can skip all checks.
    pub fn is_empty(&self) -> bool {
        self.heap_oom.is_none()
            && self.sched_storm.is_none()
            && self.detector_panic.is_none()
            && self.artifact_io.is_none()
            && self.shard_panic.is_none()
            && self.conn_drop.is_none()
            && self.inbox_stall.is_none()
            && self.conn_reset.is_none()
            && self.sock_stall.is_none()
            && self.dup_frame.is_none()
            && self.torn_ack.is_none()
    }

    /// `true` when any serve-layer chaos site is armed (`shard-panic`,
    /// `conn-drop`, `inbox-stall`, or the network sites `conn-reset`,
    /// `sock-stall`, `dup-frame`, `torn-ack`).
    pub fn has_serve_sites(&self) -> bool {
        self.shard_panic.is_some()
            || self.conn_drop.is_some()
            || self.inbox_stall.is_some()
            || self.has_network_sites()
    }

    /// `true` when any durable-TCP network chaos site is armed
    /// (`conn-reset`, `sock-stall`, `dup-frame`, `torn-ack`).
    pub fn has_network_sites(&self) -> bool {
        self.conn_reset.is_some()
            || self.sock_stall.is_some()
            || self.dup_frame.is_some()
            || self.torn_ack.is_some()
    }

    /// The plan's phase-shift seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves which in-VM faults apply to attempt `attempt` of trial
    /// `trial_index`. Purely a function of its arguments and the plan.
    pub fn for_trial(&self, trial_index: u64, attempt: u32) -> TrialFaults {
        let mut faults = TrialFaults::default();
        if let Some((t, budget)) = self.heap_oom {
            if t.applies(self.seed, trial_index, attempt) {
                faults.heap_oom_budget = Some(budget);
            }
        }
        if let Some((t, period, len)) = self.sched_storm {
            if t.applies(self.seed, trial_index, attempt) {
                faults.sched_storm = Some(StormShape { period, len });
            }
        }
        if let Some((t, after)) = self.detector_panic {
            if t.applies(self.seed, trial_index, attempt) {
                faults.detector_panic_after = Some(after);
            }
        }
        faults
    }

    /// Whether attempt `attempt` of the `write_index`-th artifact write
    /// should fail with an injected IO error.
    pub fn artifact_io_fails(&self, write_index: u64, attempt: u32) -> bool {
        self.artifact_io
            .is_some_and(|t| t.applies(self.seed, write_index, attempt))
    }

    /// Whether attempt `attempt` at a shard's `event_index`-th arrived
    /// event should panic the shard worker. The index is per shard — the
    /// count of events delivered to that shard, counted once per event
    /// no matter how many supervised attempts it takes — so the site
    /// fires under any `--shards N` without coordinating shards.
    pub fn shard_panic_fires(&self, event_index: u64, attempt: u32) -> bool {
        self.shard_panic
            .is_some_and(|t| t.applies(self.seed, event_index, attempt))
    }

    /// Byte prefix to keep of the `session_index`-th admitted session's
    /// stream when `conn-drop` targets it — simulating the client
    /// disconnecting mid-stream; `None` when the session is untargeted.
    pub fn conn_drop_after(&self, session_index: u64) -> Option<u64> {
        let (t, after) = self.conn_drop?;
        t.applies(self.seed, session_index, 0).then_some(after)
    }

    /// Cooperative yields to spin before a shard processes its
    /// `event_index`-th event when `inbox-stall` targets it — a pure
    /// timing perturbation; `None` when untargeted.
    pub fn inbox_stall_spins(&self, event_index: u64) -> Option<u64> {
        let (t, len) = self.inbox_stall?;
        t.applies(self.seed, event_index, 0).then_some(len)
    }

    /// Frames to accept on the `conn_index`-th TCP connection before the
    /// server hard-closes it mid-session (`conn-reset` — the client must
    /// reconnect and `RESUME`); `None` when the connection is untargeted.
    pub fn conn_reset_after_frames(&self, conn_index: u64) -> Option<u64> {
        let (t, after) = self.conn_reset?;
        t.applies(self.seed, conn_index, 0).then_some(after)
    }

    /// Cooperative yields to spin before the server reads from the
    /// `conn_index`-th TCP connection when `sock-stall` targets it — a
    /// pure timing perturbation; `None` when untargeted.
    pub fn sock_stall_spins(&self, conn_index: u64) -> Option<u64> {
        let (t, len) = self.sock_stall?;
        t.applies(self.seed, conn_index, 0).then_some(len)
    }

    /// Whether the client should send a duplicated retransmit of its
    /// previous frame before its `frame_index`-th frame (`dup-frame`);
    /// the server must dedup the duplicate by offset.
    pub fn dup_frame_fires(&self, frame_index: u64) -> bool {
        self.dup_frame
            .is_some_and(|t| t.applies(self.seed, frame_index, 0))
    }

    /// Whether the server should tear its `ack_index`-th `ACK` — write a
    /// partial line and drop the connection (`torn-ack`), forcing the
    /// client to resume with a retransmit overlap.
    pub fn torn_ack_fires(&self, ack_index: u64) -> bool {
        self.torn_ack
            .is_some_and(|t| t.applies(self.seed, ack_index, 0))
    }
}

/// Key=value parameter bag for one spec directive.
struct Params {
    line: usize,
    pairs: Vec<(String, u64)>,
}

impl Params {
    fn parse<'a>(
        line: usize,
        words: impl Iterator<Item = &'a str>,
        allowed: &[&str],
    ) -> Result<Params, FaultPlanError> {
        let err = |message: String| FaultPlanError { line, message };
        let mut pairs: Vec<(String, u64)> = Vec::new();
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got '{word}'")))?;
            if !allowed.contains(&key) {
                return Err(err(format!("unknown parameter '{key}'")));
            }
            if pairs.iter().any(|(k, _)| k == key) {
                return Err(err(format!("duplicate parameter '{key}'")));
            }
            let value: u64 = value
                .parse()
                .map_err(|_| err(format!("bad value for '{key}': '{value}'")))?;
            pairs.push((key.to_string(), value));
        }
        Ok(Params { line, pairs })
    }

    fn get(&self, key: &str) -> Result<Option<u64>, FaultPlanError> {
        Ok(self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v))
    }

    fn require(&self, key: &str) -> Result<u64, FaultPlanError> {
        self.get(key)?.ok_or_else(|| FaultPlanError {
            line: self.line,
            message: format!("missing required parameter '{key}'"),
        })
    }

    /// The directive's `every=`/`limit=` pair, defaulting to "every
    /// trial, every attempt" (i.e. targeted trials always quarantine).
    fn targeting(&self) -> Result<Targeting, FaultPlanError> {
        let every = self.get("every")?.unwrap_or(1);
        if every == 0 {
            return Err(FaultPlanError {
                line: self.line,
                message: "every=0 would target no trial; use every=1 for all".into(),
            });
        }
        let limit = match self.get("limit")? {
            Some(v) => u32::try_from(v).unwrap_or(u32::MAX),
            None => u32::MAX,
        };
        Ok(Targeting { every, limit })
    }
}

/// The shape of a scheduler preemption storm: within every `period`
/// scheduling turns, the first `len` run with a forced quantum of 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StormShape {
    /// Scheduling turns between storm onsets.
    pub period: u64,
    /// Storm length in scheduling turns.
    pub len: u64,
}

impl StormShape {
    /// Whether scheduling turn `turn` falls inside a storm window.
    pub fn in_storm(&self, turn: u64) -> bool {
        turn % self.period < self.len
    }
}

/// The in-VM faults resolved for one `(trial, attempt)` pair — what the
/// runtime actually checks. `Default` is "nothing armed", which every
/// injection site guards with a single `Option` branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialFaults {
    /// Fail with an injected OOM once cumulative allocation exceeds
    /// this many bytes.
    pub heap_oom_budget: Option<u64>,
    /// Panic in the detector callback after this many forwarded actions.
    pub detector_panic_after: Option<u64>,
    /// Force preemption storms of this shape.
    pub sched_storm: Option<StormShape>,
}

impl TrialFaults {
    /// `true` when no fault is armed for this trial attempt.
    pub fn is_clear(&self) -> bool {
        *self == TrialFaults::default()
    }
}

/// A structured plan-spec parse error: the offending line and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError {
    /// 1-based spec line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_comment_only_specs_are_clear() {
        for spec in ["", "\n\n", "# all quiet\n  # indented comment\n"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(plan.is_empty());
            assert!(plan.for_trial(0, 0).is_clear());
            assert!(!plan.artifact_io_fails(0, 0));
        }
    }

    #[test]
    fn full_spec_round_trip() {
        let plan = FaultPlan::parse(
            "# campaign\nseed 7\nheap-oom budget=4096 every=2\n\
             sched-storm every=3 len=16 period=32\n\
             detector-panic every=1 limit=2 after=100\nartifact-io every=4 limit=1\n",
        )
        .unwrap();
        assert_eq!(plan.seed(), 7);
        assert!(!plan.is_empty());
        // seed 7, every=2: trials with (i + 7) % 2 == 0 → odd i.
        assert_eq!(plan.for_trial(1, 0).heap_oom_budget, Some(4096));
        assert_eq!(plan.for_trial(2, 0).heap_oom_budget, None);
        // detector-panic every=1 hits all trials, attempts 0 and 1 only.
        assert_eq!(plan.for_trial(2, 1).detector_panic_after, Some(100));
        assert_eq!(plan.for_trial(2, 2).detector_panic_after, None);
        // storm: (i + 7) % 3 == 0 → i = 2, 5, 8…
        let storm = plan.for_trial(2, 0).sched_storm.unwrap();
        assert_eq!(
            storm,
            StormShape {
                period: 32,
                len: 16
            }
        );
        assert!(storm.in_storm(0) && storm.in_storm(15));
        assert!(!storm.in_storm(16) && storm.in_storm(32));
        // artifact-io: (k + 7) % 4 == 0 → k = 1, 5, …; attempt 0 only.
        assert!(plan.artifact_io_fails(1, 0));
        assert!(!plan.artifact_io_fails(1, 1));
        assert!(!plan.artifact_io_fails(2, 0));
    }

    #[test]
    fn for_trial_is_deterministic() {
        let spec = "detector-panic every=3 limit=1\nheap-oom budget=100\n";
        let a = FaultPlan::parse(spec).unwrap();
        let b = FaultPlan::parse(spec).unwrap();
        for trial in 0..50 {
            for attempt in 0..3 {
                assert_eq!(a.for_trial(trial, attempt), b.for_trial(trial, attempt));
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("frobnicate\n", 1, "unknown directive"),
            ("seed\n", 1, "seed needs a value"),
            ("seed banana\n", 1, "bad seed value"),
            ("seed 1 2\n", 1, "unexpected trailing"),
            ("# ok\nheap-oom\n", 2, "missing required parameter 'budget'"),
            ("heap-oom budget=x\n", 1, "bad value"),
            ("heap-oom budget=1 budget=2\n", 1, "duplicate parameter"),
            ("detector-panic nonsense\n", 1, "expected key=value"),
            ("detector-panic color=red\n", 1, "unknown parameter"),
            ("\ndetector-panic every=0\n", 2, "every=0"),
        ];
        for (spec, line, needle) in cases {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert_eq!(err.line, *line, "{spec:?}");
            assert!(err.message.contains(needle), "{spec:?}: {}", err.message);
        }
    }

    #[test]
    fn classify_recognizes_injected_messages_only() {
        assert_eq!(
            FaultSite::classify("injected: heap OOM budget of 64 bytes exceeded"),
            Some(FaultSite::HeapOom)
        );
        assert_eq!(
            FaultSite::classify("injected: detector panic (trial-armed, action 3)"),
            Some(FaultSite::DetectorPanic)
        );
        assert_eq!(
            FaultSite::classify("injected: artifact IO error (write 0, attempt 0)"),
            Some(FaultSite::ArtifactIo)
        );
        assert_eq!(FaultSite::classify("index out of bounds"), None);
        assert_eq!(FaultSite::classify("injected: something else"), None);
    }

    #[test]
    fn site_names_are_stable() {
        assert_eq!(FaultSite::HeapOom.name(), "heap_oom");
        assert_eq!(FaultSite::SchedStorm.name(), "sched_storm");
        assert_eq!(FaultSite::DetectorPanic.name(), "detector_panic");
        assert_eq!(FaultSite::ArtifactIo.name(), "artifact_io");
        assert_eq!(FaultSite::ShardPanic.name(), "shard_panic");
        assert_eq!(FaultSite::ConnDrop.name(), "conn_drop");
        assert_eq!(FaultSite::InboxStall.name(), "inbox_stall");
        assert_eq!(FaultSite::ConnReset.name(), "conn_reset");
        assert_eq!(FaultSite::SockStall.name(), "sock_stall");
        assert_eq!(FaultSite::DupFrame.name(), "dup_frame");
        assert_eq!(FaultSite::TornAck.name(), "torn_ack");
    }

    #[test]
    fn serve_sites_parse_and_target_deterministically() {
        let plan = FaultPlan::parse(
            "seed 1\nshard-panic every=4\nconn-drop every=3 after=40\ninbox-stall every=2 len=9\n",
        )
        .unwrap();
        assert!(!plan.is_empty());
        assert!(plan.has_serve_sites());

        // shard-panic: (i + 1) % 4 == 0 → i = 3, 7, …; default limit=1
        // fires on attempt 0 only, so the supervised retry succeeds.
        assert!(plan.shard_panic_fires(3, 0));
        assert!(!plan.shard_panic_fires(3, 1), "default limit is 1");
        assert!(!plan.shard_panic_fires(4, 0));

        // conn-drop: (i + 1) % 3 == 0 → sessions 2, 5, …
        assert_eq!(plan.conn_drop_after(2), Some(40));
        assert_eq!(plan.conn_drop_after(3), None);

        // inbox-stall: (i + 1) % 2 == 0 → odd event indices.
        assert_eq!(plan.inbox_stall_spins(1), Some(9));
        assert_eq!(plan.inbox_stall_spins(2), None);

        // An explicit limit overrides the shard-panic fire-once default
        // (the ShardLost path needs panics on every retry).
        let hostile = FaultPlan::parse("shard-panic every=1 limit=100\n").unwrap();
        assert!(hostile.shard_panic_fires(0, 5));

        // Classification of the injected messages.
        assert_eq!(
            FaultSite::classify("injected: shard panic (shard 2, event 64)"),
            Some(FaultSite::ShardPanic)
        );
        assert_eq!(
            FaultSite::classify("injected: conn drop (session 3)"),
            Some(FaultSite::ConnDrop)
        );
        assert_eq!(
            FaultSite::classify("injected: inbox stall (event 32)"),
            Some(FaultSite::InboxStall)
        );

        // Plans without serve sites report none armed.
        let fleet_only = FaultPlan::parse("detector-panic every=2\n").unwrap();
        assert!(!fleet_only.has_serve_sites());
        assert!(!fleet_only.shard_panic_fires(0, 0));
        assert_eq!(fleet_only.conn_drop_after(0), None);
        assert_eq!(fleet_only.inbox_stall_spins(0), None);
    }

    #[test]
    fn network_sites_parse_and_target_deterministically() {
        let plan = FaultPlan::parse(
            "seed 1\nconn-reset every=2 after=3\nsock-stall every=3 len=200\n\
             dup-frame every=4\ntorn-ack every=5\n",
        )
        .unwrap();
        assert!(!plan.is_empty());
        assert!(plan.has_serve_sites());
        assert!(plan.has_network_sites());

        // conn-reset: (c + 1) % 2 == 0 → odd connection indices.
        assert_eq!(plan.conn_reset_after_frames(1), Some(3));
        assert_eq!(plan.conn_reset_after_frames(2), None);

        // sock-stall: (c + 1) % 3 == 0 → connections 2, 5, ….
        assert_eq!(plan.sock_stall_spins(2), Some(200));
        assert_eq!(plan.sock_stall_spins(3), None);

        // dup-frame: (f + 1) % 4 == 0 → frames 3, 7, ….
        assert!(plan.dup_frame_fires(3));
        assert!(!plan.dup_frame_fires(4));

        // torn-ack: (a + 1) % 5 == 0 → acks 4, 9, ….
        assert!(plan.torn_ack_fires(4));
        assert!(!plan.torn_ack_fires(5));

        // Defaults: conn-reset after=1, sock-stall len=64.
        let defaults = FaultPlan::parse("conn-reset\nsock-stall\n").unwrap();
        assert_eq!(defaults.conn_reset_after_frames(0), Some(1));
        assert_eq!(defaults.sock_stall_spins(0), Some(64));

        // Classification of the injected messages.
        assert_eq!(
            FaultSite::classify("injected: conn reset (connection 1, after 3 frame(s))"),
            Some(FaultSite::ConnReset)
        );
        assert_eq!(
            FaultSite::classify("injected: sock stall (connection 2)"),
            Some(FaultSite::SockStall)
        );
        assert_eq!(
            FaultSite::classify("injected: dup frame (frame 3)"),
            Some(FaultSite::DupFrame)
        );
        assert_eq!(
            FaultSite::classify("injected: torn ack (ack 4)"),
            Some(FaultSite::TornAck)
        );

        // The legacy serve sites alone arm no network site.
        let legacy = FaultPlan::parse("conn-drop every=1 after=8\n").unwrap();
        assert!(legacy.has_serve_sites() && !legacy.has_network_sites());
        assert_eq!(legacy.conn_reset_after_frames(0), None);
        assert!(!legacy.dup_frame_fires(0));
        assert!(!legacy.torn_ack_fires(0));
    }
}
