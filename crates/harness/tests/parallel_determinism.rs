//! The parallel trial engine's contract: experiment results are
//! byte-identical at any job count.
//!
//! Everything lives in one test function because the job count is a
//! process-wide setting; a single body serializes the jobs=1 and jobs=4
//! phases without depending on test-runner thread scheduling.

use pacer_harness::detection::{measure_detection, RaceCensus};
use pacer_harness::fleet::simulate_fleet;
use pacer_harness::observed::simulate_fleet_observed;
use pacer_harness::parallel::set_jobs;
use pacer_harness::DetectorKind;
use pacer_workloads::{hsqldb, Scale};

#[test]
fn experiments_are_byte_identical_at_any_job_count() {
    let program = hsqldb(Scale::Test).compiled();

    let run_all = || {
        let census = RaceCensus::collect(&program, 6, 42).unwrap();
        let eval = census.evaluation_races();
        let detection = measure_detection(
            &program,
            DetectorKind::Pacer { rate: 0.25 },
            0.25,
            &census,
            &eval,
            8,
            42,
        )
        .unwrap();
        let fleet = simulate_fleet(&program, 12, 0.10, 7).unwrap();
        let rates = pacer_harness::census::effective_rates(&program, 0.25, 6, 9).unwrap();
        // Observability artifacts are held to the same bar: the merged
        // metrics JSON and concatenated event trace must not depend on
        // which worker ran which instance.
        let (obs_fleet, metrics, trace) =
            simulate_fleet_observed(&program, 6, 0.10, 7, 4096).unwrap();
        format!(
            "{census:?}\n{detection:?}\n{fleet:?}\n{rates:?}\n{obs_fleet:?}\n{}\n{trace}",
            metrics.to_json()
        )
    };

    set_jobs(1);
    let sequential = run_all();

    set_jobs(4);
    let parallel = run_all();
    set_jobs(1);

    assert_eq!(
        sequential, parallel,
        "jobs=4 must reproduce the jobs=1 transcript byte for byte"
    );
}
