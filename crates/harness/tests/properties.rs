//! Property tests for the durable-session engine behind `pacer serve`:
//! any chaotic delivery schedule — reconnects, retransmitted overlaps,
//! duplicated frames — replays to the same report as an uninterrupted
//! stream, and the dedup counter equals the retransmitted overlap.

// Compiled only with the non-default `proptest` feature (the workspace is
// offline by default; the shim crate stands in for the real proptest).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_harness::{
    run_service, serve_sessions, DurableOpen, FrameAck, ServeConfig, ServeDetectorKind,
};
use pacer_prng::Rng;
use pacer_trace::gen::GenConfig;
use pacer_trace::{binary, Trace};

fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        ..ServeConfig::new(ServeDetectorKind::FastTrack)
    }
}

/// One frame per action, so even a small generated trace exercises many
/// ack/dedup boundaries.
fn per_action_frames(trace: &Trace) -> Vec<Vec<u8>> {
    trace
        .actions()
        .iter()
        .map(|action| {
            let bytes = binary::encode_trace(&Trace::from_actions(vec![action.clone()]));
            bytes[binary::HEADER_LEN..].to_vec()
        })
        .collect()
}

/// Drives a durable session through a chaos-seeded delivery schedule:
/// random detach/resume cycles, each resume retransmitting a random
/// overlap below the watermark, plus random immediate duplicates of the
/// frame just applied. Returns (report body, frames deduped).
fn chaotic_delivery(shards: usize, frames: &[Vec<u8>], chaos: u64) -> (String, u64, u64) {
    let total = frames.len() as u64;
    let (out, expected_dups) = run_service(&config(shards), |handle| {
        let mut rng = Rng::seed_from_u64(chaos);
        let mut epoch = match handle.durable_open("s", false) {
            DurableOpen::Started { epoch } => epoch,
            other => panic!("fresh open must start: {other:?}"),
        };
        let mut applied = 0u64;
        let mut expected_dups = 0u64;
        while applied < total {
            // Random disconnect: detach, resume, retransmit a random
            // overlap of already-applied frames. Every one must come
            // back as a Duplicate at the unchanged watermark.
            if rng.gen_bool(0.25) {
                handle.durable_detach("s", epoch);
                let (e, a) = match handle.durable_open("s", true) {
                    DurableOpen::Resumed { epoch, applied } => (epoch, applied),
                    other => panic!("resume of live slot must attach: {other:?}"),
                };
                assert_eq!(a, applied, "ack watermark survives reconnects");
                epoch = e;
                let overlap = rng.bounded_u64(applied + 1);
                for offset in (applied - overlap)..applied {
                    match handle.durable_frame("s", epoch, offset, &frames[offset as usize]) {
                        Ok(FrameAck::Duplicate { applied: w }) => {
                            assert_eq!(w, applied);
                            expected_dups += 1;
                        }
                        other => panic!("overlap retransmit must dedup: {other:?}"),
                    }
                }
            }
            // Deliver the next fresh frame.
            match handle.durable_frame("s", epoch, applied, &frames[applied as usize]) {
                Ok(FrameAck::Applied { applied: w }) => {
                    assert_eq!(w, applied + 1);
                    applied = w;
                }
                other => panic!("in-order frame must apply: {other:?}"),
            }
            // Random duplicated frame right behind the watermark (a
            // client-side dup-frame fault).
            if rng.gen_bool(0.3) {
                let offset = applied - 1;
                match handle.durable_frame("s", epoch, offset, &frames[offset as usize]) {
                    Ok(FrameAck::Duplicate { applied: w }) => {
                        assert_eq!(w, applied);
                        expected_dups += 1;
                    }
                    other => panic!("duplicate must dedup: {other:?}"),
                }
            }
        }
        handle.durable_close("s", epoch, total).unwrap();
        Ok(expected_dups)
    })
    .unwrap();
    assert_eq!(out.reports.len(), 1);
    assert!(!out.reports[0].error, "{}", out.reports[0].body);
    assert!(out.sessions.conserved(), "{:?}", out.sessions);
    (
        out.reports[0].body.clone(),
        out.transport.frames_deduped,
        expected_dups,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Any split of a frame stream into delivered, retransmitted-overlap,
    // and duplicated segments applies every event exactly once: the
    // report is byte-identical to an uninterrupted stream of the same
    // trace, and the dedup counter equals the injected overlap.
    #[test]
    fn chaotic_delivery_replays_to_the_uninterrupted_report(
        seed in 0u64..12,
        chaos in 0u64..10_000,
        shards in 1usize..5,
    ) {
        let trace = GenConfig::small(seed).generate();
        let frames = per_action_frames(&trace);
        prop_assert!(frames.len() > 4, "trace must span several frames");

        let (body, deduped, expected) = chaotic_delivery(shards, &frames, chaos);
        prop_assert_eq!(
            deduped, expected,
            "dedup counter must equal the retransmitted overlap"
        );

        let direct = serve_sessions(
            &config(shards),
            vec![("s".into(), trace.to_binary())],
            1,
        )
        .unwrap();
        prop_assert_eq!(&body, &direct.reports[0].body);
    }

    // The delivery schedule never changes the answer: two different
    // chaos seeds over the same trace produce byte-identical reports.
    #[test]
    fn report_is_invariant_under_the_delivery_schedule(
        seed in 0u64..12,
        chaos_a in 0u64..10_000,
        chaos_b in 0u64..10_000,
    ) {
        let trace = GenConfig::small(seed).generate();
        let frames = per_action_frames(&trace);
        let (body_a, ..) = chaotic_delivery(2, &frames, chaos_a);
        let (body_b, ..) = chaotic_delivery(2, &frames, chaos_b);
        prop_assert_eq!(body_a, body_b);
    }
}
