//! Detection-rate methodology (§5.1–§5.3, Figures 3–6).

use std::collections::{BTreeMap, BTreeSet};

use pacer_lang::ir::CompiledProgram;
use pacer_runtime::VmError;

use crate::parallel::try_run_indexed;
use crate::trials::{run_trial, DetectorKind, RaceKey};

/// The race census from fully sampled trials (Table 2's right half).
#[derive(Clone, Debug)]
pub struct RaceCensus {
    /// Number of fully sampled trials run.
    pub trials: u32,
    /// For each distinct race: the number of trials it occurred in.
    pub trial_counts: BTreeMap<RaceKey, u32>,
    /// For each distinct race: total dynamic occurrences across all trials.
    pub dynamic_counts: BTreeMap<RaceKey, u64>,
}

impl RaceCensus {
    /// Runs `trials` fully sampled (r = 100%) trials of `program`.
    ///
    /// # Errors
    ///
    /// Propagates the first VM error.
    pub fn collect(
        program: &CompiledProgram,
        trials: u32,
        base_seed: u64,
    ) -> Result<Self, VmError> {
        let results = try_run_indexed(trials as usize, |i| {
            run_trial(program, DetectorKind::FastTrack, base_seed + i as u64)
        })?;
        let mut trial_counts: BTreeMap<RaceKey, u32> = BTreeMap::new();
        let mut dynamic_counts: BTreeMap<RaceKey, u64> = BTreeMap::new();
        for r in &results {
            for key in &r.distinct_races {
                *trial_counts.entry(*key).or_default() += 1;
            }
            for key in &r.dynamic_races {
                *dynamic_counts.entry(*key).or_default() += 1;
            }
        }
        Ok(RaceCensus {
            trials,
            trial_counts,
            dynamic_counts,
        })
    }

    /// Distinct races occurring in at least `threshold` trials.
    pub fn races_with_at_least(&self, threshold: u32) -> Vec<RaceKey> {
        self.trial_counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&k, _)| k)
            .collect()
    }

    /// The §5.1 *evaluation races*: those appearing in at least half of the
    /// fully sampled trials.
    pub fn evaluation_races(&self) -> Vec<RaceKey> {
        self.races_with_at_least(self.trials.div_ceil(2))
    }

    /// Average dynamic occurrences per fully sampled trial for `race`.
    pub fn dynamic_avg(&self, race: RaceKey) -> f64 {
        *self.dynamic_counts.get(&race).unwrap_or(&0) as f64 / self.trials as f64
    }

    /// Fraction of fully sampled trials in which `race` occurred.
    pub fn occurrence_rate(&self, race: RaceKey) -> f64 {
        *self.trial_counts.get(&race).unwrap_or(&0) as f64 / self.trials as f64
    }
}

/// Detection rates measured at one sampling rate (one x-position of
/// Figures 3–5).
#[derive(Clone, Debug)]
pub struct DetectionResult {
    /// The sampling rate the trials ran at.
    pub rate: f64,
    /// Trials run.
    pub trials: u32,
    /// Figure 3's measure: unweighted average over evaluation races of
    /// (avg dynamic detections per run at `rate`) / (avg at 100%).
    pub dynamic_rate: f64,
    /// Figure 4's measure: unweighted average over evaluation races of
    /// (fraction of trials detecting the race) / (fraction at 100%).
    pub distinct_rate: f64,
    /// Figure 5's data: per-race distinct detection rate.
    pub per_race: BTreeMap<RaceKey, f64>,
}

/// Runs `trials` sampled trials and computes detection rates against the
/// census (§5.2).
///
/// # Errors
///
/// Propagates the first VM error.
///
/// # Panics
///
/// Panics if `eval_races` is empty.
pub fn measure_detection(
    program: &CompiledProgram,
    kind: DetectorKind,
    rate_for_normalization: f64,
    census: &RaceCensus,
    eval_races: &[RaceKey],
    trials: u32,
    base_seed: u64,
) -> Result<DetectionResult, VmError> {
    assert!(!eval_races.is_empty(), "no evaluation races");
    let eval: BTreeSet<RaceKey> = eval_races.iter().copied().collect();
    let results = try_run_indexed(trials as usize, |i| {
        run_trial(program, kind, base_seed + 7919 * i as u64)
    })?;
    let mut dynamic: BTreeMap<RaceKey, u64> = BTreeMap::new();
    let mut detected_trials: BTreeMap<RaceKey, u32> = BTreeMap::new();
    for r in &results {
        for key in &r.dynamic_races {
            if eval.contains(key) {
                *dynamic.entry(*key).or_default() += 1;
            }
        }
        for key in &r.distinct_races {
            if eval.contains(key) {
                *detected_trials.entry(*key).or_default() += 1;
            }
        }
    }

    let mut dynamic_sum = 0.0;
    let mut distinct_sum = 0.0;
    let mut per_race = BTreeMap::new();
    for &race in &eval {
        let full_dynamic = census.dynamic_avg(race).max(1e-9);
        let here_dynamic = *dynamic.get(&race).unwrap_or(&0) as f64 / trials as f64;
        dynamic_sum += here_dynamic / full_dynamic;

        let full_distinct = census.occurrence_rate(race).max(1e-9);
        let here_distinct = *detected_trials.get(&race).unwrap_or(&0) as f64 / trials as f64;
        let rate = here_distinct / full_distinct;
        distinct_sum += rate;
        per_race.insert(race, rate);
    }
    Ok(DetectionResult {
        rate: rate_for_normalization,
        trials,
        dynamic_rate: dynamic_sum / eval.len() as f64,
        distinct_rate: distinct_sum / eval.len() as f64,
        per_race,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_workloads::{eclipse, hsqldb, Scale};

    #[test]
    fn census_counts_trials_and_dynamics() {
        let program = hsqldb(Scale::Test).compiled();
        let census = RaceCensus::collect(&program, 6, 100).unwrap();
        assert_eq!(census.trials, 6);
        let eval = census.evaluation_races();
        assert!(!eval.is_empty(), "hsqldb has reliable races");
        for &race in &eval {
            assert!(census.occurrence_rate(race) >= 0.5);
            assert!(census.dynamic_avg(race) > 0.0);
        }
        // Threshold 1 is a superset of the evaluation set.
        assert!(census.races_with_at_least(1).len() >= eval.len());
    }

    #[test]
    fn full_rate_detection_is_near_one() {
        let program = hsqldb(Scale::Test).compiled();
        let census = RaceCensus::collect(&program, 6, 42).unwrap();
        let eval = census.evaluation_races();
        let result = measure_detection(
            &program,
            DetectorKind::Pacer { rate: 1.0 },
            1.0,
            &census,
            &eval,
            6,
            42,
        )
        .unwrap();
        assert!(
            result.distinct_rate > 0.7,
            "full sampling should find evaluation races: {}",
            result.distinct_rate
        );
        assert_eq!(result.per_race.len(), eval.len());
    }

    #[test]
    fn zero_sampling_detects_nothing() {
        let program = eclipse(Scale::Test).compiled();
        let census = RaceCensus::collect(&program, 4, 7).unwrap();
        let eval = census.evaluation_races();
        let result = measure_detection(
            &program,
            DetectorKind::Pacer { rate: 0.0 },
            0.0,
            &census,
            &eval,
            4,
            7,
        )
        .unwrap();
        assert_eq!(result.dynamic_rate, 0.0);
        assert_eq!(result.distinct_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "no evaluation races")]
    fn empty_eval_set_panics() {
        let program = eclipse(Scale::Test).compiled();
        let census = RaceCensus {
            trials: 1,
            trial_counts: BTreeMap::new(),
            dynamic_counts: BTreeMap::new(),
        };
        let _ = measure_detection(&program, DetectorKind::FastTrack, 1.0, &census, &[], 1, 0);
    }
}
