//! Small statistics helpers shared by the experiments.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (average of the middle two for even lengths); 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    // total_cmp gives NaN a defined order instead of panicking on it;
    // wall-clock samples should never be NaN, but a robustness harness
    // must not fall over if one is.
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Normal-approximation confidence interval for a binomial proportion:
/// `p̂ ± z·σ`, clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = pacer_harness::math::binomial_ci(0.5, 100, 1.96);
/// assert!(lo > 0.39 && hi < 0.61);
/// ```
pub fn binomial_ci(p_hat: f64, n: u32, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let sigma = (p_hat * (1.0 - p_hat) / f64::from(n)).sqrt();
    ((p_hat - z * sigma).max(0.0), (p_hat + z * sigma).min(1.0))
}

/// Expected number of trials until the first detection of an event with
/// per-trial probability `p` (the geometric-distribution mean `1/p`).
///
/// §5.1's arithmetic: "Even a frequent race with o = 100% and r = 1%
/// requires 100 trials" — per-trial detection probability `r·o = 1%`,
/// expectation 100.
///
/// # Examples
///
/// ```
/// assert_eq!(pacer_harness::math::expected_trials_to_detect(0.01), 100.0);
/// ```
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`.
pub fn expected_trials_to_detect(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
    1.0 / p
}

/// Trials needed to detect an event of per-trial probability `p` with
/// overall probability at least `target`: `⌈ln(1−target)/ln(1−p)⌉`.
///
/// §5.1: "with a sampling rate r = 1% and an occurrence rate o = 2% … we
/// would need 5000 trials to expect the race to be reported in one trial —
/// and many more trials to report the race with high probability."
///
/// # Examples
///
/// ```
/// // r = 1%, o = 2% ⇒ p = 0.0002; 95% confidence needs ~15k trials.
/// let n = pacer_harness::math::trials_for_probability(0.0002, 0.95);
/// assert!((14_000..16_000).contains(&n));
/// ```
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1` and `0 ≤ target < 1`.
pub fn trials_for_probability(p: f64, target: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    if target == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return 1;
    }
    ((1.0 - target).ln() / (1.0 - p).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12, "classic example: σ = 2, got {s}");
    }

    #[test]
    fn median_handles_both_parities() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn detection_trial_arithmetic_matches_the_paper() {
        // "Even a frequent race with o = 100% and r = 1% requires 100
        // trials to have break-even odds" (expected-detections reading).
        assert_eq!(expected_trials_to_detect(0.01), 100.0);
        // r = 1%, o = 2% ⇒ "we would need 5000 trials to expect the race
        // to be reported in one trial".
        assert_eq!(expected_trials_to_detect(0.01 * 0.02), 5000.0);
        // "many more trials to report the race with high probability":
        let n95 = trials_for_probability(0.0002, 0.95);
        assert!(n95 > 10_000, "{n95}");
        assert_eq!(trials_for_probability(0.5, 0.0), 0);
        assert!(trials_for_probability(0.5, 0.75) == 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_panics() {
        expected_trials_to_detect(0.0);
    }

    #[test]
    fn binomial_ci_shrinks_with_n() {
        let (lo1, hi1) = binomial_ci(0.5, 10, 1.96);
        let (lo2, hi2) = binomial_ci(0.5, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
        assert_eq!(binomial_ci(0.5, 0, 1.96), (0.0, 1.0));
        let (lo, hi) = binomial_ci(0.0, 50, 3.0);
        assert_eq!((lo, hi), (0.0, 0.0));
    }
}
