//! Wall-clock overhead measurement (Figures 7–9).

use std::time::Duration;

use pacer_lang::ir::CompiledProgram;
use pacer_runtime::VmError;

use crate::trials::{run_trial, DetectorKind};

/// Wall-clock time for one configuration, totalled over the trial seeds.
#[derive(Clone, Debug)]
pub struct OverheadPoint {
    /// The configuration measured.
    pub kind: DetectorKind,
    /// Total wall-clock time over the trials (after a warm-up run).
    pub total: Duration,
    /// Slowdown relative to the uninstrumented baseline (1.0 = no
    /// overhead).
    pub slowdown: f64,
}

/// Overheads of a set of configurations on one program, all normalized to
/// the uninstrumented baseline — the bars of Figure 7 / the curves of
/// Figures 8–9.
#[derive(Clone, Debug)]
pub struct OverheadProfile {
    /// Baseline total over the trials.
    pub base: Duration,
    /// One point per requested configuration, in input order.
    pub points: Vec<OverheadPoint>,
}

/// Measures total wall time of each configuration over `trials_each` runs
/// with identical seeds per configuration, so every configuration executes
/// the *same set of schedules* and only the analysis cost differs.
/// Individual runs last a few milliseconds, so totals (preceded by one
/// warm-up run) are used rather than the paper's median-of-10 of
/// minutes-long runs.
///
/// # Errors
///
/// Propagates the first VM error.
///
/// # Panics
///
/// Panics if `trials_each == 0`.
pub fn measure_overhead(
    program: &CompiledProgram,
    kinds: &[DetectorKind],
    trials_each: u32,
    base_seed: u64,
) -> Result<OverheadProfile, VmError> {
    assert!(trials_each > 0, "need at least one trial per configuration");
    // Warm up every configuration once, then *interleave* them round-robin
    // so slow machine drift (other processes, frequency scaling) hits all
    // configurations equally instead of biasing whichever ran last.
    let _ = run_trial(program, DetectorKind::Uninstrumented, base_seed)?;
    for &kind in kinds {
        let _ = run_trial(program, kind, base_seed)?;
    }
    let mut base = Duration::ZERO;
    let mut totals = vec![Duration::ZERO; kinds.len()];
    for i in 0..trials_each {
        let seed = base_seed + u64::from(i);
        base += run_trial(program, DetectorKind::Uninstrumented, seed)?.wall;
        for (k, &kind) in kinds.iter().enumerate() {
            totals[k] += run_trial(program, kind, seed)?.wall;
        }
    }
    let points = kinds
        .iter()
        .zip(totals)
        .map(|(&kind, total)| OverheadPoint {
            kind,
            total,
            slowdown: total.as_secs_f64() / base.as_secs_f64().max(1e-9),
        })
        .collect();
    Ok(OverheadProfile { base, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_workloads::{xalan, Scale};

    #[test]
    fn overheads_measure_every_configuration() {
        // Wall-clock ordering claims are validated by the release-mode
        // `reproduce fig7/fig8` experiments; under parallel debug test
        // execution timing is too noisy, so this only checks structure.
        let program = xalan(Scale::Test).compiled();
        let profile = measure_overhead(
            &program,
            &[
                DetectorKind::SyncOnly,
                DetectorKind::Pacer { rate: 0.0 },
                DetectorKind::FastTrack,
            ],
            3,
            1,
        )
        .unwrap();
        assert_eq!(profile.points.len(), 3);
        assert!(profile.base.as_nanos() > 0);
        for p in &profile.points {
            assert!(p.slowdown.is_finite() && p.slowdown > 0.0);
            assert!(p.total.as_nanos() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let program = xalan(Scale::Test).compiled();
        let _ = measure_overhead(&program, &[], 0, 0);
    }
}
