//! Single-trial execution under any detector configuration.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use pacer_core::{PacerDetector, PacerStats};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_faults::TrialFaults;
use pacer_governor::GovernorConfig;
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_obs::ObservableDetector;
use pacer_runtime::{
    GovernorSignal, InstrumentMode, NullDetector, RunOutcome, Vm, VmConfig, VmError,
};
use pacer_trace::{Detector, RaceReport, SiteId};

/// The normalized site pair identifying a *distinct* (static) race.
pub type RaceKey = (SiteId, SiteId);

/// Which detector (and configuration) a trial runs under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DetectorKind {
    /// No detector at all (the unmodified-VM baseline).
    Uninstrumented,
    /// Object metadata + synchronization ops only ("OM + sync ops").
    SyncOnly,
    /// PACER at the given target sampling rate (0.0–1.0).
    Pacer {
        /// Target sampling rate `r`.
        rate: f64,
    },
    /// PACER with accordion-clock thread-id reuse.
    PacerAccordion {
        /// Target sampling rate `r`.
        rate: f64,
    },
    /// FASTTRACK (always-on precise detection).
    FastTrack,
    /// GENERIC `O(n)` vector-clock detection.
    Generic,
    /// Online LITERACE with the given burst length.
    LiteRace {
        /// Accesses per sampling burst (§5.3 uses 10 and 1,000).
        burst: u64,
    },
}

impl DetectorKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            DetectorKind::Uninstrumented => "base".into(),
            DetectorKind::SyncOnly => "om+sync".into(),
            DetectorKind::Pacer { rate } => format!("pacer@{}%", rate * 100.0),
            DetectorKind::PacerAccordion { rate } => {
                format!("pacer+acc@{}%", rate * 100.0)
            }
            DetectorKind::FastTrack => "fasttrack".into(),
            DetectorKind::Generic => "generic".into(),
            DetectorKind::LiteRace { burst } => format!("literace(b={burst})"),
        }
    }
}

/// Everything one trial produced.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Every dynamic race report's distinct key, in detection order.
    pub dynamic_races: Vec<RaceKey>,
    /// Deduplicated distinct races.
    pub distinct_races: BTreeSet<RaceKey>,
    /// Effective sampling rate (PACER: fraction of accesses analyzed;
    /// LITERACE: same; others: `None`).
    pub effective_rate: Option<f64>,
    /// PACER's operation statistics, when the detector was PACER.
    pub pacer_stats: Option<PacerStats>,
    /// PACER's live metadata at end of run, in machine words.
    pub final_metadata_words: Option<usize>,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// VM-level outcome (steps, GCs, action counts, space samples, …).
    pub outcome: RunOutcome,
}

impl TrialResult {
    fn from_reports(
        reports: &[RaceReport],
        effective_rate: Option<f64>,
        pacer_stats: Option<PacerStats>,
        final_metadata_words: Option<usize>,
        wall: Duration,
        outcome: RunOutcome,
    ) -> Self {
        let dynamic_races: Vec<RaceKey> = reports.iter().map(RaceReport::distinct_key).collect();
        let distinct_races = dynamic_races.iter().copied().collect();
        TrialResult {
            dynamic_races,
            distinct_races,
            effective_rate,
            pacer_stats,
            final_metadata_words,
            wall,
            outcome,
        }
    }
}

/// The paper's trial-count formula (§5.1):
/// `numTrials_r = min(max(⌈1000%/r⌉, 50), 500)` — e.g. 500 trials at 1%,
/// 334 at 3%, 50 at 100%.
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub fn num_trials(rate: f64) -> u32 {
    assert!(rate > 0.0, "rate must be positive");
    ((10.0 / rate).ceil() as u32).clamp(50, 500)
}

/// Runs one trial of `program` under `kind` with scheduler seed `seed`.
///
/// # Errors
///
/// Propagates [`VmError`]s (step limit, deadlock, …) from the run.
pub fn run_trial(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
) -> Result<TrialResult, VmError> {
    run_trial_with(program, kind, seed, TrialFaults::default())
}

/// Runs `program` once at sampling rate `rate` and returns the action trace
/// the VM emitted (including its `sbegin`/`send` markers), with no race
/// detector attached.
///
/// This is the capture half of the record/replay split: the trace can be
/// saved with [`Trace::save_binary`](pacer_trace::Trace::save_binary) (or as
/// text) and re-analysed offline by any detector, which must produce the
/// same report as an online run with the same seed and rate.
///
/// # Errors
///
/// Propagates [`VmError`]s from the execution.
pub fn record_trial_trace(
    program: &CompiledProgram,
    rate: f64,
    seed: u64,
) -> Result<pacer_trace::Trace, VmError> {
    let cfg = VmConfig::new(seed).with_sampling_rate(rate);
    let mut rec = pacer_trace::RecordingDetector::new();
    Vm::run(program, &mut rec, &cfg)?;
    Ok(rec.into_trace())
}

/// Applies an optional governor configuration to a [`VmConfig`].
pub(crate) fn governed_cfg(cfg: VmConfig, governor: Option<&GovernorConfig>) -> VmConfig {
    match governor {
        Some(g) => cfg.with_governor(g.clone()),
        None => cfg,
    }
}

/// Runs the VM with the standard detector-side governor hook (metadata
/// polling + rate-change delivery), then converts a sticky vector-clock
/// overflow into the typed [`VmError::ClockOverflow`] — an *organic*
/// (non-injected) trial error the resilient engine can quarantine.
pub(crate) fn run_vm<D: ObservableDetector>(
    program: &CompiledProgram,
    cfg: &VmConfig,
    det: &mut D,
) -> Result<RunOutcome, VmError> {
    let outcome = Vm::run_governed(
        program,
        det,
        cfg,
        |_, _| {},
        |d, sig| match sig {
            GovernorSignal::PollMemBytes => d.space_breakdown().total_words() * 8,
            GovernorSignal::RateChanged(r) => {
                d.on_rate_change(r);
                0
            }
        },
    )?;
    match det.clock_overflow() {
        Some(t) => Err(VmError::ClockOverflow(t)),
        None => Ok(outcome),
    }
}

/// [`run_trial`] with fault injections armed for this attempt (the
/// resilient engine's entry point). `TrialFaults::default()` is exactly
/// `run_trial`.
///
/// # Errors
///
/// Propagates [`VmError`]s, including injected ones.
pub fn run_trial_with(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
    faults: TrialFaults,
) -> Result<TrialResult, VmError> {
    run_trial_governed(program, kind, seed, faults, None)
}

/// [`run_trial_with`] under an optional resource governor: budgets are
/// enforced at GC boundaries and the trial's [`RunOutcome::governor`]
/// carries the decision summary. `None` is exactly `run_trial_with`.
///
/// # Errors
///
/// Propagates [`VmError`]s, including injected ones.
pub fn run_trial_governed(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
    faults: TrialFaults,
    governor: Option<&GovernorConfig>,
) -> Result<TrialResult, VmError> {
    let start = Instant::now();
    match kind {
        DetectorKind::Uninstrumented => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_instrument(InstrumentMode::Off)
                    .with_faults(faults),
                governor,
            );
            let mut det = NullDetector;
            let outcome = Vm::run(program, &mut det, &cfg)?;
            Ok(TrialResult::from_reports(
                &[],
                None,
                None,
                None,
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::SyncOnly => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_instrument(InstrumentMode::SyncOnly)
                    .with_faults(faults),
                governor,
            );
            let mut det = FastTrackDetector::new();
            let outcome = run_vm(program, &cfg, &mut det)?;
            Ok(TrialResult::from_reports(
                &[],
                None,
                None,
                None,
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::Pacer { rate } => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_sampling_rate(rate)
                    .with_faults(faults),
                governor,
            );
            let mut det = PacerDetector::new();
            let outcome = run_vm(program, &cfg, &mut det)?;
            Ok(TrialResult::from_reports(
                det.races(),
                det.stats().effective_rate(),
                Some(*det.stats()),
                Some(det.footprint_words()),
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::PacerAccordion { rate } => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_sampling_rate(rate)
                    .with_faults(faults),
                governor,
            );
            let mut det = pacer_core::AccordionPacerDetector::new();
            let outcome = run_vm(program, &cfg, &mut det)?;
            Ok(TrialResult::from_reports(
                det.races(),
                det.inner().stats().effective_rate(),
                Some(*det.inner().stats()),
                Some(det.inner().footprint_words()),
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::FastTrack => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            let mut det = FastTrackDetector::new();
            let outcome = run_vm(program, &cfg, &mut det)?;
            let words = det.footprint_words();
            Ok(TrialResult::from_reports(
                det.races(),
                Some(1.0),
                None,
                Some(words),
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::Generic => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            let mut det = GenericDetector::new();
            let outcome = run_vm(program, &cfg, &mut det)?;
            let words = det.footprint_words();
            Ok(TrialResult::from_reports(
                det.races(),
                Some(1.0),
                None,
                Some(words),
                start.elapsed(),
                outcome,
            ))
        }
        DetectorKind::LiteRace { burst } => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            let lr_cfg = LiteRaceConfig {
                burst_length: burst,
                ..LiteRaceConfig::default()
            };
            let mut det = LiteRaceDetector::new(lr_cfg, seed ^ 0x117e);
            let outcome = run_vm(program, &cfg, &mut det)?;
            let words = det.footprint_words();
            Ok(TrialResult::from_reports(
                det.races(),
                det.effective_rate(),
                None,
                Some(words),
                start.elapsed(),
                outcome,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_workloads::{eclipse, Scale};

    #[test]
    fn num_trials_matches_paper_examples() {
        assert_eq!(num_trials(0.01), 500);
        assert_eq!(num_trials(0.03), 334);
        assert_eq!(num_trials(0.05), 200);
        assert_eq!(num_trials(0.10), 100);
        assert_eq!(num_trials(0.25), 50);
        assert_eq!(num_trials(1.0), 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_trials_panics() {
        num_trials(0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            DetectorKind::Uninstrumented,
            DetectorKind::SyncOnly,
            DetectorKind::Pacer { rate: 0.03 },
            DetectorKind::FastTrack,
            DetectorKind::Generic,
            DetectorKind::LiteRace { burst: 10 },
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(DetectorKind::label).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn pacer_at_full_rate_finds_fasttrack_races() {
        let program = eclipse(Scale::Test).compiled();
        let ft = run_trial(&program, DetectorKind::FastTrack, 5).unwrap();
        let pacer = run_trial(&program, DetectorKind::Pacer { rate: 1.0 }, 5).unwrap();
        assert_eq!(
            pacer.distinct_races, ft.distinct_races,
            "same seed, full sampling: identical verdicts"
        );
        assert!(pacer.pacer_stats.is_some());
        assert!(ft.effective_rate == Some(1.0));
    }

    #[test]
    fn pacer_at_zero_rate_finds_nothing() {
        let program = eclipse(Scale::Test).compiled();
        let r = run_trial(&program, DetectorKind::Pacer { rate: 0.0 }, 5).unwrap();
        assert!(r.dynamic_races.is_empty());
        let stats = r.pacer_stats.unwrap();
        assert_eq!(stats.sample_periods, 0);
        assert_eq!(stats.reads.sampling_slow + stats.writes.sampling_slow, 0);
    }

    #[test]
    fn uninstrumented_trial_reports_outcome_only() {
        let program = eclipse(Scale::Test).compiled();
        let r = run_trial(&program, DetectorKind::Uninstrumented, 0).unwrap();
        assert!(r.dynamic_races.is_empty());
        assert!(r.outcome.steps > 0);
        assert!(r.effective_rate.is_none());
    }
}
