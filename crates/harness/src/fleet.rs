//! Distributed-debugging deployment simulation.
//!
//! The paper's deployment story (§1, §3): "we envision developers deploying
//! PACER on many deployed instances, as in distributed debugging
//! frameworks [17; 18]. … Since PACER guarantees that the chance of finding
//! *any individual race* is equal to the sampling rate, with enough
//! deployed instances, the odds of finding every race become high." This
//! module simulates that fleet: many independent instances, each running
//! the workload once under PACER at a low sampling rate, aggregating their
//! reports centrally.

use std::collections::{BTreeMap, BTreeSet};

use pacer_lang::ir::CompiledProgram;
use pacer_runtime::VmError;

use crate::parallel::try_run_indexed;
use crate::trials::{run_trial, DetectorKind, RaceKey};

/// Aggregated results of a simulated deployment.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Instances simulated.
    pub instances: u32,
    /// Sampling rate each instance ran at.
    pub rate: f64,
    /// For each distinct race: how many instances reported it.
    pub reporters: BTreeMap<RaceKey, u32>,
    /// Cumulative distinct races after each instance (growth curve).
    pub cumulative: Vec<usize>,
}

impl FleetReport {
    /// Distinct races found by at least one instance.
    pub fn found(&self) -> BTreeSet<RaceKey> {
        self.reporters.keys().copied().collect()
    }

    /// Fraction of `targets` found by the fleet.
    pub fn coverage(&self, targets: &[RaceKey]) -> f64 {
        if targets.is_empty() {
            return 1.0;
        }
        let found = self.found();
        targets.iter().filter(|t| found.contains(t)).count() as f64 / targets.len() as f64
    }

    /// Mean number of reporting instances per found race — roughly
    /// `instances × rate × occurrence` for reliable races.
    pub fn mean_reporters(&self) -> Option<f64> {
        (!self.reporters.is_empty()).then(|| {
            self.reporters.values().map(|&v| v as f64).sum::<f64>() / self.reporters.len() as f64
        })
    }
}

/// The scheduler seed fleet instance `index` runs with: a fixed prime
/// stride from the base seed, shared by every fleet engine (plain,
/// observed, and resilient) so their trials — and checkpoint journals —
/// are interchangeable.
pub fn fleet_trial_seed(base_seed: u64, index: u64) -> u64 {
    base_seed.wrapping_add(104_729u64.wrapping_mul(index))
}

/// Simulates `instances` deployed runs at sampling rate `rate`, each with
/// its own schedule, aggregating race reports.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn simulate_fleet(
    program: &CompiledProgram,
    instances: u32,
    rate: f64,
    base_seed: u64,
) -> Result<FleetReport, VmError> {
    let results = try_run_indexed(instances as usize, |i| {
        run_trial(
            program,
            DetectorKind::Pacer { rate },
            fleet_trial_seed(base_seed, i as u64),
        )
    })?;
    let mut reporters: BTreeMap<RaceKey, u32> = BTreeMap::new();
    let mut cumulative = Vec::with_capacity(instances as usize);
    for r in &results {
        for key in &r.distinct_races {
            *reporters.entry(*key).or_default() += 1;
        }
        cumulative.push(reporters.len());
    }
    Ok(FleetReport {
        instances,
        rate,
        reporters,
        cumulative,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::RaceCensus;
    use pacer_workloads::{hsqldb, Scale};

    #[test]
    fn fleet_coverage_grows_with_instances() {
        let program = hsqldb(Scale::Test).compiled();
        let census = RaceCensus::collect(&program, 4, 77).unwrap();
        let eval = census.evaluation_races();
        let small = simulate_fleet(&program, 5, 0.10, 1).unwrap();
        let large = simulate_fleet(&program, 40, 0.10, 1).unwrap();
        assert!(large.coverage(&eval) >= small.coverage(&eval));
        assert!(
            large.coverage(&eval) > 0.5,
            "40 instances at 10% should find most reliable races: {}",
            large.coverage(&eval)
        );
        // The cumulative curve is monotone.
        assert!(large.cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_rate_fleet_finds_nothing() {
        let program = hsqldb(Scale::Test).compiled();
        let fleet = simulate_fleet(&program, 5, 0.0, 2).unwrap();
        assert!(fleet.found().is_empty());
        assert_eq!(fleet.coverage(&[]), 1.0, "vacuous coverage");
    }
}
