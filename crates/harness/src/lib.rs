//! Experiment harness: multi-trial runners, detection-rate computation,
//! overhead and space measurement, and table/figure rendering.
//!
//! This crate drives every experiment in the paper's evaluation (§5):
//!
//! * [`trials`] — compile-once workload running under any detector
//!   configuration, with the §5.1 trial-count formula
//!   `numTrials_r = min(max(⌈1000%/r⌉, 50), 500)`;
//! * [`detection`] — the §5.1/§5.2 methodology: a race *census* at a 100%
//!   sampling rate selects the *evaluation races* (those occurring in at
//!   least half the fully sampled trials), then sampled trials measure
//!   dynamic and distinct detection rates per race (Figures 3–6);
//! * [`overhead`] — wall-clock slowdown of each instrumentation
//!   configuration relative to the uninstrumented VM (Figures 7–9);
//! * [`space`] — live metadata + heap over normalized time via full-GC
//!   probes (Figure 10);
//! * [`census`] — thread/race counts (Table 2), effective sampling rates
//!   (Table 1), and operation counts (Table 3);
//! * [`fleet`] — the distributed-debugging deployment simulation from the
//!   paper's vision (§1): many instances, each sampling at a low rate;
//! * [`observed`] — the same trials wrapped in the observability layer
//!   ([`pacer_obs`]): each run also yields a unified metrics snapshot and
//!   a JSONL event trace, byte-identical at any job count;
//! * [`parallel`] — the deterministic trial engine: multi-trial loops fan
//!   out over a scoped worker pool ([`parallel::set_jobs`]) and merge in
//!   trial-index order, so results are bit-identical at any job count;
//! * [`resilient`] — the crash-resilient layer over [`parallel`]: every
//!   trial attempt runs under `catch_unwind` with deterministic capped
//!   retries, persistent failures are *quarantined* instead of aborting
//!   the campaign, and [`resilient::run_resilient_fleet`] checkpoints
//!   each completed trial to a journal it can later resume from
//!   byte-identically, and — when a [`pacer_governor`] budget is armed —
//!   merges per-trial degradation outcomes (rate steps, cooperative
//!   cancellations) into a [`resilient::GovernorReport`] next to the
//!   quarantine report (see `RESILIENCE.md`);
//! * [`journal`] — the append-only, checksummed checkpoint journal
//!   backing that resume path;
//! * [`shard`] — the shard unit both engines are built from: a worker
//!   thread owning detector state behind a bounded inbox, with balanced
//!   and broadcast feeds;
//! * [`service`] — the streaming detection service behind `pacer serve`:
//!   many concurrent `.ptrace` sessions demultiplexed onto a shard fleet
//!   by variable id, with deterministic merged transcripts, journal
//!   checkpoint/resume, and governor-driven admission shedding (see
//!   `SERVICE.md`);
//! * [`render`] — plain-text tables and data series for every table and
//!   figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod detection;
pub mod fleet;
pub mod journal;
pub mod math;
pub mod observed;
pub mod overhead;
pub mod parallel;
pub mod render;
pub mod resilient;
pub mod service;
pub mod shard;
pub mod space;
pub mod trials;

pub use detection::{DetectionResult, RaceCensus};
pub use resilient::{
    artifact_io_backoff, retry_artifact_io, run_resilient_fleet, DegradedTrial, EngineError,
    FleetEngineConfig, GovernorReport, QuarantineReport, QuarantinedTrial, ResilientFleet,
    RetryPolicy,
};
pub use service::{
    run_service, serve_sessions, DurableFrameError, DurableOpen, FrameAck, ServeConfig,
    ServeDetectorKind, ServeError, ServeOutput, ServiceHandle, SessionOutcome, SessionReport,
};
pub use shard::{ShardDown, ShardLost, Supervisor};
pub use trials::{num_trials, record_trial_trace, DetectorKind, RaceKey, TrialResult};
