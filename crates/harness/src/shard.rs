//! First-class shards: owned state behind a bounded inbox.
//!
//! A *shard* is the unit both concurrent engines in this crate are built
//! from: a worker thread that owns its state outright (detector slabs,
//! result buffers — never shared, never locked), fed through a bounded
//! `sync_channel` inbox, and drained by returning the state when its
//! inbox closes. The batch trial engine ([`parallel`](crate::parallel))
//! feeds shards trial indices; the streaming service
//! ([`service`](crate::service)) feeds them demultiplexed trace events.
//!
//! The bounded inbox doubles as backpressure: a producer that outruns a
//! shard blocks (or diverts, with [`Inboxes::send_balanced`]) instead of
//! queueing unboundedly. Mid-stream synchronization — flush barriers,
//! checkpoint points — is expressed as ordinary messages carrying a reply
//! channel, so the shard loop itself stays a plain FIFO drain.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// The send half of every shard inbox, handed to the feed closure of
/// [`run_sharded`]. Dropping it closes all inboxes, which is what ends
/// the shard workers.
pub struct Inboxes<M> {
    senders: Vec<SyncSender<M>>,
}

impl<M: Send> Inboxes<M> {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when there are no shards (never constructed by
    /// [`run_sharded`], which requires at least one).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends `msg` to one shard, blocking while its inbox is full.
    ///
    /// # Panics
    ///
    /// Panics if the shard worker terminated early (its own panic is
    /// already propagating through [`run_sharded`]).
    pub fn send(&self, shard: usize, msg: M) {
        if self.senders[shard].send(msg).is_err() {
            panic!("shard {shard} terminated before its inbox closed");
        }
    }

    /// Sends a copy of `msg` to every shard, in shard-index order.
    pub fn broadcast(&self, msg: M)
    where
        M: Clone,
    {
        for shard in 0..self.senders.len() {
            self.send(shard, msg.clone());
        }
    }

    /// Sends `msg` to `preferred`, or to the next shard (cyclically) with
    /// a free inbox slot when it is full — dynamic load balancing for
    /// feeds where any shard may take any message. Spins with a yield
    /// when every inbox is full.
    pub fn send_balanced(&self, preferred: usize, msg: M) {
        let n = self.senders.len();
        let mut msg = msg;
        loop {
            for k in 0..n {
                let shard = (preferred + k) % n;
                match self.senders[shard].try_send(msg) {
                    Ok(()) => return,
                    Err(TrySendError::Full(m)) => msg = m,
                    Err(TrySendError::Disconnected(_)) => {
                        panic!("shard {shard} terminated before its inbox closed")
                    }
                }
            }
            std::thread::yield_now();
        }
    }
}

/// Runs `shards` shard workers on scoped threads, feeds them from the
/// calling thread, and returns every shard's final state **in shard-index
/// order** along with the feed's own result.
///
/// Each worker runs `worker(shard_index, inbox)` to completion; the
/// conventional shape is a FIFO drain over the inbox that returns the
/// shard's owned state. `feed` receives the [`Inboxes`] by value and runs
/// on the calling thread; when it returns, the inboxes drop, the workers
/// see end-of-stream, and their states are joined in index order — so
/// any merge the caller performs over the returned `Vec` is deterministic
/// regardless of thread scheduling.
///
/// `capacity` bounds each inbox (0 = rendezvous): the backpressure knob.
///
/// A panic inside a worker or the feed propagates to the caller, exactly
/// like `std::thread::scope`.
///
/// # Panics
///
/// Panics if `shards` is zero, or to propagate a worker/feed panic.
pub fn run_sharded<M, S, T>(
    shards: usize,
    capacity: usize,
    worker: impl Fn(usize, Receiver<M>) -> S + Sync,
    feed: impl FnOnce(Inboxes<M>) -> T,
) -> (Vec<S>, T)
where
    M: Send,
    S: Send,
{
    assert!(shards > 0, "need at least one shard");
    std::thread::scope(|scope| {
        let worker = &worker;
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel(capacity);
            senders.push(tx);
            handles.push(scope.spawn(move || worker(shard, rx)));
        }
        let fed = feed(Inboxes { senders });
        let states = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(state) => state,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect();
        (states, fed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_return_in_shard_order() {
        let (states, ()) = run_sharded(
            4,
            8,
            |shard, rx: Receiver<u64>| {
                let sum: u64 = rx.iter().sum();
                (shard, sum)
            },
            |inboxes| {
                for v in 0..100u64 {
                    inboxes.send((v % 4) as usize, v);
                }
            },
        );
        let shards: Vec<_> = states.iter().map(|(s, _)| *s).collect();
        assert_eq!(shards, vec![0, 1, 2, 3]);
        let total: u64 = states.iter().map(|(_, sum)| sum).sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn broadcast_reaches_every_shard() {
        let (counts, ()) = run_sharded(
            3,
            4,
            |_, rx: Receiver<u32>| rx.iter().count(),
            |inboxes| {
                for _ in 0..5 {
                    inboxes.broadcast(7);
                }
            },
        );
        assert_eq!(counts, vec![5, 5, 5]);
    }

    #[test]
    fn balanced_send_diverts_from_full_inboxes() {
        // One shard sleeps; with capacity 1 the feed must divert most
        // messages to the others rather than blocking on the sleeper.
        let (counts, ()) = run_sharded(
            2,
            1,
            |shard, rx: Receiver<u32>| {
                let mut n = 0;
                for _ in rx {
                    if shard == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    n += 1;
                }
                n
            },
            |inboxes| {
                for _ in 0..40 {
                    inboxes.send_balanced(0, 1);
                }
            },
        );
        assert_eq!(counts[0] + counts[1], 40);
        assert!(counts[1] > counts[0], "idle shard should absorb the load");
    }

    #[test]
    fn reply_channels_make_flush_barriers() {
        #[derive(Clone)]
        enum Msg {
            Add(u64),
            Flush(SyncSender<u64>),
        }
        let (_, mid) = run_sharded(
            2,
            4,
            |_, rx: Receiver<Msg>| {
                let mut acc = 0;
                for msg in rx {
                    match msg {
                        Msg::Add(v) => acc += v,
                        Msg::Flush(reply) => {
                            let _ = reply.send(acc);
                        }
                    }
                }
            },
            |inboxes| {
                inboxes.send(0, Msg::Add(2));
                inboxes.send(1, Msg::Add(3));
                let (tx, rx) = sync_channel(2);
                inboxes.broadcast(Msg::Flush(tx));
                rx.iter().take(2).sum::<u64>()
            },
        );
        assert_eq!(mid, 5, "flush observes everything sent before it");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = run_sharded(
            2,
            1,
            |shard, rx: Receiver<u32>| {
                for _ in rx {
                    if shard == 1 {
                        panic!("boom");
                    }
                }
            },
            |inboxes| inboxes.send(1, 1),
        );
    }
}
