//! First-class shards: owned state behind a bounded inbox.
//!
//! A *shard* is the unit both concurrent engines in this crate are built
//! from: a worker thread that owns its state outright (detector slabs,
//! result buffers — never shared, never locked), fed through a bounded
//! `sync_channel` inbox, and drained by returning the state when its
//! inbox closes. The batch trial engine ([`parallel`](crate::parallel))
//! feeds shards trial indices; the streaming service
//! ([`service`](crate::service)) feeds them demultiplexed trace events.
//!
//! The bounded inbox doubles as backpressure: a producer that outruns a
//! shard blocks (or diverts, with [`Inboxes::send_balanced`]) instead of
//! queueing unboundedly. Mid-stream synchronization — flush barriers,
//! checkpoint points — is expressed as ordinary messages carrying a reply
//! channel, so the shard loop itself stays a plain FIFO drain.
//!
//! # Supervision
//!
//! A shard worker that panics mid-drain is, by default, fatal: the panic
//! propagates through [`run_sharded`] at join. The streaming service
//! cannot afford that — one poisoned detector callback would take down
//! every live session — so [`Supervisor`] provides the bounded-restart
//! discipline from RESILIENCE.md *inside* the worker loop: each unit of
//! work runs under `catch_unwind`; on panic the caller-supplied rebuild
//! hook reconstructs the shard's state deterministically (the service
//! replays per-session retained event logs) and the unit is retried,
//! until the per-unit attempt budget is exhausted and the unit's owner
//! fails with a typed [`ShardLost`]. The [`Inboxes::checked_send`] /
//! [`Inboxes::broadcast_live`] variants make producers robust to a shard
//! that died anyway (an organic bug outside supervision): they surface a
//! typed [`ShardDown`] instead of panicking the sending handler.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use crate::resilient::panic_message;

/// The send half of every shard inbox, handed to the feed closure of
/// [`run_sharded`]. Dropping it closes all inboxes, which is what ends
/// the shard workers.
pub struct Inboxes<M> {
    senders: Vec<SyncSender<M>>,
}

impl<M: Send> Inboxes<M> {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when there are no shards (never constructed by
    /// [`run_sharded`], which requires at least one).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends `msg` to one shard, blocking while its inbox is full.
    ///
    /// # Panics
    ///
    /// Panics if the shard worker terminated early (its own panic is
    /// already propagating through [`run_sharded`]).
    pub fn send(&self, shard: usize, msg: M) {
        if self.senders[shard].send(msg).is_err() {
            panic!("shard {shard} terminated before its inbox closed");
        }
    }

    /// Sends a copy of `msg` to every shard, in shard-index order.
    pub fn broadcast(&self, msg: M)
    where
        M: Clone,
    {
        for shard in 0..self.senders.len() {
            self.send(shard, msg.clone());
        }
    }

    /// Sends `msg` to one shard, reporting a dead shard as a typed
    /// [`ShardDown`] instead of panicking — the variant session handlers
    /// use so one dead worker can never wedge or kill the accept loop.
    ///
    /// # Errors
    ///
    /// [`ShardDown`] when the shard worker terminated before its inbox
    /// closed.
    pub fn checked_send(&self, shard: usize, msg: M) -> Result<(), ShardDown> {
        self.senders[shard]
            .send(msg)
            .map_err(|_| ShardDown { shard })
    }

    /// Sends a copy of `msg` to every *live* shard, in shard-index
    /// order, skipping dead ones; returns how many copies were
    /// delivered. Callers using a reply channel as a barrier must wait
    /// for exactly this many replies.
    pub fn broadcast_live(&self, msg: M) -> usize
    where
        M: Clone,
    {
        let mut delivered = 0;
        for shard in 0..self.senders.len() {
            if self.senders[shard].send(msg.clone()).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }

    /// Sends `msg` to `preferred`, or to the next shard (cyclically) with
    /// a free inbox slot when it is full — dynamic load balancing for
    /// feeds where any shard may take any message. Spins with a yield
    /// when every inbox is full.
    pub fn send_balanced(&self, preferred: usize, msg: M) {
        let n = self.senders.len();
        let mut msg = msg;
        loop {
            for k in 0..n {
                let shard = (preferred + k) % n;
                match self.senders[shard].try_send(msg) {
                    Ok(()) => return,
                    Err(TrySendError::Full(m)) => msg = m,
                    Err(TrySendError::Disconnected(_)) => {
                        panic!("shard {shard} terminated before its inbox closed")
                    }
                }
            }
            std::thread::yield_now();
        }
    }
}

/// Runs `shards` shard workers on scoped threads, feeds them from the
/// calling thread, and returns every shard's final state **in shard-index
/// order** along with the feed's own result.
///
/// Each worker runs `worker(shard_index, inbox)` to completion; the
/// conventional shape is a FIFO drain over the inbox that returns the
/// shard's owned state. `feed` receives the [`Inboxes`] by value and runs
/// on the calling thread; when it returns, the inboxes drop, the workers
/// see end-of-stream, and their states are joined in index order — so
/// any merge the caller performs over the returned `Vec` is deterministic
/// regardless of thread scheduling.
///
/// `capacity` bounds each inbox (0 = rendezvous): the backpressure knob.
///
/// A panic inside a worker or the feed propagates to the caller, exactly
/// like `std::thread::scope`.
///
/// # Panics
///
/// Panics if `shards` is zero, or to propagate a worker/feed panic.
pub fn run_sharded<M, S, T>(
    shards: usize,
    capacity: usize,
    worker: impl Fn(usize, Receiver<M>) -> S + Sync,
    feed: impl FnOnce(Inboxes<M>) -> T,
) -> (Vec<S>, T)
where
    M: Send,
    S: Send,
{
    assert!(shards > 0, "need at least one shard");
    std::thread::scope(|scope| {
        let worker = &worker;
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel(capacity);
            senders.push(tx);
            handles.push(scope.spawn(move || worker(shard, rx)));
        }
        let fed = feed(Inboxes { senders });
        let states = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(state) => state,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect();
        (states, fed)
    })
}

/// A shard worker terminated before its inbox closed — the typed form of
/// the panic [`Inboxes::send`] raises, for producers that must survive a
/// dead shard ([`Inboxes::checked_send`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardDown {
    /// Index of the dead shard.
    pub shard: usize,
}

impl std::fmt::Display for ShardDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} terminated before its inbox closed", self.shard)
    }
}

impl std::error::Error for ShardDown {}

/// A supervised shard abandoned one unit of work: every attempt (the
/// original plus the rebuild-and-retry replays) panicked, so the unit's
/// owner — and only it — must fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLost {
    /// Panic message of the final attempt.
    pub reason: String,
    /// Attempts consumed before giving up (1 + retries).
    pub attempts: u32,
}

impl std::fmt::Display for ShardLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard lost after {} attempt(s): {}",
            self.attempts, self.reason
        )
    }
}

impl std::error::Error for ShardLost {}

/// Bounded-restart supervisor for a shard worker's drain loop.
///
/// [`supervise`](Supervisor::supervise) runs one unit of work (typically:
/// apply one event to the shard's state) under `catch_unwind`. On panic
/// the shard's state is assumed poisoned; the caller's `rebuild` hook
/// reconstructs it — deterministically, e.g. by replaying retained event
/// logs through fresh detectors — and the unit is retried with the next
/// attempt index (so deterministic fault plans with `limit=1` stop
/// firing and the retry succeeds). A unit whose every attempt panics is
/// abandoned with a typed [`ShardLost`]; the worker loop carries on with
/// its other sessions, so the blast radius of a poisoned unit is exactly
/// its owner.
///
/// Restart accounting is cumulative across units ([`restarts`]); the
/// per-unit attempt budget is fixed at construction.
///
/// [`restarts`]: Supervisor::restarts
pub struct Supervisor {
    retries_per_unit: u32,
    restarts: u64,
}

impl Supervisor {
    /// A supervisor giving each unit `retries_per_unit` replays after its
    /// first panicking attempt.
    pub fn new(retries_per_unit: u32) -> Supervisor {
        Supervisor {
            retries_per_unit,
            restarts: 0,
        }
    }

    /// Total panics caught (= rebuilds performed) so far, across units.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Runs `work(state, attempt)` under `catch_unwind`, rebuilding via
    /// `rebuild(state)` and retrying on panic, up to the per-unit budget.
    ///
    /// `rebuild` itself must not panic; if it does, the panic propagates
    /// (callers that can tolerate partial rebuilds should catch inside
    /// the hook and drop only the unrecoverable pieces).
    ///
    /// # Errors
    ///
    /// [`ShardLost`] carrying the final panic message once every attempt
    /// panicked.
    pub fn supervise<S, T>(
        &mut self,
        state: &mut S,
        mut work: impl FnMut(&mut S, u32) -> T,
        mut rebuild: impl FnMut(&mut S),
    ) -> Result<T, ShardLost> {
        let mut reason = String::new();
        for attempt in 0..=self.retries_per_unit {
            match catch_unwind(AssertUnwindSafe(|| work(state, attempt))) {
                Ok(value) => return Ok(value),
                Err(payload) => {
                    self.restarts += 1;
                    reason = panic_message(payload.as_ref());
                    rebuild(state);
                }
            }
        }
        Err(ShardLost {
            reason,
            attempts: self.retries_per_unit + 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_return_in_shard_order() {
        let (states, ()) = run_sharded(
            4,
            8,
            |shard, rx: Receiver<u64>| {
                let sum: u64 = rx.iter().sum();
                (shard, sum)
            },
            |inboxes| {
                for v in 0..100u64 {
                    inboxes.send((v % 4) as usize, v);
                }
            },
        );
        let shards: Vec<_> = states.iter().map(|(s, _)| *s).collect();
        assert_eq!(shards, vec![0, 1, 2, 3]);
        let total: u64 = states.iter().map(|(_, sum)| sum).sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn broadcast_reaches_every_shard() {
        let (counts, ()) = run_sharded(
            3,
            4,
            |_, rx: Receiver<u32>| rx.iter().count(),
            |inboxes| {
                for _ in 0..5 {
                    inboxes.broadcast(7);
                }
            },
        );
        assert_eq!(counts, vec![5, 5, 5]);
    }

    #[test]
    fn balanced_send_diverts_from_full_inboxes() {
        // One shard sleeps; with capacity 1 the feed must divert most
        // messages to the others rather than blocking on the sleeper.
        let (counts, ()) = run_sharded(
            2,
            1,
            |shard, rx: Receiver<u32>| {
                let mut n = 0;
                for _ in rx {
                    if shard == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    n += 1;
                }
                n
            },
            |inboxes| {
                for _ in 0..40 {
                    inboxes.send_balanced(0, 1);
                }
            },
        );
        assert_eq!(counts[0] + counts[1], 40);
        assert!(counts[1] > counts[0], "idle shard should absorb the load");
    }

    #[test]
    fn reply_channels_make_flush_barriers() {
        #[derive(Clone)]
        enum Msg {
            Add(u64),
            Flush(SyncSender<u64>),
        }
        let (_, mid) = run_sharded(
            2,
            4,
            |_, rx: Receiver<Msg>| {
                let mut acc = 0;
                for msg in rx {
                    match msg {
                        Msg::Add(v) => acc += v,
                        Msg::Flush(reply) => {
                            let _ = reply.send(acc);
                        }
                    }
                }
            },
            |inboxes| {
                inboxes.send(0, Msg::Add(2));
                inboxes.send(1, Msg::Add(3));
                let (tx, rx) = sync_channel(2);
                inboxes.broadcast(Msg::Flush(tx));
                rx.iter().take(2).sum::<u64>()
            },
        );
        assert_eq!(mid, 5, "flush observes everything sent before it");
    }

    #[test]
    fn supervisor_rebuilds_and_retries_then_gives_up() {
        let mut sup = Supervisor::new(2);

        // A unit that panics on its first two attempts: the rebuild hook
        // resets the state, the third attempt succeeds.
        let mut state = 10u32;
        let out = sup.supervise(
            &mut state,
            |s, attempt| {
                *s += 1;
                if attempt < 2 {
                    panic!("flaky unit (attempt {attempt})");
                }
                *s
            },
            |s| *s = 10,
        );
        assert_eq!(
            out,
            Ok(11),
            "two rebuilds reset the state, then a clean attempt"
        );
        assert_eq!(sup.restarts(), 2);

        // A unit that always panics exhausts its budget and is lost;
        // the supervisor (and its state) remain usable afterwards.
        let err = sup
            .supervise(
                &mut state,
                |_s: &mut u32, _attempt| -> u32 { panic!("hopeless") },
                |s| *s = 10,
            )
            .unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(err.reason.contains("hopeless"));
        assert_eq!(sup.restarts(), 5);
        let ok = sup.supervise(&mut state, |s, _| *s, |_| {});
        assert_eq!(ok, Ok(10), "a lost unit does not poison the next one");
    }

    #[test]
    fn checked_send_reports_dead_shards_without_panicking() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Shard 1 returns early (its inbox closes while the feed still
        // holds senders), so checked sends to it must surface ShardDown
        // and broadcast_live must skip it — without panicking the feed.
        let delivered = AtomicUsize::new(usize::MAX);
        let (_, ()) = run_sharded(
            2,
            4,
            |shard, rx: Receiver<u32>| {
                for v in rx {
                    if shard == 1 && v == 99 {
                        return; // simulate the worker dying
                    }
                }
            },
            |inboxes| {
                assert_eq!(inboxes.checked_send(0, 1), Ok(()));
                let _ = inboxes.checked_send(1, 99);
                let dead = loop {
                    match inboxes.checked_send(1, 1) {
                        Ok(()) => std::thread::yield_now(),
                        Err(down) => break down,
                    }
                };
                assert_eq!(dead, ShardDown { shard: 1 });
                assert!(dead.to_string().contains("shard 1"));
                delivered.store(inboxes.broadcast_live(2), Ordering::Relaxed);
            },
        );
        assert_eq!(delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = run_sharded(
            2,
            1,
            |shard, rx: Receiver<u32>| {
                for _ in rx {
                    if shard == 1 {
                        panic!("boom");
                    }
                }
            },
            |inboxes| inboxes.send(1, 1),
        );
    }
}
