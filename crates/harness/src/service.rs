//! The streaming detection service engine behind `pacer serve`.
//!
//! Batch entry points replay one trace into one detector. The service
//! accepts many concurrent *sessions* — each an independent `.ptrace`
//! stream (TRACE_FORMAT.md) — and runs the detection itself on a pool of
//! [`shard`] workers, so ingest parallelism and detection
//! parallelism scale independently of the number of connections.
//!
//! # Sharding and why it is exact
//!
//! Events are demultiplexed per the happens-before rules:
//!
//! * **accesses** (`rd`/`wr`) are routed to shard `x mod N` by variable
//!   id — per-variable metadata lives in exactly one shard;
//! * **sync events** (`acq`/`rel`/`fork`/`join`/`vrd`/`vwr`) and the
//!   **sampling markers** are broadcast to every shard.
//!
//! In every vector-clock detector here, an access only *reads* the
//! thread's clock and mutates that variable's metadata, while sync events
//! and markers only mutate thread/lock/volatile clocks and the sampling
//! state. Broadcasting the latter gives every shard an identical copy of
//! that shared state, so each access is checked against exactly the
//! state a single unsharded detector would have used: the union of the
//! shards' race reports *is* the unsharded report, at any `N`.
//!
//! LITERACE is the exception — its bursty sampler keys on per-(site ×
//! thread) access counts, which splitting accesses would skew — so
//! LITERACE sessions are routed whole to one shard (session-sharding:
//! still N-way parallel across sessions, never split within one).
//!
//! # Determinism
//!
//! Per-session reports depend only on the session's bytes and the
//! service configuration. The merged transcript orders sessions by name
//! and sums counts, so it is byte-identical regardless of shard count,
//! arrival interleaving, or handler scheduling (`tests/serve.rs` and the
//! ci.sh gate enforce this against `pacer replay`).
//!
//! # Recovery and backpressure
//!
//! Completed sessions checkpoint to the PR 4 checksummed journal and are
//! restored verbatim on `--resume` — a killed-and-resumed service emits
//! the same merged transcript as an uninterrupted one. Under memory
//! pressure (`--mem-budget`), the PR 5 governor steps the *admission
//! sampling rate* down a ladder: new sessions get a fresh sampling-period
//! overlay at the reduced rate (shedding detection work, never
//! connections). Full protocol and lifecycle rules live in `SERVICE.md`.
//!
//! # Supervision and lifecycle budgets
//!
//! Each shard worker applies events under a [`Supervisor`]: a panic in a
//! detector callback is caught, the shard's sessions are rebuilt
//! deterministically by replaying their retained event logs through
//! fresh detectors, and the event is retried — so the transcript stays
//! byte-identical to an uncrashed run. Only when the per-event attempt
//! budget is exhausted does the *owning session* (and no other) fail
//! with a typed [`ShardLost`] note. Sessions also carry lifecycle
//! budgets: an event deadline (`--session-deadline-events`), an
//! idle-timeout reaper driven by deterministic poll ticks
//! (`--idle-timeout`), and the `pacer-faults` serve sites (`shard-panic`,
//! `conn-drop`, `inbox-stall`) for chaos drills. Every terminal outcome
//! lands in exactly one [`SessionOutcome`] bucket, giving the
//! conservation law `admitted == completed + shed + failed + reaped`
//! ([`SessionCounters::conserved`]).

use std::cell::Cell;
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;

use pacer_collections::JsonValue;
use pacer_core::PacerDetector;
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_faults::{FaultPlan, INJECTED_PREFIX};
use pacer_governor::{
    default_ladder, millionths_from_rate, rate_from_millionths, Governor, GovernorConfig,
    GovernorSummary, DEFAULT_COOLDOWN,
};
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_obs::{ObservableDetector, ServeCounters, SessionCounters, TransportCounters};
use pacer_trace::binary;
use pacer_trace::gen::ResampleSampling;
use pacer_trace::stream::{AnyTraceReader, TraceStreamError, ValidatedActions};
use pacer_trace::{Action, Detector, SiteId};

use crate::journal::{self, JournalWriter};
use crate::resilient::panic_message;
use crate::shard::{self, Inboxes, ShardDown, ShardLost, Supervisor};

/// Bytes per metadata word, matching the space-accounting convention
/// used by the governor's memory budget everywhere else in the suite.
const WORD_BYTES: u64 = 8;

/// Detector families the service can run per shard. Mirrors the `pacer
/// replay` dispatch exactly (including `pacer-accordion` mapping to the
/// plain PACER engine) so per-session reports stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDetectorKind {
    /// PACER (also selected by the name `pacer-accordion`).
    Pacer,
    /// FASTTRACK, always-on precise detection.
    FastTrack,
    /// GENERIC O(n) vector-clock detection.
    Generic,
    /// LITERACE bursty sampling (session-sharded, see module docs).
    LiteRace,
}

impl ServeDetectorKind {
    /// Parses the `--detector` names `pacer replay` accepts.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown names.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "pacer" | "pacer-accordion" => Ok(ServeDetectorKind::Pacer),
            "fasttrack" => Ok(ServeDetectorKind::FastTrack),
            "generic" => Ok(ServeDetectorKind::Generic),
            "literace" => Ok(ServeDetectorKind::LiteRace),
            other => Err(format!("unknown detector `{other}`")),
        }
    }

    /// Whether accesses can be split across shards by variable id.
    fn var_shardable(self) -> bool {
        !matches!(self, ServeDetectorKind::LiteRace)
    }
}

/// One shard's detector instance for one session.
enum ServeDetector {
    Pacer(PacerDetector),
    FastTrack(FastTrackDetector),
    Generic(GenericDetector),
    LiteRace(LiteRaceDetector),
}

impl ServeDetector {
    fn build(kind: ServeDetectorKind, seed: u64) -> ServeDetector {
        match kind {
            ServeDetectorKind::Pacer => ServeDetector::Pacer(PacerDetector::new()),
            ServeDetectorKind::FastTrack => ServeDetector::FastTrack(FastTrackDetector::new()),
            ServeDetectorKind::Generic => ServeDetector::Generic(GenericDetector::new()),
            ServeDetectorKind::LiteRace => {
                ServeDetector::LiteRace(LiteRaceDetector::new(LiteRaceConfig::default(), seed))
            }
        }
    }

    fn on_action(&mut self, action: &Action) {
        match self {
            ServeDetector::Pacer(d) => d.on_action(action),
            ServeDetector::FastTrack(d) => d.on_action(action),
            ServeDetector::Generic(d) => d.on_action(action),
            ServeDetector::LiteRace(d) => d.on_action(action),
        }
    }

    fn dynamic_races(&self) -> u64 {
        let races = match self {
            ServeDetector::Pacer(d) => d.races(),
            ServeDetector::FastTrack(d) => d.races(),
            ServeDetector::Generic(d) => d.races(),
            ServeDetector::LiteRace(d) => d.races(),
        };
        races.len() as u64
    }

    fn distinct_races(&self) -> Vec<(SiteId, SiteId)> {
        match self {
            ServeDetector::Pacer(d) => d.distinct_races(),
            ServeDetector::FastTrack(d) => d.distinct_races(),
            ServeDetector::Generic(d) => d.distinct_races(),
            ServeDetector::LiteRace(d) => d.distinct_races(),
        }
    }

    fn footprint_words(&self) -> u64 {
        match self {
            ServeDetector::Pacer(d) => d.space_breakdown().total_words(),
            ServeDetector::FastTrack(d) => d.space_breakdown().total_words(),
            ServeDetector::Generic(d) => d.space_breakdown().total_words(),
            ServeDetector::LiteRace(d) => d.space_breakdown().total_words(),
        }
    }
}

/// Service configuration shared by the daemon, the client-driving CLI
/// mode, and the in-process test transport.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Detector worker count.
    pub shards: usize,
    /// Detector family each shard runs.
    pub detector: ServeDetectorKind,
    /// Seed for LITERACE sampling and shed-rate resampling overlays
    /// (same default as `pacer replay --seed`).
    pub seed: u64,
    /// Per-shard inbox bound — the backpressure depth.
    pub capacity: usize,
    /// Journal path for per-session checkpoints.
    pub checkpoint: Option<PathBuf>,
    /// Restore completed sessions from the checkpoint journal.
    pub resume: bool,
    /// Memory budget in bytes; arms the admission governor.
    pub mem_budget: Option<u64>,
    /// Mean sampling-period length for shed-rate overlays (same default
    /// as `pacer replay --resample-period`).
    pub resample_period: usize,
    /// Per-session event budget: a session decoding more events than
    /// this is rejected with a deadline error (`--session-deadline-events`).
    pub deadline_events: Option<u64>,
    /// Idle poll ticks before a stalled session is reaped
    /// (`--idle-timeout`). A tick is one timeout-ish read
    /// (`WouldBlock`/`TimedOut`); any delivered byte resets the count.
    pub idle_timeout_ticks: Option<u32>,
    /// Chaos fault plan; only the serve sites (`shard-panic`,
    /// `conn-drop`, `inbox-stall`) are consulted here.
    pub fault_plan: Option<FaultPlan>,
    /// Directory for durable sessions' per-session write-ahead segments
    /// (`--wal DIR`). Without it, durable sessions are resumable only
    /// within the process lifetime.
    pub wal: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults matching the CLI: 4 shards, seed 42, inbox depth 1024,
    /// no checkpoint, no budget, resample period 50, no lifecycle
    /// budgets, no faults.
    pub fn new(detector: ServeDetectorKind) -> Self {
        ServeConfig {
            shards: 4,
            detector,
            seed: 42,
            capacity: 1024,
            checkpoint: None,
            resume: false,
            mem_budget: None,
            resample_period: 50,
            deadline_events: None,
            idle_timeout_ticks: None,
            fault_plan: None,
            wal: None,
        }
    }
}

/// A service-level failure (configuration, journal, or transport I/O).
/// Per-session decode/validation problems are *not* errors at this level:
/// they become error reports for that session alone.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration.
    Config(String),
    /// Checkpoint journal failure.
    Journal(String),
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "{m}"),
            ServeError::Journal(m) => write!(f, "journal: {m}"),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The terminal bucket a session lands in. Buckets are disjoint and
/// exhaustive, which is what makes [`SessionCounters`]'s conservation
/// law (`admitted == completed + shed + failed + reaped`) checkable:
/// every admitted session is filed exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Completed at full sampling rate (truncated partials included).
    Clean,
    /// Completed at a governor-reduced sampling rate.
    Shed,
    /// Rejected: corrupt frame, invalid trace, duplicate name, deadline
    /// overrun, or unreachable shard.
    Failed,
    /// Reaped by the idle timeout before its stream completed.
    Reaped,
    /// Abandoned by shard supervision after the per-event attempt
    /// budget was exhausted.
    ShardLost,
}

impl SessionOutcome {
    /// Stable name used in journal entries and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SessionOutcome::Clean => "clean",
            SessionOutcome::Shed => "shed",
            SessionOutcome::Failed => "failed",
            SessionOutcome::Reaped => "reaped",
            SessionOutcome::ShardLost => "shard_lost",
        }
    }

    fn from_name(name: &str) -> Result<SessionOutcome, String> {
        match name {
            "clean" => Ok(SessionOutcome::Clean),
            "shed" => Ok(SessionOutcome::Shed),
            "failed" => Ok(SessionOutcome::Failed),
            "reaped" => Ok(SessionOutcome::Reaped),
            "shard_lost" => Ok(SessionOutcome::ShardLost),
            other => Err(format!("unknown session outcome {other:?}")),
        }
    }
}

/// One completed session's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionReport {
    /// Client-supplied session name (unique per service run).
    pub name: String,
    /// The response body — byte-identical to `pacer replay` of the same
    /// bytes (plus the resample line when shed), or a single `error:`
    /// line for rejected sessions.
    pub body: String,
    /// Actions analyzed (post-overlay).
    pub events: u64,
    /// Dynamic race reports, summed over shards.
    pub dynamic_races: u64,
    /// Distinct site pairs after the cross-shard union.
    pub distinct_races: u64,
    /// Admission sampling rate in millionths when the governor shed this
    /// session below full rate.
    pub shed_millionths: Option<u32>,
    /// Whether the stream ended mid-frame (partial, per TRACE_FORMAT.md).
    pub truncated: bool,
    /// Whether the session was rejected (corrupt frame, invalid trace,
    /// duplicate name, deadline, reap, or shard loss).
    pub error: bool,
    /// The disjoint accounting bucket this session landed in.
    pub outcome: SessionOutcome,
}

/// Everything a finished service run produced.
#[derive(Clone, Debug)]
pub struct ServeOutput {
    /// Per-session reports, sorted by session name.
    pub reports: Vec<SessionReport>,
    /// Per-shard counters in shard-index order.
    pub shard_counters: Vec<ServeCounters>,
    /// Session lifecycle accounting (see
    /// [`SessionCounters::conserved`]).
    pub sessions: SessionCounters,
    /// Governor outcome when a budget was armed.
    pub governor: Option<GovernorSummary>,
    /// Durable-transport accounting (connections, resumes, acks, WAL
    /// appends, dedups); all-zero for unix-socket and stdin runs.
    pub transport: TransportCounters,
    /// The deterministic merged transcript (see module docs).
    pub transcript: String,
}

impl ServeOutput {
    /// True when at least one session was rejected.
    pub fn any_errors(&self) -> bool {
        self.reports.iter().any(|r| r.error)
    }
}

/// Messages a session handler sends to shard workers. Per-channel FIFO
/// plus one-handler-per-session gives every shard each session's events
/// in stream order; `Close` doubles as the flush barrier.
#[derive(Clone)]
enum ShardMsg {
    /// One event of `session`, already routed or broadcast.
    Event { session: u32, action: Action },
    /// Flush barrier: reply with (and discard) the session's state.
    Close {
        session: u32,
        reply: SyncSender<(usize, ShardReport)>,
    },
    /// Reply with the shard's total live metadata footprint, in words.
    Poll { reply: SyncSender<u64> },
}

/// One shard's share of a closed session.
#[derive(Clone, Debug, Default)]
struct ShardReport {
    dynamic: u64,
    distinct: Vec<(SiteId, SiteId)>,
    /// Set when supervision abandoned this session on this shard.
    lost: Option<ShardLost>,
}

/// Replays granted to each event application after its first panicking
/// attempt. Three total attempts sits comfortably above `limit=1` chaos
/// plans (which stop firing after attempt 0, so the first replay
/// succeeds) while bounding the work a deterministically-panicking
/// organic bug can consume before its session is abandoned.
const SHARD_EVENT_RETRIES: u32 = 2;

/// One session's state on one shard: live (a detector plus the retained
/// event log that makes rebuild-by-replay possible), or abandoned after
/// supervision exhausted the per-event attempt budget.
enum SessionSlot {
    Live {
        det: ServeDetector,
        log: Vec<Action>,
    },
    Lost(ShardLost),
}

/// Rebuilds every live slot deterministically by replaying its retained
/// log through a fresh detector — shard state is a pure function of the
/// event stream, so this restores exactly the pre-panic state. A slot
/// whose *replay* panics is unrecoverable (the poison is in its own
/// history) and becomes [`SessionSlot::Lost`]; every other session is
/// unaffected.
fn rebuild_sessions(kind: ServeDetectorKind, seed: u64, sessions: &mut [Option<SessionSlot>]) {
    for slot in sessions.iter_mut() {
        let Some(SessionSlot::Live { det, log }) = slot.as_mut() else {
            continue;
        };
        let replayed = catch_unwind(AssertUnwindSafe(|| {
            let mut fresh = ServeDetector::build(kind, seed);
            for action in log.iter() {
                fresh.on_action(action);
            }
            fresh
        }));
        match replayed {
            Ok(fresh) => *det = fresh,
            Err(payload) => {
                *slot = Some(SessionSlot::Lost(ShardLost {
                    reason: panic_message(payload.as_ref()),
                    attempts: 1,
                }));
            }
        }
    }
}

fn shard_worker(
    kind: ServeDetectorKind,
    seed: u64,
    plan: Option<&FaultPlan>,
    shard: usize,
    inbox: Receiver<ShardMsg>,
) -> ServeCounters {
    let mut sessions: Vec<Option<SessionSlot>> = Vec::new();
    let mut counters = ServeCounters::default();
    let mut supervisor = Supervisor::new(SHARD_EVENT_RETRIES);
    // The fault index: events *arrived* at this shard, counted once per
    // event regardless of how many supervised attempts it takes (or
    // whether it is ultimately lost) — so a `limit=1` plan stops firing
    // on the first retry and the rebuilt state absorbs the event
    // exactly once.
    let mut arrivals: u64 = 0;
    for msg in inbox {
        match msg {
            ShardMsg::Event { session, action } => {
                let arrival = arrivals;
                arrivals += 1;
                let idx = session as usize;
                if sessions.len() <= idx {
                    sessions.resize_with(idx + 1, || None);
                }
                if sessions[idx].is_none() {
                    counters.sessions += 1;
                    sessions[idx] = Some(SessionSlot::Live {
                        det: ServeDetector::build(kind, seed),
                        log: Vec::new(),
                    });
                }
                if matches!(sessions[idx], Some(SessionSlot::Lost(_))) {
                    // Already abandoned: drain the session's remaining
                    // events without applying or counting them.
                    continue;
                }
                let is_access = action.is_access();
                let applied = supervisor.supervise(
                    &mut sessions,
                    |sessions, attempt| {
                        if plan.is_some_and(|p| p.shard_panic_fires(arrival, attempt)) {
                            panic!("{INJECTED_PREFIX}shard panic (shard {shard}, event {arrival})");
                        }
                        if let Some(SessionSlot::Live { det, .. }) = &mut sessions[idx] {
                            det.on_action(&action);
                        }
                    },
                    |sessions| rebuild_sessions(kind, seed, sessions),
                );
                counters.shard_restarts = supervisor.restarts();
                match applied {
                    Ok(()) => {
                        if let Some(SessionSlot::Live { log, .. }) = &mut sessions[idx] {
                            log.push(action);
                            counters.events += 1;
                            if is_access {
                                counters.accesses += 1;
                            }
                        }
                    }
                    Err(lost) => {
                        sessions[idx] = Some(SessionSlot::Lost(lost));
                    }
                }
            }
            ShardMsg::Close { session, reply } => {
                let report = match sessions.get_mut(session as usize).and_then(Option::take) {
                    Some(SessionSlot::Live { det, .. }) => {
                        let dynamic = det.dynamic_races();
                        counters.races += dynamic;
                        ShardReport {
                            dynamic,
                            distinct: det.distinct_races(),
                            lost: None,
                        }
                    }
                    Some(SessionSlot::Lost(lost)) => {
                        counters.sessions_lost += 1;
                        ShardReport {
                            lost: Some(lost),
                            ..ShardReport::default()
                        }
                    }
                    None => ShardReport::default(),
                };
                // A handler that gave up waiting cannot happen (replies
                // are collected unconditionally), but a send to a dropped
                // reply channel must not take the shard down.
                let _ = reply.send((shard, report));
            }
            ShardMsg::Poll { reply } => {
                let live = sessions
                    .iter()
                    .flatten()
                    .map(|slot| match slot {
                        SessionSlot::Live { det, .. } => det.footprint_words(),
                        SessionSlot::Lost(_) => 0,
                    })
                    .sum();
                let _ = reply.send(live);
            }
        }
    }
    counters
}

/// Shared engine state behind the handle's mutex.
struct EngineState {
    /// Completed (or restored) reports, in completion order.
    completed: Vec<SessionReport>,
    /// Names seen so far, for duplicate rejection.
    names: Vec<String>,
    /// Reports restored from the journal, served without re-ingest.
    restored: Vec<SessionReport>,
    /// Open checkpoint journal, if any.
    journal: Option<JournalWriter>,
    /// First journal-append failure, surfaced at the end of the run.
    journal_error: Option<String>,
    /// Admission governor, when a memory budget is armed.
    governor: Option<Governor>,
    /// Sessions admitted so far (the governor's boundary counter).
    admitted: u64,
    /// Lifecycle accounting; every terminal report is filed exactly once.
    sessions: SessionCounters,
}

/// Files one terminal outcome into its conservation bucket.
fn bucket(sessions: &mut SessionCounters, outcome: SessionOutcome) {
    match outcome {
        SessionOutcome::Clean => sessions.completed += 1,
        SessionOutcome::Shed => sessions.shed += 1,
        SessionOutcome::Failed | SessionOutcome::ShardLost => sessions.failed += 1,
        SessionOutcome::Reaped => sessions.reaped += 1,
    }
}

/// Registry of durable (reconnectable) sessions between connections,
/// plus the transport counters the accept loop, handlers, and engine
/// contribute to. One mutex: attach/detach, frame appends, and closes
/// all serialize here, which is what makes the applied-offset watermark
/// race-free under connection takeover.
#[derive(Default)]
struct DurableState {
    slots: Vec<DurableSlot>,
    transport: TransportCounters,
}

/// One durable session accumulating verified frames until `END`.
///
/// Durable sessions do not stream into shards as frames arrive: each
/// accepted frame is checksum-verified, deduped by offset, appended to
/// memory (and the WAL segment, when armed), and acked. At `END` the
/// whole byte stream — `.ptrace` header plus frames — runs through the
/// same ingest path as every other transport, so the report is
/// byte-identical to an uninterrupted `pacer replay` by construction.
struct DurableSlot {
    name: String,
    /// Shard-routing session id, assigned at admission.
    session: u32,
    /// Governor shed rate fixed at admission (like any other session).
    shed: Option<u32>,
    /// Bumped on every attach; a connection holding a stale epoch lost
    /// the slot to a newer `RESUME` and must drop out silently.
    epoch: u64,
    /// Whether a connection currently owns the slot.
    attached: bool,
    /// Idle-lease ticks accumulated while detached.
    idle_ticks: u32,
    /// Accepted frame bytes in offset order (header + payload verbatim).
    frames: Vec<Vec<u8>>,
    /// Open write-ahead segment, when a WAL directory is armed.
    wal: Option<std::fs::File>,
}

/// What a `SESSION`/`RESUME` handshake resolved to.
#[derive(Debug)]
pub enum DurableOpen {
    /// Fresh session admitted; the client streams from frame offset 0.
    Started {
        /// Ownership token for subsequent frame/close/detach calls.
        epoch: u64,
    },
    /// Attached to a live (or WAL-rebuilt) slot; the server has durably
    /// applied `applied` frames, so the client streams from that offset.
    Resumed {
        /// Ownership token for subsequent frame/close/detach calls.
        epoch: u64,
        /// Frames durably applied — the authoritative resume offset.
        applied: u64,
    },
    /// The session already completed; re-serve its stored report (covers
    /// a connection lost between `END` and the report delivery).
    Completed(SessionReport),
    /// Handshake rejected with a client-facing message.
    Rejected(String),
}

/// A durably-applied (or deduped) frame's acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameAck {
    /// Applied and journaled; `applied` frames are now durable.
    Applied {
        /// The new applied-offset watermark (also the next expected offset).
        applied: u64,
    },
    /// Duplicate or overlapping retransmit below the watermark — skipped,
    /// acked again. This is the exactly-once guarantee paying off.
    Duplicate {
        /// The unchanged applied-offset watermark.
        applied: u64,
    },
}

impl FrameAck {
    /// The applied-offset watermark to ack back to the client.
    pub fn applied(self) -> u64 {
        match self {
            FrameAck::Applied { applied } | FrameAck::Duplicate { applied } => applied,
        }
    }
}

/// Why a durable frame/close call did not produce an ack.
#[derive(Debug)]
pub enum DurableFrameError {
    /// The session terminally failed (gap, corrupt frame, WAL error) and
    /// has been filed; send the report body, then close the connection.
    Failed(SessionReport),
    /// This connection no longer owns the slot — it was resumed by a
    /// newer connection or reaped. Close without filing anything.
    Detached,
}

/// The live service a transport drives: [`serve`](ServiceHandle::serve)
/// is safe to call from many threads at once (one call per session).
pub struct ServiceHandle<'cfg> {
    cfg: &'cfg ServeConfig,
    inboxes: Inboxes<ShardMsg>,
    next_session: AtomicU32,
    state: Mutex<EngineState>,
    /// Durable-session registry; lock order is `durable` before `state`.
    durable: Mutex<DurableState>,
}

/// The durable WAL segment path for a session name.
fn wal_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// Session names double as WAL file stems, so durable names are
/// restricted to a filesystem-safe alphabet.
fn valid_durable_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// The 8-byte `.ptrace` header durable slots prepend at assembly (the
/// wire carries frames only — the header is a constant).
fn ptrace_header() -> [u8; binary::HEADER_LEN] {
    let mut header = [0u8; binary::HEADER_LEN];
    header[..4].copy_from_slice(&binary::MAGIC);
    header[4] = binary::FORMAT_VERSION;
    header
}

/// Appends one frame to a WAL segment and makes it durable.
fn append_wal(wal: &mut std::fs::File, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    wal.write_all(bytes)?;
    wal.sync_data()
}

impl ServiceHandle<'_> {
    /// Serves one complete session from `source`, blocking until its
    /// report is merged; the returned body is what the transport should
    /// send back to the client.
    pub fn serve(&self, name: &str, source: impl Read) -> SessionReport {
        let admission = self.admit(name);
        let report = match admission {
            Admission::Restored(report) => return report,
            Admission::Duplicate => SessionReport {
                name: name.to_string(),
                body: "error: duplicate session name\n".to_string(),
                events: 0,
                dynamic_races: 0,
                distinct_races: 0,
                shed_millionths: None,
                truncated: false,
                error: true,
                outcome: SessionOutcome::Failed,
            },
            Admission::Admit { session, shed } => self.ingest(name, session, shed, source),
        };
        self.complete(report)
    }

    /// Admission decision for a named session: restored from the
    /// journal, rejected as a duplicate, or admitted at the governor's
    /// current rate.
    fn admit(&self, name: &str) -> Admission {
        let mut state = lock(&self.state);
        if let Some(r) = state.restored.iter().position(|r| r.name == name) {
            let report = state.restored.swap_remove(r);
            state.names.push(report.name.clone());
            state.sessions.admitted += 1;
            state.sessions.restored += 1;
            bucket(&mut state.sessions, report.outcome);
            state.completed.push(report.clone());
            return Admission::Restored(report);
        }
        if state.names.iter().any(|n| n == name) {
            return Admission::Duplicate;
        }
        state.names.push(name.to_string());
        let shed = self.governor_rate(&mut state);
        drop(state);
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        Admission::Admit { session, shed }
    }

    /// Polls the shards' live footprint and steps the governor at this
    /// admission boundary; returns the (sub-full) admission rate.
    fn governor_rate(&self, state: &mut EngineState) -> Option<u32> {
        state.admitted += 1;
        let boundary = state.admitted;
        let governor = state.governor.as_mut()?;
        let budget = governor.config().mem_budget_bytes?;
        let (tx, rx) = sync_channel(self.cfg.shards);
        let delivered = self.inboxes.broadcast_live(ShardMsg::Poll { reply: tx });
        let live_words: u64 = rx.iter().take(delivered).sum();
        let _ = governor.on_boundary(boundary, Some((live_words * WORD_BYTES, budget)), None);
        let rate = governor.rate_millionths();
        (rate < millionths_from_rate(1.0)).then_some(rate)
    }

    /// Decodes, validates, routes, and flushes one admitted session,
    /// enforcing the lifecycle budgets (deadline, idle reaper,
    /// `conn-drop`) along the way.
    fn ingest(
        &self,
        name: &str,
        session: u32,
        shed: Option<u32>,
        source: impl Read,
    ) -> SessionReport {
        let error_report = |message: String, events: u64, outcome: SessionOutcome| SessionReport {
            name: name.to_string(),
            body: format!("error: {message}\n"),
            events,
            dynamic_races: 0,
            distinct_races: 0,
            shed_millionths: shed,
            truncated: false,
            error: true,
            outcome,
        };
        let idle_note = |ticks: u32| format!("idle timeout: reaped after {ticks} idle tick(s)");

        // Lifecycle wrapper: the `conn-drop` chaos site caps the bytes
        // delivered (simulating a client vanishing mid-stream) and the
        // idle reaper counts timeout-ish reads as poll ticks.
        let drop_after = self
            .cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.conn_drop_after(u64::from(session)));
        let reaped = Rc::new(Cell::new(false));
        let source = LifecycleGuard {
            inner: source,
            remaining: drop_after,
            idle_limit: self.cfg.idle_timeout_ticks,
            idle_ticks: 0,
            reaped: Rc::clone(&reaped),
        };
        let idle_limit = self.cfg.idle_timeout_ticks.unwrap_or(0);

        let mut reader = match AnyTraceReader::new(source) {
            Ok(reader) => reader,
            Err(e) => {
                // Nothing was routed yet, so there is no state to flush.
                if reaped.get() {
                    return error_report(idle_note(idle_limit), 0, SessionOutcome::Reaped);
                }
                return error_report(e.to_string(), 0, SessionOutcome::Failed);
            }
        };

        // Decode errors end the event stream; the captured error wins
        // over whatever partial analysis preceded it (same precedence as
        // `pacer replay`). The deadline check sits *after* the pull, so
        // a session with exactly `deadline_events` events still passes.
        let deadline = self.cfg.deadline_events;
        let mut stream_err: Option<TraceStreamError> = None;
        let mut deadline_hit = false;
        let mut decoded: u64 = 0;
        let (routed, stats, threads, validation_err) = {
            let events = std::iter::from_fn(|| match reader.next() {
                Some(Ok(action)) => {
                    if deadline.is_some_and(|max| decoded >= max) {
                        deadline_hit = true;
                        return None;
                    }
                    decoded += 1;
                    Some(action)
                }
                Some(Err(e)) => {
                    stream_err = Some(e);
                    None
                }
                None => None,
            });
            if let Some(millionths) = shed {
                let overlay = ResampleSampling::new(
                    events,
                    rate_from_millionths(millionths),
                    self.cfg.resample_period,
                    self.cfg.seed,
                );
                let mut validated = ValidatedActions::new(overlay);
                let routed = self.route(session, &mut validated);
                let err = validated.error().map(ToString::to_string);
                (routed, *validated.stats(), validated.threads(), err)
            } else {
                let mut validated = ValidatedActions::new(events);
                let routed = self.route(session, &mut validated);
                let err = validated.error().map(ToString::to_string);
                (routed, *validated.stats(), validated.threads(), err)
            }
        };
        let truncation_note = reader.truncation_note();
        let truncated = reader.truncated();

        // Always flush: events routed before a failure must be freed.
        let (dynamic, distinct, lost) = self.flush(session);

        if reaped.get() {
            return error_report(idle_note(idle_limit), stats.total(), SessionOutcome::Reaped);
        }
        if let Some(e) = validation_err {
            return error_report(
                format!("invalid trace: {e}"),
                stats.total(),
                SessionOutcome::Failed,
            );
        }
        if let Some(e) = stream_err {
            return error_report(e.to_string(), stats.total(), SessionOutcome::Failed);
        }
        if deadline_hit {
            return error_report(
                format!(
                    "session deadline exceeded: more than {} event(s)",
                    deadline.unwrap_or(0)
                ),
                stats.total(),
                SessionOutcome::Failed,
            );
        }
        if let Err(down) = routed {
            return error_report(down.to_string(), stats.total(), SessionOutcome::Failed);
        }
        if let Some(lost) = lost {
            return error_report(lost.to_string(), stats.total(), SessionOutcome::ShardLost);
        }

        // The body reproduces `pacer replay` byte for byte (`--resample`
        // included, for shed sessions).
        let mut body = String::new();
        body.push_str(&format!(
            "replaying {} actions ({} accesses, {} sync ops, {} threads)\n",
            stats.total(),
            stats.accesses(),
            stats.sync_ops(),
            threads
        ));
        if let Some(note) = truncation_note {
            body.push_str(&note);
            body.push('\n');
        }
        if let Some(millionths) = shed {
            body.push_str(&format!(
                "resampled sampling periods at r = {:.2}%, mean period {}, seed {}\n",
                rate_from_millionths(millionths) * 100.0,
                self.cfg.resample_period,
                self.cfg.seed
            ));
        }
        body.push_str(&format!(
            "\n{} dynamic race report(s), {} distinct:\n",
            dynamic,
            distinct.len()
        ));
        for (a, b) in &distinct {
            body.push_str(&format!("  {a}  <->  {b}\n"));
        }

        SessionReport {
            name: name.to_string(),
            body,
            events: stats.total(),
            dynamic_races: dynamic,
            distinct_races: distinct.len() as u64,
            shed_millionths: shed,
            truncated,
            error: false,
            outcome: if shed.is_some() {
                SessionOutcome::Shed
            } else {
                SessionOutcome::Clean
            },
        }
    }

    /// Routes one session's events: accesses to their variable's shard,
    /// everything else broadcast (LITERACE: the whole session to one
    /// shard). See the module docs for why this is exact. All sends are
    /// checked — a shard that died anyway fails only the sessions whose
    /// events it owned, never the handler or the accept loop. The
    /// `inbox-stall` chaos site spins (a pure timing perturbation)
    /// before targeted events.
    fn route(
        &self,
        session: u32,
        events: &mut impl Iterator<Item = Action>,
    ) -> Result<(), ShardDown> {
        let shards = self.cfg.shards;
        let plan = self.cfg.fault_plan.as_ref();
        let mut index: u64 = 0;
        let stall = |index: u64| {
            if let Some(spins) = plan.and_then(|p| p.inbox_stall_spins(index)) {
                for _ in 0..spins {
                    std::thread::yield_now();
                }
            }
        };
        if self.cfg.detector.var_shardable() {
            for action in events {
                stall(index);
                index += 1;
                match action.access() {
                    Some((x, _, _)) => self.inboxes.checked_send(
                        x.raw() as usize % shards,
                        ShardMsg::Event { session, action },
                    )?,
                    None => {
                        // Broadcasts skip dead shards: the survivors'
                        // replicas stay exact, and any session whose
                        // accesses live on the dead shard fails at its
                        // own checked send above.
                        self.inboxes
                            .broadcast_live(ShardMsg::Event { session, action });
                    }
                }
            }
        } else {
            let home = session as usize % shards;
            for action in events {
                stall(index);
                index += 1;
                self.inboxes
                    .checked_send(home, ShardMsg::Event { session, action })?;
            }
        }
        Ok(())
    }

    /// Flush barrier: collects every live shard's share of the session
    /// and merges deterministically (sum of dynamic counts, sorted union
    /// of distinct pairs — the shard replies are order-insensitive).
    /// When supervision abandoned the session somewhere, the
    /// lowest-indexed shard's [`ShardLost`] note is returned so the
    /// report is deterministic even if several shards lost it.
    fn flush(&self, session: u32) -> (u64, Vec<(SiteId, SiteId)>, Option<ShardLost>) {
        let (tx, rx) = sync_channel(self.cfg.shards);
        let delivered = self
            .inboxes
            .broadcast_live(ShardMsg::Close { session, reply: tx });
        let mut dynamic = 0;
        let mut distinct = Vec::new();
        let mut lost: Option<(usize, ShardLost)> = None;
        for (shard, share) in rx.iter().take(delivered) {
            dynamic += share.dynamic;
            distinct.extend(share.distinct);
            if let Some(l) = share.lost {
                if lost.as_ref().is_none_or(|(s, _)| shard < *s) {
                    lost = Some((shard, l));
                }
            }
        }
        distinct.sort();
        distinct.dedup();
        (dynamic, distinct, lost.map(|(_, l)| l))
    }

    /// Records a finished session: checkpoint it, file its outcome
    /// bucket, then merge it.
    fn complete(&self, report: SessionReport) -> SessionReport {
        let mut state = lock(&self.state);
        if let Some(writer) = state.journal.as_mut() {
            if let Err(e) = writer.write_line(&encode_entry(&report)) {
                if state.journal_error.is_none() {
                    state.journal_error = Some(e.to_string());
                }
            }
        }
        state.sessions.admitted += 1;
        bucket(&mut state.sessions, report.outcome);
        state.completed.push(report.clone());
        report
    }

    /// Applies `update` to the transport counters (the accept loop and
    /// connection handlers contribute `connections`/`acks_sent` here;
    /// the engine bumps the resume/journal/dedup counters itself).
    pub fn note_transport(&self, update: impl FnOnce(&mut TransportCounters)) {
        update(&mut lock(&self.durable).transport);
    }

    /// Resolves a durable `SESSION` (`resume == false`) or `RESUME`
    /// (`resume == true`) handshake.
    ///
    /// Fresh sessions are admitted through the same governor/duplicate
    /// gate as every other transport and get a write-ahead segment when a
    /// WAL directory is armed. A `RESUME` reattaches to a live slot
    /// (taking it over from a dead connection — the epoch token fences
    /// the loser), rebuilds the slot from its WAL segment after a server
    /// restart, or re-serves the stored report of a completed session.
    pub fn durable_open(&self, name: &str, resume: bool) -> DurableOpen {
        if !valid_durable_name(name) {
            return DurableOpen::Rejected(
                "invalid session name (want [A-Za-z0-9._-]+)".to_string(),
            );
        }
        let mut durable = lock(&self.durable);
        if resume {
            if let Some(slot) = durable.slots.iter_mut().find(|s| s.name == name) {
                slot.epoch += 1;
                slot.attached = true;
                slot.idle_ticks = 0;
                let (epoch, applied) = (slot.epoch, slot.frames.len() as u64);
                durable.transport.session_resumes += 1;
                return DurableOpen::Resumed { epoch, applied };
            }
            if let Some(report) = {
                let state = lock(&self.state);
                state.completed.iter().find(|r| r.name == name).cloned()
            } {
                durable.transport.session_resumes += 1;
                return DurableOpen::Completed(report);
            }
            if let Some(dir) = self.cfg.wal.clone() {
                let path = wal_path(&dir, name);
                if path.exists() {
                    return match self.durable_open_from_wal(&mut durable, name, &path) {
                        Ok(open) => open,
                        Err(message) => {
                            durable.transport.resumes_rejected += 1;
                            DurableOpen::Rejected(message)
                        }
                    };
                }
            }
            durable.transport.resumes_rejected += 1;
            return DurableOpen::Rejected(format!("unknown session `{name}`"));
        }
        match self.admit(name) {
            Admission::Restored(report) => DurableOpen::Completed(report),
            Admission::Duplicate => {
                // Ledgered as a failed session, exactly like the
                // non-durable transports reject duplicates.
                let report =
                    durable_error_report(name, "duplicate session name", SessionOutcome::Failed);
                self.complete(report);
                DurableOpen::Rejected("duplicate session name".to_string())
            }
            Admission::Admit { session, shed } => {
                let wal = match self.create_wal(name) {
                    Ok(wal) => wal,
                    Err(message) => {
                        // The name is reserved; file the failure so the
                        // ledger stays complete.
                        let report = durable_error_report(name, &message, SessionOutcome::Failed);
                        self.complete(report);
                        return DurableOpen::Rejected(message);
                    }
                };
                durable.slots.push(DurableSlot {
                    name: name.to_string(),
                    session,
                    shed,
                    epoch: 0,
                    attached: true,
                    idle_ticks: 0,
                    frames: Vec::new(),
                    wal,
                });
                DurableOpen::Started { epoch: 0 }
            }
        }
    }

    /// Cold resume: rebuilds a durable slot from its write-ahead segment
    /// (a fresh admission in this run — the previous run filed the slot
    /// as reaped at shutdown). A crash-torn tail is truncated at the
    /// last complete frame, exactly like every other journal here.
    fn durable_open_from_wal(
        &self,
        durable: &mut DurableState,
        name: &str,
        path: &std::path::Path,
    ) -> Result<DurableOpen, String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("wal segment for `{name}` is unreadable: {e}"))?;
        let split = binary::split_frames(&bytes)
            .map_err(|e| format!("wal segment for `{name}` is corrupt: {e}"))?;
        match self.admit(name) {
            Admission::Restored(report) => {
                // The checkpoint journal already has the finished report;
                // the WAL segment is obsolete.
                let _ = std::fs::remove_file(path);
                durable.transport.session_resumes += 1;
                Ok(DurableOpen::Completed(report))
            }
            Admission::Duplicate => Err("duplicate session name".to_string()),
            Admission::Admit { session, shed } => {
                let clean_len = split.frames.last().map_or(binary::HEADER_LEN, |f| f.end);
                let mut wal = std::fs::OpenOptions::new()
                    .read(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("wal segment for `{name}` is unreadable: {e}"))?;
                if bytes.len() < binary::HEADER_LEN {
                    // Torn inside the header at creation: start over.
                    wal.set_len(0)
                        .and_then(|()| append_wal(&mut wal, &ptrace_header()))
                        .map_err(|e| format!("wal segment for `{name}`: {e}"))?;
                } else if clean_len < bytes.len() {
                    wal.set_len(clean_len as u64)
                        .map_err(|e| format!("wal segment for `{name}`: {e}"))?;
                }
                let frames: Vec<Vec<u8>> = split
                    .frames
                    .iter()
                    .map(|f| bytes[f.start..f.end].to_vec())
                    .collect();
                let applied = frames.len() as u64;
                durable.slots.push(DurableSlot {
                    name: name.to_string(),
                    session,
                    shed,
                    epoch: 0,
                    attached: true,
                    idle_ticks: 0,
                    frames,
                    wal: Some(wal),
                });
                durable.transport.session_resumes += 1;
                Ok(DurableOpen::Resumed { epoch: 0, applied })
            }
        }
    }

    /// Creates a fresh WAL segment (header written and synced), or
    /// `Ok(None)` when no WAL directory is armed.
    fn create_wal(&self, name: &str) -> Result<Option<std::fs::File>, String> {
        let Some(dir) = &self.cfg.wal else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("wal directory {}: {e}", dir.display()))?;
        let path = wal_path(dir, name);
        let mut wal = std::fs::File::create(&path)
            .map_err(|e| format!("wal segment {}: {e}", path.display()))?;
        append_wal(&mut wal, &ptrace_header())
            .map_err(|e| format!("wal segment {}: {e}", path.display()))?;
        Ok(Some(wal))
    }

    /// Removes a session's WAL segment (session finished or reaped).
    fn remove_wal(&self, name: &str) {
        if let Some(dir) = &self.cfg.wal {
            let _ = std::fs::remove_file(wal_path(dir, name));
        }
    }

    /// Accepts one wire frame for an attached durable session: verified,
    /// deduped by offset against the applied watermark, journaled, then
    /// acked. A frame below the watermark is a retransmit overlap —
    /// skipped and re-acked, never applied twice. A frame above it is a
    /// gap (lost frame the client failed to retransmit): the session
    /// fails hard rather than analyze a stream with a hole in it.
    pub fn durable_frame(
        &self,
        name: &str,
        epoch: u64,
        offset: u64,
        bytes: &[u8],
    ) -> Result<FrameAck, DurableFrameError> {
        let mut durable = lock(&self.durable);
        let DurableState { slots, transport } = &mut *durable;
        let Some(idx) = slots
            .iter()
            .position(|s| s.name == name && s.epoch == epoch && s.attached)
        else {
            return Err(DurableFrameError::Detached);
        };
        let applied = slots[idx].frames.len() as u64;
        if offset < applied {
            transport.frames_deduped += 1;
            return Ok(FrameAck::Duplicate { applied });
        }
        if offset > applied {
            let report = self.durable_fail(
                &mut durable,
                idx,
                format!("frame gap: got offset {offset}, expected {applied}"),
            );
            return Err(DurableFrameError::Failed(report));
        }
        if let Err(e) = binary::decode_frame_payload(bytes, offset + 1) {
            let report = self.durable_fail(&mut durable, idx, e.to_string());
            return Err(DurableFrameError::Failed(report));
        }
        let slot = &mut slots[idx];
        if let Some(wal) = &mut slot.wal {
            if let Err(e) = append_wal(wal, bytes) {
                let report =
                    self.durable_fail(&mut durable, idx, format!("wal append failed: {e}"));
                return Err(DurableFrameError::Failed(report));
            }
            transport.frames_journaled += 1;
        }
        slot.frames.push(bytes.to_vec());
        Ok(FrameAck::Applied {
            applied: applied + 1,
        })
    }

    /// Ends an attached durable session: checks the client's frame total
    /// against the applied watermark, assembles `header + frames`, and
    /// runs the whole stream through the standard ingest/complete path —
    /// so the report is byte-identical to an uninterrupted replay of the
    /// same bytes, and the WAL segment is retired.
    ///
    /// Runs under the registry lock: a concurrent `RESUME` for this name
    /// blocks until the report is filed and then finds it completed.
    pub fn durable_close(
        &self,
        name: &str,
        epoch: u64,
        total: u64,
    ) -> Result<SessionReport, DurableFrameError> {
        let mut durable = lock(&self.durable);
        let Some(idx) = durable
            .slots
            .iter()
            .position(|s| s.name == name && s.epoch == epoch && s.attached)
        else {
            return Err(DurableFrameError::Detached);
        };
        let applied = durable.slots[idx].frames.len() as u64;
        if total != applied {
            let report = self.durable_fail(
                &mut durable,
                idx,
                format!("client ended at {total} frame(s) but {applied} were applied"),
            );
            return Err(DurableFrameError::Failed(report));
        }
        let slot = durable.slots.swap_remove(idx);
        let mut bytes = ptrace_header().to_vec();
        for frame in &slot.frames {
            bytes.extend_from_slice(frame);
        }
        let report = self.ingest(&slot.name, slot.session, slot.shed, &bytes[..]);
        let report = self.complete(report);
        self.remove_wal(&slot.name);
        Ok(report)
    }

    /// Terminally fails the slot at `idx`: removes it, retires its WAL
    /// segment, and files a `Failed` report.
    fn durable_fail(
        &self,
        durable: &mut DurableState,
        idx: usize,
        message: String,
    ) -> SessionReport {
        let slot = durable.slots.swap_remove(idx);
        self.remove_wal(&slot.name);
        let report = durable_error_report(&slot.name, &message, SessionOutcome::Failed);
        self.complete(report)
    }

    /// Releases an attached durable slot back to the idle lease — the
    /// connection died (or tore) before `END`; the session awaits a
    /// `RESUME`. A stale epoch is a no-op: a newer connection owns the
    /// slot.
    pub fn durable_detach(&self, name: &str, epoch: u64) {
        let mut durable = lock(&self.durable);
        if let Some(slot) = durable
            .slots
            .iter_mut()
            .find(|s| s.name == name && s.epoch == epoch && s.attached)
        {
            slot.attached = false;
            slot.idle_ticks = 0;
        }
    }

    /// Advances the idle lease on every detached durable slot by one
    /// tick; slots at the `--idle-timeout` limit are reaped — filed in
    /// the `reaped` ledger bucket, WAL segment retired. Returns the
    /// reaped reports. A no-op when no idle timeout is armed.
    pub fn durable_tick(&self) -> Vec<SessionReport> {
        let Some(limit) = self.cfg.idle_timeout_ticks else {
            return Vec::new();
        };
        let mut durable = lock(&self.durable);
        let mut reaped = Vec::new();
        let mut idx = 0;
        while idx < durable.slots.len() {
            let slot = &mut durable.slots[idx];
            if slot.attached {
                idx += 1;
                continue;
            }
            slot.idle_ticks += 1;
            if slot.idle_ticks < limit {
                idx += 1;
                continue;
            }
            let slot = durable.slots.swap_remove(idx);
            self.remove_wal(&slot.name);
            let report = durable_error_report(
                &slot.name,
                &format!("idle timeout: reaped after {limit} idle tick(s)"),
                SessionOutcome::Reaped,
            );
            reaped.push(self.complete(report));
        }
        reaped
    }

    /// Reaps every remaining durable slot at shutdown so the ledger is
    /// complete — but *preserves* their WAL segments: a restarted server
    /// pointed at the same `--wal` directory rebuilds them on `RESUME`.
    pub fn durable_reap_remaining(&self) -> Vec<SessionReport> {
        let slots = std::mem::take(&mut lock(&self.durable).slots);
        slots
            .into_iter()
            .map(|slot| {
                let report = durable_error_report(
                    &slot.name,
                    "durable session never completed; reaped at shutdown (wal segment retained)",
                    SessionOutcome::Reaped,
                );
                self.complete(report)
            })
            .collect()
    }
}

/// A zero-event error report for durable-session failures that happen
/// before (or instead of) ingest.
fn durable_error_report(name: &str, message: &str, outcome: SessionOutcome) -> SessionReport {
    SessionReport {
        name: name.to_string(),
        body: format!("error: {message}\n"),
        events: 0,
        dynamic_races: 0,
        distinct_races: 0,
        shed_millionths: None,
        truncated: false,
        error: true,
        outcome,
    }
}

/// `Read` adapter enforcing per-session lifecycle budgets: an optional
/// byte cap (the `conn-drop` chaos site — the stream just ends, exactly
/// like a vanished client) and the idle-timeout reaper. Timeout-ish
/// errors (`WouldBlock`/`TimedOut`, i.e. one poll tick of a socket with
/// a read timeout armed) are counted, not propagated; any delivered
/// byte resets the count, and at the limit the stream ends with the
/// `reaped` flag raised so ingest files the session as
/// [`SessionOutcome::Reaped`].
struct LifecycleGuard<R> {
    inner: R,
    /// Bytes still allowed through (`conn-drop`); `None` = unlimited.
    remaining: Option<u64>,
    idle_limit: Option<u32>,
    idle_ticks: u32,
    reaped: Rc<Cell<bool>>,
}

impl<R: Read> Read for LifecycleGuard<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.reaped.get() || self.remaining == Some(0) {
            return Ok(0);
        }
        let cap = match self.remaining {
            Some(n) => usize::try_from(n.min(buf.len() as u64)).unwrap_or(buf.len()),
            None => buf.len(),
        };
        loop {
            match self.inner.read(&mut buf[..cap]) {
                Ok(n) => {
                    if let Some(remaining) = &mut self.remaining {
                        *remaining -= n as u64;
                    }
                    self.idle_ticks = 0;
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    self.idle_ticks += 1;
                    match self.idle_limit {
                        Some(limit) if self.idle_ticks >= limit => {
                            self.reaped.set(true);
                            return Ok(0);
                        }
                        // No limit armed: a timeout-ish error is
                        // spurious (read timeouts are only set when the
                        // reaper is on) — retry.
                        _ => continue,
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

enum Admission {
    Restored(SessionReport),
    Duplicate,
    Admit { session: u32, shed: Option<u32> },
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Handlers run under catch-free scoped threads; a poisoned lock only
    // means another handler panicked mid-merge, and the state it guards
    // (append-only vectors) is always structurally consistent.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the service: spawns the shard fleet, hands the transport a
/// [`ServiceHandle`], and merges everything when the transport returns.
///
/// `drive` is the transport loop — the unix-socket accept loop, the
/// framed-stdin reader, or an in-process test driver. It may serve
/// sessions from as many threads as it likes (e.g. via
/// `std::thread::scope`); every session must be complete before it
/// returns.
///
/// # Errors
///
/// Configuration and journal failures, or whatever `drive` returns.
pub fn run_service<T>(
    cfg: &ServeConfig,
    drive: impl FnOnce(&ServiceHandle<'_>) -> Result<T, ServeError>,
) -> Result<(ServeOutput, T), ServeError> {
    if cfg.shards == 0 {
        return Err(ServeError::Config("--shards must be at least 1".into()));
    }
    if cfg.resume && cfg.checkpoint.is_none() {
        return Err(ServeError::Config("--resume requires --checkpoint".into()));
    }
    // Supervised shard panics — injected or organic — are caught,
    // recorded in counters, and replay-rebuilt; keep them from spraying
    // backtraces on stderr for the run's lifetime (same policy as the
    // fleet's quarantine path).
    let _quiet = crate::resilient::SilencePanics::new();

    let mut restored = Vec::new();
    let mut journal = None;
    if let Some(path) = &cfg.checkpoint {
        if cfg.resume && path.exists() {
            // `recover_lines` truncates a crash-torn partial tail in the
            // same call, so the append below lands on a clean frame edge.
            let contents =
                journal::recover_lines(path).map_err(|e| ServeError::Journal(e.to_string()))?;
            for line in &contents.lines {
                restored.push(decode_entry(line).map_err(ServeError::Journal)?);
            }
            journal = Some(JournalWriter::append(path)?);
        } else {
            journal = Some(JournalWriter::create(path)?);
        }
    }

    let governor = cfg.mem_budget.map(|budget| {
        Governor::new(GovernorConfig {
            mem_budget_bytes: Some(budget),
            deadline_events: None,
            ladder: default_ladder(millionths_from_rate(1.0)),
            cooldown: DEFAULT_COOLDOWN,
        })
    });

    let kind = cfg.detector;
    let seed = cfg.seed;
    let plan = cfg.fault_plan.as_ref();
    let (shard_counters, (driven, state, transport)) = shard::run_sharded(
        cfg.shards,
        cfg.capacity,
        |shard, inbox| shard_worker(kind, seed, plan, shard, inbox),
        |inboxes| {
            let handle = ServiceHandle {
                cfg,
                inboxes,
                next_session: AtomicU32::new(0),
                state: Mutex::new(EngineState {
                    completed: Vec::new(),
                    names: Vec::new(),
                    restored,
                    journal,
                    journal_error: None,
                    governor,
                    admitted: 0,
                    sessions: SessionCounters::default(),
                }),
                durable: Mutex::new(DurableState::default()),
            };
            let driven = drive(&handle);
            let durable = handle
                .durable
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let state = handle
                .state
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            (driven, state, durable.transport)
        },
    );
    let driven = driven?;
    if let Some(message) = state.journal_error {
        return Err(ServeError::Journal(message));
    }

    let mut reports = state.completed;
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    let transcript = render_transcript(&reports);
    let output = ServeOutput {
        reports,
        shard_counters,
        sessions: state.sessions,
        governor: state.governor.map(Governor::into_summary),
        transport,
        transcript,
    };
    Ok((output, driven))
}

/// In-process transport: serves `sessions` (name, bytes) with up to
/// `concurrency` parallel handlers pulling from a shared queue.
///
/// # Errors
///
/// As [`run_service`].
pub fn serve_sessions(
    cfg: &ServeConfig,
    sessions: Vec<(String, Vec<u8>)>,
    concurrency: usize,
) -> Result<ServeOutput, ServeError> {
    let (output, ()) = run_service(cfg, |handle| {
        if concurrency <= 1 {
            for (name, bytes) in &sessions {
                handle.serve(name, &bytes[..]);
            }
        } else {
            let queue = Mutex::new(sessions.iter());
            std::thread::scope(|scope| {
                for _ in 0..concurrency {
                    scope.spawn(|| loop {
                        let next = lock(&queue).next();
                        match next {
                            Some((name, bytes)) => {
                                handle.serve(name, &bytes[..]);
                            }
                            None => break,
                        }
                    });
                }
            });
        }
        Ok(())
    })?;
    Ok(output)
}

/// Renders the deterministic merged transcript: sessions by name, then
/// the fleet summary. Deliberately shard-blind — the transcript must be
/// byte-identical at any `--shards N` (shard-level detail goes to the
/// metrics snapshot instead).
fn render_transcript(reports: &[SessionReport]) -> String {
    let mut out = String::new();
    let (mut events, mut dynamic, mut distinct, mut errors, mut shed) = (0u64, 0u64, 0u64, 0, 0);
    for report in reports {
        out.push_str(&format!("=== session {} ===\n", report.name));
        out.push_str(&report.body);
        events += report.events;
        dynamic += report.dynamic_races;
        distinct += report.distinct_races;
        if report.error {
            errors += 1;
        }
        if report.shed_millionths.is_some() {
            shed += 1;
        }
    }
    out.push_str(&format!(
        "\nserved {} session(s) ({} events, {} dynamic races, {} distinct)\n",
        reports.len(),
        events,
        dynamic,
        distinct,
    ));
    if errors > 0 {
        out.push_str(&format!("{errors} session(s) rejected\n"));
    }
    if shed > 0 {
        out.push_str(&format!(
            "governor: {shed} session(s) admitted at reduced sampling rates\n"
        ));
    }
    out
}

/// Encodes one session checkpoint as single-line JSON for the journal.
fn encode_entry(report: &SessionReport) -> String {
    let mut out = String::from("{\"name\":");
    journal::escape_into(&mut out, &report.name);
    out.push_str(&format!(
        ",\"events\":{},\"dynamic\":{},\"distinct\":{}",
        report.events, report.dynamic_races, report.distinct_races
    ));
    match report.shed_millionths {
        Some(m) => out.push_str(&format!(",\"shed\":{m}")),
        None => out.push_str(",\"shed\":null"),
    }
    out.push_str(&format!(
        ",\"truncated\":{},\"error\":{},\"outcome\":\"{}\",\"body\":",
        report.truncated,
        report.error,
        report.outcome.name()
    ));
    journal::escape_into(&mut out, &report.body);
    out.push('}');
    out
}

/// Decodes one journaled session checkpoint.
fn decode_entry(json: &str) -> Result<SessionReport, String> {
    let value = JsonValue::parse(json).map_err(|e| e.to_string())?;
    let str_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let u64_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let bool_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing boolean field `{key}`"))
    };
    let shed = match value.get("shed") {
        None => return Err("missing field `shed`".into()),
        Some(v) => v.as_u64().map(|m| m as u32),
    };
    let error = bool_field("error")?;
    let outcome = match value.get("outcome") {
        // Journals written before outcomes existed: derive the bucket
        // from the fields that determined it then.
        None => {
            if error {
                SessionOutcome::Failed
            } else if shed.is_some() {
                SessionOutcome::Shed
            } else {
                SessionOutcome::Clean
            }
        }
        Some(v) => SessionOutcome::from_name(
            v.as_str()
                .ok_or_else(|| "field `outcome` must be a string".to_string())?,
        )?,
    };
    Ok(SessionReport {
        name: str_field("name")?,
        body: str_field("body")?,
        events: u64_field("events")?,
        dynamic_races: u64_field("dynamic")?,
        distinct_races: u64_field("distinct")?,
        shed_millionths: shed,
        truncated: bool_field("truncated")?,
        error,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::Trace;

    fn racy_trace() -> Trace {
        Trace::parse(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s0
            wr t1 x0 s1
            rd t0 x1 s2
            wr t1 x1 s3
            send
            join t0 t1
        ",
        )
        .unwrap()
    }

    fn cfg(kind: ServeDetectorKind, shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            ..ServeConfig::new(kind)
        }
    }

    #[test]
    fn report_is_shard_count_invariant() {
        let bytes = racy_trace().to_binary();
        let mut transcripts = Vec::new();
        for shards in [1, 2, 8] {
            let out = serve_sessions(
                &cfg(ServeDetectorKind::FastTrack, shards),
                vec![("a".into(), bytes.clone())],
                1,
            )
            .unwrap();
            assert_eq!(out.reports.len(), 1);
            assert!(!out.reports[0].error);
            transcripts.push(out.reports[0].body.clone());
        }
        assert_eq!(transcripts[0], transcripts[1]);
        assert_eq!(transcripts[1], transcripts[2]);
        assert!(transcripts[0].contains("dynamic race report(s)"));
    }

    #[test]
    fn journal_entry_round_trips() {
        let report = SessionReport {
            name: "s \"quoted\"".into(),
            body: "replaying 3 actions\n\n1 dynamic race report(s), 1 distinct:\n".into(),
            events: 3,
            dynamic_races: 1,
            distinct_races: 1,
            shed_millionths: Some(500_000),
            truncated: true,
            error: false,
            outcome: SessionOutcome::Shed,
        };
        assert_eq!(decode_entry(&encode_entry(&report)).unwrap(), report);

        let plain = SessionReport {
            shed_millionths: None,
            truncated: false,
            outcome: SessionOutcome::Clean,
            ..report.clone()
        };
        assert_eq!(decode_entry(&encode_entry(&plain)).unwrap(), plain);

        let lost = SessionReport {
            body: "error: shard lost after 3 attempt(s): boom\n".into(),
            error: true,
            outcome: SessionOutcome::ShardLost,
            ..plain.clone()
        };
        assert_eq!(decode_entry(&encode_entry(&lost)).unwrap(), lost);
    }

    #[test]
    fn legacy_entries_without_outcome_still_decode() {
        // A journal line written before outcomes existed derives its
        // bucket from `error`/`shed`.
        let legacy = "{\"name\":\"a\",\"events\":3,\"dynamic\":1,\"distinct\":1,\
                      \"shed\":null,\"truncated\":false,\"error\":false,\"body\":\"b\\n\"}";
        assert_eq!(decode_entry(legacy).unwrap().outcome, SessionOutcome::Clean);
        let legacy_shed = legacy.replace("\"shed\":null", "\"shed\":500000");
        assert_eq!(
            decode_entry(&legacy_shed).unwrap().outcome,
            SessionOutcome::Shed
        );
        let legacy_err = legacy.replace("\"error\":false", "\"error\":true");
        assert_eq!(
            decode_entry(&legacy_err).unwrap().outcome,
            SessionOutcome::Failed
        );
        let bad = legacy.replace(
            "\"error\":false",
            "\"error\":false,\"outcome\":\"sideways\"",
        );
        assert!(decode_entry(&bad).is_err());
    }

    /// A `Read` fed chunk by chunk over a rendezvous channel, so a test
    /// can hold a session open at a known decode position.
    struct ChanReader {
        rx: std::sync::mpsc::Receiver<Vec<u8>>,
        cur: Vec<u8>,
        pos: usize,
    }

    impl Read for ChanReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pos >= self.cur.len() {
                match self.rx.recv() {
                    Ok(chunk) => {
                        self.cur = chunk;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0),
                }
            }
            let n = (self.cur.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.cur[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn admission_sheds_sampling_rate_under_memory_pressure() {
        let bytes = racy_trace().to_binary();
        let mut config = cfg(ServeDetectorKind::FastTrack, 2);
        config.mem_budget = Some(1);

        let (output, ()) = run_service(&config, |handle| {
            std::thread::scope(|scope| {
                // Rendezvous channel: each send returns only once the
                // session thread has consumed the previous chunk, so the
                // decode position is deterministic at every step.
                let (tx, rx) = sync_channel::<Vec<u8>>(0);
                let long = scope.spawn(move || {
                    handle.serve(
                        "long",
                        ChanReader {
                            rx,
                            cur: Vec::new(),
                            pos: 0,
                        },
                    )
                });
                // The whole trace with the channel still open: every
                // event is routed, then the decoder blocks waiting for
                // the next frame header — the session stays live. The
                // empty rendezvous chunk returns only once the decoder
                // is past the real bytes.
                tx.send(bytes.clone()).unwrap();
                tx.send(Vec::new()).unwrap();

                // `long` now holds live detector state, breaching the
                // 1-byte budget: this admission must shed one rung.
                let short = handle.serve("short", &bytes[..]);
                assert_eq!(short.shed_millionths, Some(500_000));
                assert!(!short.error, "shed admission still analyzes: {short:?}");

                drop(tx);
                let long = long.join().unwrap();
                assert!(!long.truncated && !long.error, "{long:?}");
                assert_eq!(long.shed_millionths, None, "first admission was clear");
                Ok(())
            })
        })
        .unwrap();

        let governor = output.governor.expect("budget arms the governor");
        assert!(governor.breaches >= 1);
        let short = output.reports.iter().find(|r| r.name == "short").unwrap();
        assert!(
            short
                .body
                .contains("resampled sampling periods at r = 50.00%, mean period 50, seed 42"),
            "shed body carries the replay-identical resample line: {}",
            short.body
        );
    }

    #[test]
    fn duplicate_names_are_rejected_without_contamination() {
        let bytes = racy_trace().to_binary();
        let out = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), bytes.clone()), ("a".into(), bytes)],
            1,
        )
        .unwrap();
        assert_eq!(out.reports.len(), 2);
        assert!(!out.reports[0].error);
        assert!(out.reports[1].error);
        assert!(out.reports[1].body.contains("duplicate session name"));
        assert!(out.any_errors());
    }

    #[test]
    fn corrupt_session_does_not_poison_others() {
        let good = racy_trace().to_binary();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let out = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("bad".into(), bad), ("good".into(), good.clone())],
            2,
        )
        .unwrap();
        let by_name = |n: &str| out.reports.iter().find(|r| r.name == n).unwrap();
        assert!(by_name("bad").error);
        assert!(by_name("bad").body.starts_with("error: "));
        let alone = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("good".into(), good)],
            1,
        )
        .unwrap();
        assert_eq!(by_name("good").body, alone.reports[0].body);
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.admitted, 2);
        assert_eq!(out.sessions.completed, 1);
        assert_eq!(out.sessions.failed, 1);
    }

    #[test]
    fn deadline_rejects_only_over_budget_sessions() {
        let bytes = racy_trace().to_binary();
        let clean = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), bytes.clone())],
            1,
        )
        .unwrap();
        let events = clean.reports[0].events;
        assert!(events > 1);

        // Exactly at the budget: still clean (the check is one past).
        let mut at = cfg(ServeDetectorKind::FastTrack, 2);
        at.deadline_events = Some(events);
        let out = serve_sessions(&at, vec![("a".into(), bytes.clone())], 1).unwrap();
        assert_eq!(out.reports[0].body, clean.reports[0].body);
        assert_eq!(out.reports[0].outcome, SessionOutcome::Clean);

        // One under: rejected with a typed deadline error.
        let mut under = cfg(ServeDetectorKind::FastTrack, 2);
        under.deadline_events = Some(events - 1);
        let out = serve_sessions(&under, vec![("a".into(), bytes)], 1).unwrap();
        assert!(out.reports[0].error);
        assert_eq!(out.reports[0].outcome, SessionOutcome::Failed);
        assert!(
            out.reports[0].body.contains("session deadline exceeded"),
            "{}",
            out.reports[0].body
        );
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.failed, 1);
    }

    /// A `Read` that delivers its bytes, then reports `WouldBlock`
    /// forever — a client that sent a prefix and went silent.
    struct SilentAfter {
        bytes: Vec<u8>,
        pos: usize,
    }

    impl Read for SilentAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "poll tick",
                ));
            }
            let n = (self.bytes.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn idle_sessions_are_reaped_after_the_tick_budget() {
        let bytes = racy_trace().to_binary();
        let mut config = cfg(ServeDetectorKind::FastTrack, 2);
        config.idle_timeout_ticks = Some(3);
        let (output, ()) = run_service(&config, |handle| {
            // Without the reaper this session would spin forever on the
            // silent tail; three ticks end it deterministically.
            let report = handle.serve("idle", SilentAfter { bytes, pos: 0 });
            assert!(report.error);
            assert_eq!(report.outcome, SessionOutcome::Reaped);
            assert!(
                report.body.contains("reaped after 3 idle tick(s)"),
                "{}",
                report.body
            );
            Ok(())
        })
        .unwrap();
        assert!(output.sessions.conserved(), "{:?}", output.sessions);
        assert_eq!(output.sessions.reaped, 1);
        assert_eq!(output.sessions.admitted, 1);
    }

    #[test]
    fn injected_shard_panics_rebuild_without_changing_reports() {
        let bytes = racy_trace().to_binary();
        let sessions = vec![("a".into(), bytes.clone()), ("b".into(), bytes)];
        let clean =
            serve_sessions(&cfg(ServeDetectorKind::FastTrack, 2), sessions.clone(), 1).unwrap();

        // Panic on every event's first attempt; the default limit=1
        // stops it firing on the supervised retry.
        let mut chaos = cfg(ServeDetectorKind::FastTrack, 2);
        chaos.fault_plan = Some(pacer_faults::FaultPlan::parse("shard-panic every=1\n").unwrap());
        let out = serve_sessions(&chaos, sessions, 1).unwrap();

        assert_eq!(out.transcript, clean.transcript, "chaos must be invisible");
        let restarts: u64 = out.shard_counters.iter().map(|c| c.shard_restarts).sum();
        assert!(restarts > 0, "the plan must actually have fired");
        let lost: u64 = out.shard_counters.iter().map(|c| c.sessions_lost).sum();
        assert_eq!(lost, 0);
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.completed, 2);
    }

    #[test]
    fn exhausted_retries_lose_only_the_owning_session() {
        let bytes = racy_trace().to_binary();
        // Fires on shard event index 0 alone (`every` far above the
        // event count), on every attempt: the first session's first
        // event exhausts the budget and is abandoned; the second
        // session's events arrive at later indices and never fire.
        let mut config = cfg(ServeDetectorKind::FastTrack, 1);
        config.fault_plan = Some(
            pacer_faults::FaultPlan::parse("shard-panic every=1000000000 limit=100\n").unwrap(),
        );
        let out = serve_sessions(
            &config,
            vec![
                ("victim".into(), bytes.clone()),
                ("bystander".into(), bytes.clone()),
            ],
            1,
        )
        .unwrap();
        let by_name = |n: &str| out.reports.iter().find(|r| r.name == n).unwrap();
        let victim = by_name("victim");
        assert!(victim.error);
        assert_eq!(victim.outcome, SessionOutcome::ShardLost);
        assert!(
            victim.body.contains("shard lost after 3 attempt(s)")
                && victim.body.contains("injected: shard panic"),
            "{}",
            victim.body
        );

        let clean = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 1),
            vec![("bystander".into(), bytes)],
            1,
        )
        .unwrap();
        assert_eq!(by_name("bystander").body, clean.reports[0].body);

        assert_eq!(out.shard_counters[0].sessions_lost, 1);
        assert_eq!(out.shard_counters[0].shard_restarts, 3);
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.failed, 1);
        assert_eq!(out.sessions.completed, 1);
    }

    // ------------------------------------------------------------------
    // Durable (reconnectable) session engine
    // ------------------------------------------------------------------

    /// One wire frame per action, so durable flows exercise multi-frame
    /// streams even for small traces.
    fn per_action_frames(trace: &Trace) -> Vec<Vec<u8>> {
        trace
            .actions()
            .iter()
            .map(|action| {
                let bytes = binary::encode_trace(&Trace::from_actions(vec![action.clone()]));
                bytes[binary::HEADER_LEN..].to_vec()
            })
            .collect()
    }

    fn durable_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pacer-durable-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open_started(handle: &ServiceHandle, name: &str) -> u64 {
        match handle.durable_open(name, false) {
            DurableOpen::Started { epoch } => epoch,
            other => panic!("expected Started, got {other:?}"),
        }
    }

    #[test]
    fn durable_session_report_matches_direct_serve() {
        let trace = racy_trace();
        let frames = per_action_frames(&trace);
        for shards in [1, 4] {
            let config = cfg(ServeDetectorKind::FastTrack, shards);
            let (out, ()) = run_service(&config, |handle| {
                let epoch = open_started(handle, "a");
                for (offset, frame) in frames.iter().enumerate() {
                    let ack = handle
                        .durable_frame("a", epoch, offset as u64, frame)
                        .unwrap();
                    assert_eq!(ack.applied(), offset as u64 + 1);
                }
                let report = handle
                    .durable_close("a", epoch, frames.len() as u64)
                    .unwrap();
                assert!(!report.error, "{}", report.body);
                Ok(())
            })
            .unwrap();
            let direct = serve_sessions(
                &cfg(ServeDetectorKind::FastTrack, shards),
                vec![("a".into(), trace.to_binary())],
                1,
            )
            .unwrap();
            assert_eq!(out.reports[0].body, direct.reports[0].body);
            assert_eq!(out.transcript, direct.transcript);
            assert!(out.sessions.conserved(), "{:?}", out.sessions);
        }
    }

    #[test]
    fn durable_frames_dedup_by_offset() {
        let trace = racy_trace();
        let frames = per_action_frames(&trace);
        let config = cfg(ServeDetectorKind::FastTrack, 2);
        let (out, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            for (offset, frame) in frames.iter().enumerate() {
                handle
                    .durable_frame("a", epoch, offset as u64, frame)
                    .unwrap();
                // A retransmitted overlap of the same frame: skipped,
                // re-acked at the same watermark.
                match handle.durable_frame("a", epoch, offset as u64, frame) {
                    Ok(FrameAck::Duplicate { applied }) => {
                        assert_eq!(applied, offset as u64 + 1);
                    }
                    other => panic!("expected Duplicate, got {other:?}"),
                }
            }
            handle
                .durable_close("a", epoch, frames.len() as u64)
                .unwrap();
            Ok(())
        })
        .unwrap();
        assert_eq!(out.transport.frames_deduped, frames.len() as u64);
        let direct = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), trace.to_binary())],
            1,
        )
        .unwrap();
        assert_eq!(out.reports[0].body, direct.reports[0].body);
    }

    #[test]
    fn durable_frame_gap_fails_session() {
        let frames = per_action_frames(&racy_trace());
        let config = cfg(ServeDetectorKind::FastTrack, 1);
        let (out, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            match handle.durable_frame("a", epoch, 3, &frames[3]) {
                Err(DurableFrameError::Failed(report)) => {
                    assert!(report.error);
                    assert!(report.body.contains("frame gap"), "{}", report.body);
                }
                other => panic!("expected Failed, got {other:?}"),
            }
            // The slot is gone: further frames from this connection are
            // fenced off.
            assert!(matches!(
                handle.durable_frame("a", epoch, 0, &frames[0]),
                Err(DurableFrameError::Detached)
            ));
            Ok(())
        })
        .unwrap();
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.failed, 1);
        assert_eq!(out.reports[0].outcome, SessionOutcome::Failed);
    }

    #[test]
    fn durable_detach_resume_fences_stale_epoch() {
        let trace = racy_trace();
        let frames = per_action_frames(&trace);
        let config = cfg(ServeDetectorKind::FastTrack, 2);
        let (out, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            handle.durable_frame("a", epoch, 0, &frames[0]).unwrap();
            handle.durable_detach("a", epoch);

            let (epoch2, applied) = match handle.durable_open("a", true) {
                DurableOpen::Resumed { epoch, applied } => (epoch, applied),
                other => panic!("expected Resumed, got {other:?}"),
            };
            assert_eq!((epoch2, applied), (epoch + 1, 1));

            // The old connection wakes up and tries to keep writing: it
            // is fenced, and its writes change nothing.
            assert!(matches!(
                handle.durable_frame("a", epoch, 1, &frames[1]),
                Err(DurableFrameError::Detached)
            ));
            assert!(matches!(
                handle.durable_close("a", epoch, 1),
                Err(DurableFrameError::Detached)
            ));

            for (offset, frame) in frames.iter().enumerate().skip(applied as usize) {
                handle
                    .durable_frame("a", epoch2, offset as u64, frame)
                    .unwrap();
            }
            let report = handle
                .durable_close("a", epoch2, frames.len() as u64)
                .unwrap();
            assert!(!report.error, "{}", report.body);
            Ok(())
        })
        .unwrap();
        assert_eq!(out.transport.session_resumes, 1);
        let direct = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), trace.to_binary())],
            1,
        )
        .unwrap();
        assert_eq!(out.reports[0].body, direct.reports[0].body);
    }

    #[test]
    fn resume_of_completed_session_re_serves_report() {
        let frames = per_action_frames(&racy_trace());
        let config = cfg(ServeDetectorKind::FastTrack, 1);
        let (_, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            for (offset, frame) in frames.iter().enumerate() {
                handle
                    .durable_frame("a", epoch, offset as u64, frame)
                    .unwrap();
            }
            let report = handle
                .durable_close("a", epoch, frames.len() as u64)
                .unwrap();
            match handle.durable_open("a", true) {
                DurableOpen::Completed(again) => assert_eq!(again, report),
                other => panic!("expected Completed, got {other:?}"),
            }
            // A fresh SESSION under the same name is still a duplicate.
            assert!(matches!(
                handle.durable_open("a", false),
                DurableOpen::Rejected(_)
            ));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn resume_of_unknown_session_is_rejected() {
        let config = cfg(ServeDetectorKind::FastTrack, 1);
        let (out, ()) = run_service(&config, |handle| {
            match handle.durable_open("ghost", true) {
                DurableOpen::Rejected(msg) => assert!(msg.contains("unknown session"), "{msg}"),
                other => panic!("expected Rejected, got {other:?}"),
            }
            assert!(matches!(
                handle.durable_open("bad name!", false),
                DurableOpen::Rejected(_)
            ));
            Ok(())
        })
        .unwrap();
        assert_eq!(out.transport.resumes_rejected, 1);
    }

    #[test]
    fn durable_tick_reaps_idle_detached_sessions() {
        let dir = durable_dir("tick-reap");
        let config = ServeConfig {
            shards: 1,
            idle_timeout_ticks: Some(2),
            wal: Some(dir.clone()),
            ..ServeConfig::new(ServeDetectorKind::FastTrack)
        };
        let frames = per_action_frames(&racy_trace());
        let (out, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            handle.durable_frame("a", epoch, 0, &frames[0]).unwrap();
            // Attached slots never age.
            assert!(handle.durable_tick().is_empty());
            handle.durable_detach("a", epoch);
            assert!(handle.durable_tick().is_empty());
            let reaped = handle.durable_tick();
            assert_eq!(reaped.len(), 1);
            assert_eq!(reaped[0].outcome, SessionOutcome::Reaped);
            assert!(
                reaped[0].body.contains("idle timeout"),
                "{}",
                reaped[0].body
            );
            // Tick-reap retires the WAL segment: the lease expired for
            // good, there is nothing to come back to.
            assert!(!wal_path(&dir, "a").exists());
            Ok(())
        })
        .unwrap();
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.reaped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_reap_preserves_wal_and_cold_resume_completes() {
        let dir = durable_dir("cold-resume");
        let trace = racy_trace();
        let frames = per_action_frames(&trace);
        let config = ServeConfig {
            shards: 2,
            wal: Some(dir.clone()),
            ..ServeConfig::new(ServeDetectorKind::FastTrack)
        };

        // Run 1: two frames land, then the server shuts down.
        let (out1, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            handle.durable_frame("a", epoch, 0, &frames[0]).unwrap();
            handle.durable_frame("a", epoch, 1, &frames[1]).unwrap();
            let reaped = handle.durable_reap_remaining();
            assert_eq!(reaped.len(), 1);
            assert_eq!(reaped[0].outcome, SessionOutcome::Reaped);
            Ok(())
        })
        .unwrap();
        assert!(out1.sessions.conserved(), "{:?}", out1.sessions);
        assert_eq!(out1.transport.frames_journaled, 2);
        let wal = wal_path(&dir, "a");
        assert!(wal.exists(), "shutdown reap must retain the wal segment");

        // A crash can tear the tail of the segment mid-append; the
        // rebuild truncates back to the last complete frame.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
            f.write_all(&[0x07, 0x00, 0x00]).unwrap();
        }

        // Run 2: cold resume from the segment alone.
        let (out2, ()) = run_service(&config, |handle| {
            let (epoch, applied) = match handle.durable_open("a", true) {
                DurableOpen::Resumed { epoch, applied } => (epoch, applied),
                other => panic!("expected Resumed, got {other:?}"),
            };
            assert_eq!(applied, 2, "torn tail must not cost complete frames");
            for (offset, frame) in frames.iter().enumerate().skip(applied as usize) {
                handle
                    .durable_frame("a", epoch, offset as u64, frame)
                    .unwrap();
            }
            let report = handle
                .durable_close("a", epoch, frames.len() as u64)
                .unwrap();
            assert!(!report.error, "{}", report.body);
            Ok(())
        })
        .unwrap();
        assert_eq!(out2.transport.session_resumes, 1);
        assert!(!wal.exists(), "completion must retire the wal segment");

        let direct = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), trace.to_binary())],
            1,
        )
        .unwrap();
        assert_eq!(out2.reports[0].body, direct.reports[0].body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_frame_rejects_corrupt_payload() {
        let frames = per_action_frames(&racy_trace());
        let config = cfg(ServeDetectorKind::FastTrack, 1);
        let (out, ()) = run_service(&config, |handle| {
            let epoch = open_started(handle, "a");
            let mut bad = frames[0].clone();
            *bad.last_mut().unwrap() ^= 0xff;
            match handle.durable_frame("a", epoch, 0, &bad) {
                Err(DurableFrameError::Failed(report)) => {
                    assert!(report.error, "{}", report.body);
                }
                other => panic!("expected Failed, got {other:?}"),
            }
            Ok(())
        })
        .unwrap();
        assert!(out.sessions.conserved(), "{:?}", out.sessions);
        assert_eq!(out.sessions.failed, 1);
    }
}
