//! The streaming detection service engine behind `pacer serve`.
//!
//! Batch entry points replay one trace into one detector. The service
//! accepts many concurrent *sessions* — each an independent `.ptrace`
//! stream (TRACE_FORMAT.md) — and runs the detection itself on a pool of
//! [`shard`] workers, so ingest parallelism and detection
//! parallelism scale independently of the number of connections.
//!
//! # Sharding and why it is exact
//!
//! Events are demultiplexed per the happens-before rules:
//!
//! * **accesses** (`rd`/`wr`) are routed to shard `x mod N` by variable
//!   id — per-variable metadata lives in exactly one shard;
//! * **sync events** (`acq`/`rel`/`fork`/`join`/`vrd`/`vwr`) and the
//!   **sampling markers** are broadcast to every shard.
//!
//! In every vector-clock detector here, an access only *reads* the
//! thread's clock and mutates that variable's metadata, while sync events
//! and markers only mutate thread/lock/volatile clocks and the sampling
//! state. Broadcasting the latter gives every shard an identical copy of
//! that shared state, so each access is checked against exactly the
//! state a single unsharded detector would have used: the union of the
//! shards' race reports *is* the unsharded report, at any `N`.
//!
//! LITERACE is the exception — its bursty sampler keys on per-(site ×
//! thread) access counts, which splitting accesses would skew — so
//! LITERACE sessions are routed whole to one shard (session-sharding:
//! still N-way parallel across sessions, never split within one).
//!
//! # Determinism
//!
//! Per-session reports depend only on the session's bytes and the
//! service configuration. The merged transcript orders sessions by name
//! and sums counts, so it is byte-identical regardless of shard count,
//! arrival interleaving, or handler scheduling (`tests/serve.rs` and the
//! ci.sh gate enforce this against `pacer replay`).
//!
//! # Recovery and backpressure
//!
//! Completed sessions checkpoint to the PR 4 checksummed journal and are
//! restored verbatim on `--resume` — a killed-and-resumed service emits
//! the same merged transcript as an uninterrupted one. Under memory
//! pressure (`--mem-budget`), the PR 5 governor steps the *admission
//! sampling rate* down a ladder: new sessions get a fresh sampling-period
//! overlay at the reduced rate (shedding detection work, never
//! connections). Full protocol and lifecycle rules live in `SERVICE.md`.

use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;

use pacer_collections::JsonValue;
use pacer_core::PacerDetector;
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_governor::{
    default_ladder, millionths_from_rate, rate_from_millionths, Governor, GovernorConfig,
    GovernorSummary, DEFAULT_COOLDOWN,
};
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_obs::{ObservableDetector, ServeCounters};
use pacer_trace::gen::ResampleSampling;
use pacer_trace::stream::{AnyTraceReader, TraceStreamError, ValidatedActions};
use pacer_trace::{Action, Detector, SiteId};

use crate::journal::{self, JournalWriter};
use crate::shard::{self, Inboxes};

/// Bytes per metadata word, matching the space-accounting convention
/// used by the governor's memory budget everywhere else in the suite.
const WORD_BYTES: u64 = 8;

/// Detector families the service can run per shard. Mirrors the `pacer
/// replay` dispatch exactly (including `pacer-accordion` mapping to the
/// plain PACER engine) so per-session reports stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDetectorKind {
    /// PACER (also selected by the name `pacer-accordion`).
    Pacer,
    /// FASTTRACK, always-on precise detection.
    FastTrack,
    /// GENERIC O(n) vector-clock detection.
    Generic,
    /// LITERACE bursty sampling (session-sharded, see module docs).
    LiteRace,
}

impl ServeDetectorKind {
    /// Parses the `--detector` names `pacer replay` accepts.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown names.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "pacer" | "pacer-accordion" => Ok(ServeDetectorKind::Pacer),
            "fasttrack" => Ok(ServeDetectorKind::FastTrack),
            "generic" => Ok(ServeDetectorKind::Generic),
            "literace" => Ok(ServeDetectorKind::LiteRace),
            other => Err(format!("unknown detector `{other}`")),
        }
    }

    /// Whether accesses can be split across shards by variable id.
    fn var_shardable(self) -> bool {
        !matches!(self, ServeDetectorKind::LiteRace)
    }
}

/// One shard's detector instance for one session.
enum ServeDetector {
    Pacer(PacerDetector),
    FastTrack(FastTrackDetector),
    Generic(GenericDetector),
    LiteRace(LiteRaceDetector),
}

impl ServeDetector {
    fn build(kind: ServeDetectorKind, seed: u64) -> ServeDetector {
        match kind {
            ServeDetectorKind::Pacer => ServeDetector::Pacer(PacerDetector::new()),
            ServeDetectorKind::FastTrack => ServeDetector::FastTrack(FastTrackDetector::new()),
            ServeDetectorKind::Generic => ServeDetector::Generic(GenericDetector::new()),
            ServeDetectorKind::LiteRace => {
                ServeDetector::LiteRace(LiteRaceDetector::new(LiteRaceConfig::default(), seed))
            }
        }
    }

    fn on_action(&mut self, action: &Action) {
        match self {
            ServeDetector::Pacer(d) => d.on_action(action),
            ServeDetector::FastTrack(d) => d.on_action(action),
            ServeDetector::Generic(d) => d.on_action(action),
            ServeDetector::LiteRace(d) => d.on_action(action),
        }
    }

    fn dynamic_races(&self) -> u64 {
        let races = match self {
            ServeDetector::Pacer(d) => d.races(),
            ServeDetector::FastTrack(d) => d.races(),
            ServeDetector::Generic(d) => d.races(),
            ServeDetector::LiteRace(d) => d.races(),
        };
        races.len() as u64
    }

    fn distinct_races(&self) -> Vec<(SiteId, SiteId)> {
        match self {
            ServeDetector::Pacer(d) => d.distinct_races(),
            ServeDetector::FastTrack(d) => d.distinct_races(),
            ServeDetector::Generic(d) => d.distinct_races(),
            ServeDetector::LiteRace(d) => d.distinct_races(),
        }
    }

    fn footprint_words(&self) -> u64 {
        match self {
            ServeDetector::Pacer(d) => d.space_breakdown().total_words(),
            ServeDetector::FastTrack(d) => d.space_breakdown().total_words(),
            ServeDetector::Generic(d) => d.space_breakdown().total_words(),
            ServeDetector::LiteRace(d) => d.space_breakdown().total_words(),
        }
    }
}

/// Service configuration shared by the daemon, the client-driving CLI
/// mode, and the in-process test transport.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Detector worker count.
    pub shards: usize,
    /// Detector family each shard runs.
    pub detector: ServeDetectorKind,
    /// Seed for LITERACE sampling and shed-rate resampling overlays
    /// (same default as `pacer replay --seed`).
    pub seed: u64,
    /// Per-shard inbox bound — the backpressure depth.
    pub capacity: usize,
    /// Journal path for per-session checkpoints.
    pub checkpoint: Option<PathBuf>,
    /// Restore completed sessions from the checkpoint journal.
    pub resume: bool,
    /// Memory budget in bytes; arms the admission governor.
    pub mem_budget: Option<u64>,
    /// Mean sampling-period length for shed-rate overlays (same default
    /// as `pacer replay --resample-period`).
    pub resample_period: usize,
}

impl ServeConfig {
    /// Defaults matching the CLI: 4 shards, seed 42, inbox depth 1024,
    /// no checkpoint, no budget, resample period 50.
    pub fn new(detector: ServeDetectorKind) -> Self {
        ServeConfig {
            shards: 4,
            detector,
            seed: 42,
            capacity: 1024,
            checkpoint: None,
            resume: false,
            mem_budget: None,
            resample_period: 50,
        }
    }
}

/// A service-level failure (configuration, journal, or transport I/O).
/// Per-session decode/validation problems are *not* errors at this level:
/// they become error reports for that session alone.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration.
    Config(String),
    /// Checkpoint journal failure.
    Journal(String),
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "{m}"),
            ServeError::Journal(m) => write!(f, "journal: {m}"),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One completed session's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionReport {
    /// Client-supplied session name (unique per service run).
    pub name: String,
    /// The response body — byte-identical to `pacer replay` of the same
    /// bytes (plus the resample line when shed), or a single `error:`
    /// line for rejected sessions.
    pub body: String,
    /// Actions analyzed (post-overlay).
    pub events: u64,
    /// Dynamic race reports, summed over shards.
    pub dynamic_races: u64,
    /// Distinct site pairs after the cross-shard union.
    pub distinct_races: u64,
    /// Admission sampling rate in millionths when the governor shed this
    /// session below full rate.
    pub shed_millionths: Option<u32>,
    /// Whether the stream ended mid-frame (partial, per TRACE_FORMAT.md).
    pub truncated: bool,
    /// Whether the session was rejected (corrupt frame, invalid trace,
    /// duplicate name).
    pub error: bool,
}

/// Everything a finished service run produced.
#[derive(Clone, Debug)]
pub struct ServeOutput {
    /// Per-session reports, sorted by session name.
    pub reports: Vec<SessionReport>,
    /// Per-shard counters in shard-index order.
    pub shard_counters: Vec<ServeCounters>,
    /// Governor outcome when a budget was armed.
    pub governor: Option<GovernorSummary>,
    /// The deterministic merged transcript (see module docs).
    pub transcript: String,
}

impl ServeOutput {
    /// True when at least one session was rejected.
    pub fn any_errors(&self) -> bool {
        self.reports.iter().any(|r| r.error)
    }
}

/// Messages a session handler sends to shard workers. Per-channel FIFO
/// plus one-handler-per-session gives every shard each session's events
/// in stream order; `Close` doubles as the flush barrier.
#[derive(Clone)]
enum ShardMsg {
    /// One event of `session`, already routed or broadcast.
    Event { session: u32, action: Action },
    /// Flush barrier: reply with (and discard) the session's state.
    Close {
        session: u32,
        reply: SyncSender<(usize, ShardReport)>,
    },
    /// Reply with the shard's total live metadata footprint, in words.
    Poll { reply: SyncSender<u64> },
}

/// One shard's share of a closed session.
#[derive(Clone, Debug, Default)]
struct ShardReport {
    dynamic: u64,
    distinct: Vec<(SiteId, SiteId)>,
}

fn shard_worker(
    kind: ServeDetectorKind,
    seed: u64,
    shard: usize,
    inbox: Receiver<ShardMsg>,
) -> ServeCounters {
    let mut sessions: Vec<Option<ServeDetector>> = Vec::new();
    let mut counters = ServeCounters::default();
    for msg in inbox {
        match msg {
            ShardMsg::Event { session, action } => {
                let idx = session as usize;
                if sessions.len() <= idx {
                    sessions.resize_with(idx + 1, || None);
                }
                let det = sessions[idx].get_or_insert_with(|| {
                    counters.sessions += 1;
                    ServeDetector::build(kind, seed)
                });
                counters.events += 1;
                if action.is_access() {
                    counters.accesses += 1;
                }
                det.on_action(&action);
            }
            ShardMsg::Close { session, reply } => {
                let report = match sessions.get_mut(session as usize).and_then(Option::take) {
                    Some(det) => {
                        let dynamic = det.dynamic_races();
                        counters.races += dynamic;
                        ShardReport {
                            dynamic,
                            distinct: det.distinct_races(),
                        }
                    }
                    None => ShardReport::default(),
                };
                // A handler that gave up waiting cannot happen (replies
                // are collected unconditionally), but a send to a dropped
                // reply channel must not take the shard down.
                let _ = reply.send((shard, report));
            }
            ShardMsg::Poll { reply } => {
                let live = sessions
                    .iter()
                    .flatten()
                    .map(ServeDetector::footprint_words)
                    .sum();
                let _ = reply.send(live);
            }
        }
    }
    counters
}

/// Shared engine state behind the handle's mutex.
struct EngineState {
    /// Completed (or restored) reports, in completion order.
    completed: Vec<SessionReport>,
    /// Names seen so far, for duplicate rejection.
    names: Vec<String>,
    /// Reports restored from the journal, served without re-ingest.
    restored: Vec<SessionReport>,
    /// Open checkpoint journal, if any.
    journal: Option<JournalWriter>,
    /// First journal-append failure, surfaced at the end of the run.
    journal_error: Option<String>,
    /// Admission governor, when a memory budget is armed.
    governor: Option<Governor>,
    /// Sessions admitted so far (the governor's boundary counter).
    admitted: u64,
}

/// The live service a transport drives: [`serve`](ServiceHandle::serve)
/// is safe to call from many threads at once (one call per session).
pub struct ServiceHandle<'cfg> {
    cfg: &'cfg ServeConfig,
    inboxes: Inboxes<ShardMsg>,
    next_session: AtomicU32,
    state: Mutex<EngineState>,
}

impl ServiceHandle<'_> {
    /// Serves one complete session from `source`, blocking until its
    /// report is merged; the returned body is what the transport should
    /// send back to the client.
    pub fn serve(&self, name: &str, source: impl Read) -> SessionReport {
        let admission = self.admit(name);
        let report = match admission {
            Admission::Restored(report) => return report,
            Admission::Duplicate => SessionReport {
                name: name.to_string(),
                body: "error: duplicate session name\n".to_string(),
                events: 0,
                dynamic_races: 0,
                distinct_races: 0,
                shed_millionths: None,
                truncated: false,
                error: true,
            },
            Admission::Admit { session, shed } => self.ingest(name, session, shed, source),
        };
        self.complete(report)
    }

    /// Admission decision for a named session: restored from the
    /// journal, rejected as a duplicate, or admitted at the governor's
    /// current rate.
    fn admit(&self, name: &str) -> Admission {
        let mut state = lock(&self.state);
        if let Some(r) = state.restored.iter().position(|r| r.name == name) {
            let report = state.restored.swap_remove(r);
            state.names.push(report.name.clone());
            state.completed.push(report.clone());
            return Admission::Restored(report);
        }
        if state.names.iter().any(|n| n == name) {
            return Admission::Duplicate;
        }
        state.names.push(name.to_string());
        let shed = self.governor_rate(&mut state);
        drop(state);
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        Admission::Admit { session, shed }
    }

    /// Polls the shards' live footprint and steps the governor at this
    /// admission boundary; returns the (sub-full) admission rate.
    fn governor_rate(&self, state: &mut EngineState) -> Option<u32> {
        state.admitted += 1;
        let boundary = state.admitted;
        let governor = state.governor.as_mut()?;
        let budget = governor.config().mem_budget_bytes?;
        let (tx, rx) = sync_channel(self.cfg.shards);
        self.inboxes.broadcast(ShardMsg::Poll { reply: tx });
        let live_words: u64 = rx.iter().take(self.cfg.shards).sum();
        let _ = governor.on_boundary(boundary, Some((live_words * WORD_BYTES, budget)), None);
        let rate = governor.rate_millionths();
        (rate < millionths_from_rate(1.0)).then_some(rate)
    }

    /// Decodes, validates, routes, and flushes one admitted session.
    fn ingest(
        &self,
        name: &str,
        session: u32,
        shed: Option<u32>,
        source: impl Read,
    ) -> SessionReport {
        let error_report = |message: String, events: u64| SessionReport {
            name: name.to_string(),
            body: format!("error: {message}\n"),
            events,
            dynamic_races: 0,
            distinct_races: 0,
            shed_millionths: shed,
            truncated: false,
            error: true,
        };

        let mut reader = match AnyTraceReader::new(source) {
            Ok(reader) => reader,
            Err(e) => {
                // Nothing was routed yet, so there is no state to flush.
                return error_report(e.to_string(), 0);
            }
        };

        // Decode errors end the event stream; the captured error wins
        // over whatever partial analysis preceded it (same precedence as
        // `pacer replay`).
        let mut stream_err: Option<TraceStreamError> = None;
        let (stats, threads, validation_err) = {
            let events = std::iter::from_fn(|| match reader.next() {
                Some(Ok(action)) => Some(action),
                Some(Err(e)) => {
                    stream_err = Some(e);
                    None
                }
                None => None,
            });
            if let Some(millionths) = shed {
                let overlay = ResampleSampling::new(
                    events,
                    rate_from_millionths(millionths),
                    self.cfg.resample_period,
                    self.cfg.seed,
                );
                let mut validated = ValidatedActions::new(overlay);
                self.route(session, &mut validated);
                let err = validated.error().map(ToString::to_string);
                (*validated.stats(), validated.threads(), err)
            } else {
                let mut validated = ValidatedActions::new(events);
                self.route(session, &mut validated);
                let err = validated.error().map(ToString::to_string);
                (*validated.stats(), validated.threads(), err)
            }
        };
        let truncation_note = reader.truncation_note();
        let truncated = reader.truncated();

        // Always flush: events routed before a failure must be freed.
        let (dynamic, distinct) = self.flush(session);

        if let Some(e) = validation_err {
            return error_report(format!("invalid trace: {e}"), stats.total());
        }
        if let Some(e) = stream_err {
            return error_report(e.to_string(), stats.total());
        }

        // The body reproduces `pacer replay` byte for byte (`--resample`
        // included, for shed sessions).
        let mut body = String::new();
        body.push_str(&format!(
            "replaying {} actions ({} accesses, {} sync ops, {} threads)\n",
            stats.total(),
            stats.accesses(),
            stats.sync_ops(),
            threads
        ));
        if let Some(note) = truncation_note {
            body.push_str(&note);
            body.push('\n');
        }
        if let Some(millionths) = shed {
            body.push_str(&format!(
                "resampled sampling periods at r = {:.2}%, mean period {}, seed {}\n",
                rate_from_millionths(millionths) * 100.0,
                self.cfg.resample_period,
                self.cfg.seed
            ));
        }
        body.push_str(&format!(
            "\n{} dynamic race report(s), {} distinct:\n",
            dynamic,
            distinct.len()
        ));
        for (a, b) in &distinct {
            body.push_str(&format!("  {a}  <->  {b}\n"));
        }

        SessionReport {
            name: name.to_string(),
            body,
            events: stats.total(),
            dynamic_races: dynamic,
            distinct_races: distinct.len() as u64,
            shed_millionths: shed,
            truncated,
            error: false,
        }
    }

    /// Routes one session's events: accesses to their variable's shard,
    /// everything else broadcast (LITERACE: the whole session to one
    /// shard). See the module docs for why this is exact.
    fn route(&self, session: u32, events: &mut impl Iterator<Item = Action>) {
        let shards = self.cfg.shards;
        if self.cfg.detector.var_shardable() {
            for action in events {
                match action.access() {
                    Some((x, _, _)) => self.inboxes.send(
                        x.raw() as usize % shards,
                        ShardMsg::Event { session, action },
                    ),
                    None => self.inboxes.broadcast(ShardMsg::Event { session, action }),
                }
            }
        } else {
            let home = session as usize % shards;
            for action in events {
                self.inboxes.send(home, ShardMsg::Event { session, action });
            }
        }
    }

    /// Flush barrier: collects every shard's share of the session and
    /// merges deterministically (sum of dynamic counts, sorted union of
    /// distinct pairs — the shard replies are order-insensitive).
    fn flush(&self, session: u32) -> (u64, Vec<(SiteId, SiteId)>) {
        let (tx, rx) = sync_channel(self.cfg.shards);
        self.inboxes
            .broadcast(ShardMsg::Close { session, reply: tx });
        let mut dynamic = 0;
        let mut distinct = Vec::new();
        for (_, share) in rx.iter().take(self.cfg.shards) {
            dynamic += share.dynamic;
            distinct.extend(share.distinct);
        }
        distinct.sort();
        distinct.dedup();
        (dynamic, distinct)
    }

    /// Records a finished session: checkpoint it, then merge it.
    fn complete(&self, report: SessionReport) -> SessionReport {
        let mut state = lock(&self.state);
        if let Some(writer) = state.journal.as_mut() {
            if let Err(e) = writer.write_line(&encode_entry(&report)) {
                if state.journal_error.is_none() {
                    state.journal_error = Some(e.to_string());
                }
            }
        }
        state.completed.push(report.clone());
        report
    }
}

enum Admission {
    Restored(SessionReport),
    Duplicate,
    Admit { session: u32, shed: Option<u32> },
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Handlers run under catch-free scoped threads; a poisoned lock only
    // means another handler panicked mid-merge, and the state it guards
    // (append-only vectors) is always structurally consistent.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the service: spawns the shard fleet, hands the transport a
/// [`ServiceHandle`], and merges everything when the transport returns.
///
/// `drive` is the transport loop — the unix-socket accept loop, the
/// framed-stdin reader, or an in-process test driver. It may serve
/// sessions from as many threads as it likes (e.g. via
/// `std::thread::scope`); every session must be complete before it
/// returns.
///
/// # Errors
///
/// Configuration and journal failures, or whatever `drive` returns.
pub fn run_service<T>(
    cfg: &ServeConfig,
    drive: impl FnOnce(&ServiceHandle<'_>) -> Result<T, ServeError>,
) -> Result<(ServeOutput, T), ServeError> {
    if cfg.shards == 0 {
        return Err(ServeError::Config("--shards must be at least 1".into()));
    }
    if cfg.resume && cfg.checkpoint.is_none() {
        return Err(ServeError::Config("--resume requires --checkpoint".into()));
    }

    let mut restored = Vec::new();
    let mut journal = None;
    if let Some(path) = &cfg.checkpoint {
        if cfg.resume && path.exists() {
            let contents =
                journal::read_journal(path).map_err(|e| ServeError::Journal(e.to_string()))?;
            if contents.dropped_partial_tail {
                journal::rewrite_valid_prefix(path, &contents.lines)?;
            }
            for line in &contents.lines {
                restored.push(decode_entry(line).map_err(ServeError::Journal)?);
            }
            journal = Some(JournalWriter::append(path)?);
        } else {
            journal = Some(JournalWriter::create(path)?);
        }
    }

    let governor = cfg.mem_budget.map(|budget| {
        Governor::new(GovernorConfig {
            mem_budget_bytes: Some(budget),
            deadline_events: None,
            ladder: default_ladder(millionths_from_rate(1.0)),
            cooldown: DEFAULT_COOLDOWN,
        })
    });

    let kind = cfg.detector;
    let seed = cfg.seed;
    let (shard_counters, (driven, state)) = shard::run_sharded(
        cfg.shards,
        cfg.capacity,
        |shard, inbox| shard_worker(kind, seed, shard, inbox),
        |inboxes| {
            let handle = ServiceHandle {
                cfg,
                inboxes,
                next_session: AtomicU32::new(0),
                state: Mutex::new(EngineState {
                    completed: Vec::new(),
                    names: Vec::new(),
                    restored,
                    journal,
                    journal_error: None,
                    governor,
                    admitted: 0,
                }),
            };
            let driven = drive(&handle);
            let state = handle
                .state
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            (driven, state)
        },
    );
    let driven = driven?;
    if let Some(message) = state.journal_error {
        return Err(ServeError::Journal(message));
    }

    let mut reports = state.completed;
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    let transcript = render_transcript(&reports);
    let output = ServeOutput {
        reports,
        shard_counters,
        governor: state.governor.map(Governor::into_summary),
        transcript,
    };
    Ok((output, driven))
}

/// In-process transport: serves `sessions` (name, bytes) with up to
/// `concurrency` parallel handlers pulling from a shared queue.
///
/// # Errors
///
/// As [`run_service`].
pub fn serve_sessions(
    cfg: &ServeConfig,
    sessions: Vec<(String, Vec<u8>)>,
    concurrency: usize,
) -> Result<ServeOutput, ServeError> {
    let (output, ()) = run_service(cfg, |handle| {
        if concurrency <= 1 {
            for (name, bytes) in &sessions {
                handle.serve(name, &bytes[..]);
            }
        } else {
            let queue = Mutex::new(sessions.iter());
            std::thread::scope(|scope| {
                for _ in 0..concurrency {
                    scope.spawn(|| loop {
                        let next = lock(&queue).next();
                        match next {
                            Some((name, bytes)) => {
                                handle.serve(name, &bytes[..]);
                            }
                            None => break,
                        }
                    });
                }
            });
        }
        Ok(())
    })?;
    Ok(output)
}

/// Renders the deterministic merged transcript: sessions by name, then
/// the fleet summary. Deliberately shard-blind — the transcript must be
/// byte-identical at any `--shards N` (shard-level detail goes to the
/// metrics snapshot instead).
fn render_transcript(reports: &[SessionReport]) -> String {
    let mut out = String::new();
    let (mut events, mut dynamic, mut distinct, mut errors, mut shed) = (0u64, 0u64, 0u64, 0, 0);
    for report in reports {
        out.push_str(&format!("=== session {} ===\n", report.name));
        out.push_str(&report.body);
        events += report.events;
        dynamic += report.dynamic_races;
        distinct += report.distinct_races;
        if report.error {
            errors += 1;
        }
        if report.shed_millionths.is_some() {
            shed += 1;
        }
    }
    out.push_str(&format!(
        "\nserved {} session(s) ({} events, {} dynamic races, {} distinct)\n",
        reports.len(),
        events,
        dynamic,
        distinct,
    ));
    if errors > 0 {
        out.push_str(&format!("{errors} session(s) rejected\n"));
    }
    if shed > 0 {
        out.push_str(&format!(
            "governor: {shed} session(s) admitted at reduced sampling rates\n"
        ));
    }
    out
}

/// Encodes one session checkpoint as single-line JSON for the journal.
fn encode_entry(report: &SessionReport) -> String {
    let mut out = String::from("{\"name\":");
    journal::escape_into(&mut out, &report.name);
    out.push_str(&format!(
        ",\"events\":{},\"dynamic\":{},\"distinct\":{}",
        report.events, report.dynamic_races, report.distinct_races
    ));
    match report.shed_millionths {
        Some(m) => out.push_str(&format!(",\"shed\":{m}")),
        None => out.push_str(",\"shed\":null"),
    }
    out.push_str(&format!(
        ",\"truncated\":{},\"error\":{},\"body\":",
        report.truncated, report.error
    ));
    journal::escape_into(&mut out, &report.body);
    out.push('}');
    out
}

/// Decodes one journaled session checkpoint.
fn decode_entry(json: &str) -> Result<SessionReport, String> {
    let value = JsonValue::parse(json).map_err(|e| e.to_string())?;
    let str_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let u64_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let bool_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing boolean field `{key}`"))
    };
    let shed = match value.get("shed") {
        None => return Err("missing field `shed`".into()),
        Some(v) => v.as_u64().map(|m| m as u32),
    };
    Ok(SessionReport {
        name: str_field("name")?,
        body: str_field("body")?,
        events: u64_field("events")?,
        dynamic_races: u64_field("dynamic")?,
        distinct_races: u64_field("distinct")?,
        shed_millionths: shed,
        truncated: bool_field("truncated")?,
        error: bool_field("error")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::Trace;

    fn racy_trace() -> Trace {
        Trace::parse(
            "
            fork t0 t1
            sbegin
            wr t0 x0 s0
            wr t1 x0 s1
            rd t0 x1 s2
            wr t1 x1 s3
            send
            join t0 t1
        ",
        )
        .unwrap()
    }

    fn cfg(kind: ServeDetectorKind, shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            ..ServeConfig::new(kind)
        }
    }

    #[test]
    fn report_is_shard_count_invariant() {
        let bytes = racy_trace().to_binary();
        let mut transcripts = Vec::new();
        for shards in [1, 2, 8] {
            let out = serve_sessions(
                &cfg(ServeDetectorKind::FastTrack, shards),
                vec![("a".into(), bytes.clone())],
                1,
            )
            .unwrap();
            assert_eq!(out.reports.len(), 1);
            assert!(!out.reports[0].error);
            transcripts.push(out.reports[0].body.clone());
        }
        assert_eq!(transcripts[0], transcripts[1]);
        assert_eq!(transcripts[1], transcripts[2]);
        assert!(transcripts[0].contains("dynamic race report(s)"));
    }

    #[test]
    fn journal_entry_round_trips() {
        let report = SessionReport {
            name: "s \"quoted\"".into(),
            body: "replaying 3 actions\n\n1 dynamic race report(s), 1 distinct:\n".into(),
            events: 3,
            dynamic_races: 1,
            distinct_races: 1,
            shed_millionths: Some(500_000),
            truncated: true,
            error: false,
        };
        assert_eq!(decode_entry(&encode_entry(&report)).unwrap(), report);

        let plain = SessionReport {
            shed_millionths: None,
            truncated: false,
            ..report
        };
        assert_eq!(decode_entry(&encode_entry(&plain)).unwrap(), plain);
    }

    /// A `Read` fed chunk by chunk over a rendezvous channel, so a test
    /// can hold a session open at a known decode position.
    struct ChanReader {
        rx: std::sync::mpsc::Receiver<Vec<u8>>,
        cur: Vec<u8>,
        pos: usize,
    }

    impl Read for ChanReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pos >= self.cur.len() {
                match self.rx.recv() {
                    Ok(chunk) => {
                        self.cur = chunk;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0),
                }
            }
            let n = (self.cur.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.cur[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn admission_sheds_sampling_rate_under_memory_pressure() {
        let bytes = racy_trace().to_binary();
        let mut config = cfg(ServeDetectorKind::FastTrack, 2);
        config.mem_budget = Some(1);

        let (output, ()) = run_service(&config, |handle| {
            std::thread::scope(|scope| {
                // Rendezvous channel: each send returns only once the
                // session thread has consumed the previous chunk, so the
                // decode position is deterministic at every step.
                let (tx, rx) = sync_channel::<Vec<u8>>(0);
                let long = scope.spawn(move || {
                    handle.serve(
                        "long",
                        ChanReader {
                            rx,
                            cur: Vec::new(),
                            pos: 0,
                        },
                    )
                });
                // The whole trace with the channel still open: every
                // event is routed, then the decoder blocks waiting for
                // the next frame header — the session stays live. The
                // empty rendezvous chunk returns only once the decoder
                // is past the real bytes.
                tx.send(bytes.clone()).unwrap();
                tx.send(Vec::new()).unwrap();

                // `long` now holds live detector state, breaching the
                // 1-byte budget: this admission must shed one rung.
                let short = handle.serve("short", &bytes[..]);
                assert_eq!(short.shed_millionths, Some(500_000));
                assert!(!short.error, "shed admission still analyzes: {short:?}");

                drop(tx);
                let long = long.join().unwrap();
                assert!(!long.truncated && !long.error, "{long:?}");
                assert_eq!(long.shed_millionths, None, "first admission was clear");
                Ok(())
            })
        })
        .unwrap();

        let governor = output.governor.expect("budget arms the governor");
        assert!(governor.breaches >= 1);
        let short = output.reports.iter().find(|r| r.name == "short").unwrap();
        assert!(
            short
                .body
                .contains("resampled sampling periods at r = 50.00%, mean period 50, seed 42"),
            "shed body carries the replay-identical resample line: {}",
            short.body
        );
    }

    #[test]
    fn duplicate_names_are_rejected_without_contamination() {
        let bytes = racy_trace().to_binary();
        let out = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("a".into(), bytes.clone()), ("a".into(), bytes)],
            1,
        )
        .unwrap();
        assert_eq!(out.reports.len(), 2);
        assert!(!out.reports[0].error);
        assert!(out.reports[1].error);
        assert!(out.reports[1].body.contains("duplicate session name"));
        assert!(out.any_errors());
    }

    #[test]
    fn corrupt_session_does_not_poison_others() {
        let good = racy_trace().to_binary();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let out = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("bad".into(), bad), ("good".into(), good.clone())],
            2,
        )
        .unwrap();
        let by_name = |n: &str| out.reports.iter().find(|r| r.name == n).unwrap();
        assert!(by_name("bad").error);
        assert!(by_name("bad").body.starts_with("error: "));
        let alone = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, 2),
            vec![("good".into(), good)],
            1,
        )
        .unwrap();
        assert_eq!(by_name("good").body, alone.reports[0].body);
    }
}
