//! Deterministic parallel trial engine.
//!
//! Every multi-trial experiment in this crate is embarrassingly parallel:
//! trial `i` is fully determined by `(program, detector, seed_i)`, and the
//! per-trial seeds are pure functions of the trial index. This module fans
//! those trials out over a scoped worker pool (`std::thread::scope`, no
//! external dependencies) while keeping the *merged* output bit-identical
//! to a sequential run:
//!
//! * workers claim trial indices from a shared atomic counter, so there is
//!   no static partitioning skew;
//! * each result is stored in its index's slot, and the caller folds the
//!   slots **in index order** — aggregation order never depends on thread
//!   scheduling;
//! * errors are reported for the lowest failing index, matching what a
//!   sequential loop would have returned first.
//!
//! The worker count is a process-wide setting ([`set_jobs`]) so existing
//! experiment entry points keep their signatures; the CLI's `--jobs N`
//! flag writes it once at startup. The default is `1` (fully sequential).
//!
//! A panic inside `f` propagates out of `run_indexed` (via
//! `std::thread::scope`) and takes the whole campaign with it; callers
//! that need to survive per-trial failures should wrap their closures
//! with the [`resilient`](crate::resilient) layer, which catches unwinds
//! per attempt and quarantines persistent failures instead.
//!
//! Resource-governed trials keep the contract: the governor
//! (`pacer-governor`) is a pure function of the per-trial event stream,
//! so its rate steps, breaches, and cancellations land in the trial's own
//! result slot and merge in index order like every other outcome —
//! governed campaigns stay byte-identical at any `--jobs N`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker count for [`run_indexed`]. 0 is treated as 1.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads used by [`run_indexed`].
///
/// `1` (the default) runs every task inline on the calling thread. The
/// merged results are identical for any value — only wall-clock time
/// changes.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The currently configured worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Runs `f(0), f(1), …, f(count - 1)` on the configured worker pool and
/// returns the results **in index order**.
///
/// `f` must be a pure function of its index (trial seeds derived from the
/// index, not from shared mutable state); under that contract the returned
/// vector is byte-identical for every `jobs` setting.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs().min(count.max(1));
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                // The lock only guards a slot assignment, which cannot
                // panic, so poisoning is recoverable by construction:
                // the data is always consistent.
                slots
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())[i] = Some(value);
            });
        }
    });

    slots
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .into_iter()
        // Unreachable when a worker dies early: a panic in `f` propagates
        // out of `thread::scope` above before the slots are read.
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// [`run_indexed`] for fallible tasks: returns all results in index order,
/// or the error produced by the **lowest** failing index — exactly what a
/// sequential `for` loop with `?` would have reported first.
///
/// # Errors
///
/// Returns the lowest-index error when any task fails.
pub fn try_run_indexed<T, E, F>(count: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(count);
    for result in run_indexed(count, f) {
        out.push(result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_jobs` writes a process-wide global shared across the test
    /// binary's threads, so every test that changes it runs under this
    /// lock and restores the default on exit.
    static JOBS_GUARD: Mutex<()> = Mutex::new(());

    fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
        let _guard = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(jobs);
        let out = f();
        set_jobs(1);
        out
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = with_jobs(1, || run_indexed(100, |i| i * i));
        let parallel = with_jobs(4, || run_indexed(100, |i| i * i));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn results_are_in_index_order() {
        let out = with_jobs(8, || {
            run_indexed(50, |i| {
                // Stagger completion so late indices can finish first.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i
            })
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_counts_work() {
        assert!(run_indexed(0, |i| i).is_empty());
        assert_eq!(run_indexed(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn lowest_index_error_wins() {
        let result: Result<Vec<usize>, usize> = with_jobs(4, || {
            try_run_indexed(64, |i| if i % 10 == 3 { Err(i) } else { Ok(i) })
        });
        assert_eq!(result.unwrap_err(), 3, "same error a sequential loop hits");
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let _guard = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(1);
    }
}
