//! Deterministic parallel trial engine.
//!
//! Every multi-trial experiment in this crate is embarrassingly parallel:
//! trial `i` is fully determined by `(program, detector, seed_i)`, and the
//! per-trial seeds are pure functions of the trial index. This module fans
//! those trials out over a pool of [`shard`] workers —
//! bounded-inbox shards on scoped threads, the same unit the streaming
//! service is built from — while keeping the *merged* output bit-identical
//! to a sequential run:
//!
//! * trial indices are fed through single-slot inboxes with balanced
//!   overflow ([`Inboxes::send_balanced`](crate::shard::Inboxes)): a shard
//!   busy with a slow trial diverts the next index to an idle one, so
//!   there is no static partitioning skew;
//! * each shard returns its `(index, result)` pairs when its inbox
//!   closes, and the merge writes them into index-order slots — the
//!   folded aggregation never depends on thread scheduling;
//! * errors are reported for the lowest failing index, matching what a
//!   sequential loop would have returned first.
//!
//! The worker count is a process-wide setting ([`set_jobs`]) so existing
//! experiment entry points keep their signatures; the CLI's `--jobs N`
//! flag writes it once at startup. The default is `1` (fully sequential).
//!
//! A panic inside `f` propagates out of `run_indexed` (via
//! `std::thread::scope`) and takes the whole campaign with it; callers
//! that need to survive per-trial failures should wrap their closures
//! with the [`resilient`](crate::resilient) layer, which catches unwinds
//! per attempt and quarantines persistent failures instead.
//!
//! Resource-governed trials keep the contract: the governor
//! (`pacer-governor`) is a pure function of the per-trial event stream,
//! so its rate steps, breaches, and cancellations land in the trial's own
//! result slot and merge in index order like every other outcome —
//! governed campaigns stay byte-identical at any `--jobs N`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::shard;

/// Process-wide worker count for [`run_indexed`]. 0 is treated as 1.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads used by [`run_indexed`].
///
/// `1` (the default) runs every task inline on the calling thread. The
/// merged results are identical for any value — only wall-clock time
/// changes.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The currently configured worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Runs `f(0), f(1), …, f(count - 1)` on the configured worker pool and
/// returns the results **in index order**.
///
/// `f` must be a pure function of its index (trial seeds derived from the
/// index, not from shared mutable state); under that contract the returned
/// vector is byte-identical for every `jobs` setting.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs().min(count.max(1));
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let f = &f;
    // Single-slot inboxes: a shard that is still chewing on a slow trial
    // has a full inbox, so the balanced feed diverts the next index to an
    // idle shard — the dynamic load balancing an atomic claim counter
    // used to provide, now expressed through the shard unit itself.
    let (per_shard, ()) = shard::run_sharded(
        workers,
        1,
        |_, inbox: std::sync::mpsc::Receiver<usize>| {
            let mut done: Vec<(usize, T)> = Vec::new();
            for i in inbox {
                done.push((i, f(i)));
            }
            done
        },
        |inboxes| {
            for i in 0..count {
                inboxes.send_balanced(i % workers, i);
            }
        },
    );

    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    for (i, value) in per_shard.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is fed to exactly one shard"))
        .collect()
}

/// [`run_indexed`] for fallible tasks: returns all results in index order,
/// or the error produced by the **lowest** failing index — exactly what a
/// sequential `for` loop with `?` would have reported first.
///
/// # Errors
///
/// Returns the lowest-index error when any task fails.
pub fn try_run_indexed<T, E, F>(count: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(count);
    for result in run_indexed(count, f) {
        out.push(result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// `set_jobs` writes a process-wide global shared across the test
    /// binary's threads, so every test that changes it runs under this
    /// lock and restores the default on exit.
    static JOBS_GUARD: Mutex<()> = Mutex::new(());

    fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
        let _guard = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(jobs);
        let out = f();
        set_jobs(1);
        out
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = with_jobs(1, || run_indexed(100, |i| i * i));
        let parallel = with_jobs(4, || run_indexed(100, |i| i * i));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn results_are_in_index_order() {
        let out = with_jobs(8, || {
            run_indexed(50, |i| {
                // Stagger completion so late indices can finish first.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i
            })
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_counts_work() {
        assert!(run_indexed(0, |i| i).is_empty());
        assert_eq!(run_indexed(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn lowest_index_error_wins() {
        let result: Result<Vec<usize>, usize> = with_jobs(4, || {
            try_run_indexed(64, |i| if i % 10 == 3 { Err(i) } else { Ok(i) })
        });
        assert_eq!(result.unwrap_err(), 3, "same error a sequential loop hits");
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let _guard = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(1);
    }
}
