//! Space-over-time measurement (Figure 10).

use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_runtime::{InstrumentMode, NullDetector, Vm, VmConfig, VmError};

/// One point of a Figure-10 curve: taken at a full-heap collection.
#[derive(Clone, Copy, Debug)]
pub struct SpacePoint {
    /// Execution progress in interpreter steps (normalize by the last
    /// point's steps to get the paper's "normalized time" x-axis).
    pub steps: u64,
    /// Live program heap bytes (including the two metadata header words
    /// per object).
    pub heap_bytes: u64,
    /// Live detector metadata bytes.
    pub metadata_bytes: u64,
}

impl SpacePoint {
    /// Total live bytes: program heap plus analysis metadata.
    pub fn total(&self) -> u64 {
        self.heap_bytes + self.metadata_bytes
    }
}

/// Which curve of Figure 10 to record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpaceConfig {
    /// Unmodified VM ("Base").
    Base,
    /// Object metadata only ("OM only"): header words, no analysis.
    ObjectMetadataOnly,
    /// PACER at a sampling rate.
    Pacer {
        /// Target sampling rate.
        rate: f64,
    },
    /// FASTTRACK (≈ PACER at 100%, no discard).
    FastTrack,
    /// Online LITERACE (space does *not* scale with its sampling rate).
    LiteRace {
        /// Burst length.
        burst: u64,
    },
}

impl SpaceConfig {
    /// Curve label.
    pub fn label(&self) -> String {
        match self {
            SpaceConfig::Base => "base".into(),
            SpaceConfig::ObjectMetadataOnly => "om-only".into(),
            SpaceConfig::Pacer { rate } => format!("pacer@{}%", rate * 100.0),
            SpaceConfig::FastTrack => "fasttrack".into(),
            SpaceConfig::LiteRace { burst } => format!("literace(b={burst})"),
        }
    }
}

const WORD_BYTES: u64 = 8;

/// Runs one trial recording live space at every full-heap collection.
///
/// The measurement mirrors §5.4: "the amount of live (reachable) memory …
/// after each full-heap collection", including application and analysis
/// memory, from "a single trial of each configuration" so sampling spikes
/// are visible.
///
/// # Errors
///
/// Propagates VM errors.
pub fn measure_space(
    program: &CompiledProgram,
    config: SpaceConfig,
    seed: u64,
) -> Result<Vec<SpacePoint>, VmError> {
    let mut points = Vec::new();
    match config {
        SpaceConfig::Base => {
            // No detector and no per-object header words: subtract the two
            // header words our heap always charges.
            let cfg = VmConfig::new(seed).with_instrument(InstrumentMode::Off);
            let mut det = NullDetector;
            let out = Vm::run(program, &mut det, &cfg)?;
            for s in &out.space_samples {
                let headers = 2 * WORD_BYTES * count_objects(s.heap_bytes);
                points.push(SpacePoint {
                    steps: s.steps,
                    heap_bytes: s.heap_bytes.saturating_sub(headers),
                    metadata_bytes: 0,
                });
            }
        }
        SpaceConfig::ObjectMetadataOnly => {
            let cfg = VmConfig::new(seed).with_instrument(InstrumentMode::Off);
            let mut det = NullDetector;
            let out = Vm::run(program, &mut det, &cfg)?;
            for s in &out.space_samples {
                points.push(SpacePoint {
                    steps: s.steps,
                    heap_bytes: s.heap_bytes,
                    metadata_bytes: 0,
                });
            }
        }
        SpaceConfig::Pacer { rate } => {
            let cfg = VmConfig::new(seed).with_sampling_rate(rate);
            let mut det = PacerDetector::new();
            Vm::run_with_probe(program, &mut det, &cfg, |d, s| {
                points.push(SpacePoint {
                    steps: s.steps,
                    heap_bytes: s.heap_bytes,
                    metadata_bytes: d.footprint_words() as u64 * WORD_BYTES,
                });
            })?;
        }
        SpaceConfig::FastTrack => {
            let cfg = VmConfig::new(seed);
            let mut det = FastTrackDetector::new();
            Vm::run_with_probe(program, &mut det, &cfg, |d, s| {
                points.push(SpacePoint {
                    steps: s.steps,
                    heap_bytes: s.heap_bytes,
                    metadata_bytes: d.footprint_words() as u64 * WORD_BYTES,
                });
            })?;
        }
        SpaceConfig::LiteRace { burst } => {
            let cfg = VmConfig::new(seed);
            let mut det = LiteRaceDetector::new(
                LiteRaceConfig {
                    burst_length: burst,
                    ..LiteRaceConfig::default()
                },
                seed,
            );
            Vm::run_with_probe(program, &mut det, &cfg, |d, s| {
                points.push(SpacePoint {
                    steps: s.steps,
                    heap_bytes: s.heap_bytes,
                    metadata_bytes: d.footprint_words() as u64 * WORD_BYTES,
                });
            })?;
        }
    }
    Ok(points)
}

/// Rough object count from heap bytes (objects dominate; used only to
/// subtract header words for the Base curve).
fn count_objects(heap_bytes: u64) -> u64 {
    heap_bytes / pacer_runtime::OBJECT_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_workloads::{eclipse, Scale};

    fn max_meta(points: &[SpacePoint]) -> u64 {
        points.iter().map(|p| p.metadata_bytes).max().unwrap_or(0)
    }

    #[test]
    fn pacer_space_scales_with_rate() {
        let program = eclipse(Scale::Small).compiled();
        let p0 = measure_space(&program, SpaceConfig::Pacer { rate: 0.0 }, 3).unwrap();
        let p25 = measure_space(&program, SpaceConfig::Pacer { rate: 0.25 }, 3).unwrap();
        let p100 = measure_space(&program, SpaceConfig::Pacer { rate: 1.0 }, 3).unwrap();
        assert!(!p0.is_empty() && !p100.is_empty());
        assert!(
            max_meta(&p25) > max_meta(&p0),
            "sampling must add metadata: {} vs {}",
            max_meta(&p25),
            max_meta(&p0)
        );
        assert!(
            max_meta(&p100) > max_meta(&p25),
            "more sampling, more metadata: {} vs {}",
            max_meta(&p100),
            max_meta(&p25)
        );
    }

    #[test]
    fn literace_space_is_near_full_even_when_sampling_little() {
        // Figure 10's LITERACE observation: code sampling does not shrink
        // metadata. Compare its metadata to PACER at a low rate.
        let program = eclipse(Scale::Small).compiled();
        let lr = measure_space(&program, SpaceConfig::LiteRace { burst: 10 }, 3).unwrap();
        let pacer = measure_space(&program, SpaceConfig::Pacer { rate: 0.05 }, 3).unwrap();
        let lr_meta = lr.iter().map(|p| p.metadata_bytes).max().unwrap();
        let pacer_meta = pacer.iter().map(|p| p.metadata_bytes).max().unwrap();
        assert!(
            lr_meta >= pacer_meta,
            "literace metadata {lr_meta} < pacer@5% {pacer_meta}"
        );
    }

    #[test]
    fn base_curve_has_no_metadata() {
        let program = eclipse(Scale::Test).compiled();
        let base = measure_space(&program, SpaceConfig::Base, 1).unwrap();
        for p in &base {
            assert_eq!(p.metadata_bytes, 0);
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(SpaceConfig::Base.label(), "base");
        assert!(SpaceConfig::Pacer { rate: 0.03 }.label().contains('3'));
    }
}
