//! Crash-resilient trial execution: retries, quarantine, and the
//! checkpoint/resume fleet engine.
//!
//! The deterministic engine in [`parallel`](crate::parallel) assumes
//! every trial closure returns; a panicking detector or an injected
//! allocator failure would otherwise take the whole campaign down and
//! lose every completed trial. This module wraps each trial attempt in
//! `catch_unwind`, retries failures a bounded, deterministic number of
//! times, and **quarantines** (rather than aborts on) trials that
//! exhaust their budget. Quarantine decisions depend only on
//! `(trial_index, attempt)` — never on worker identity or timing — so a
//! fault campaign's output is byte-identical at any `--jobs N`.
//!
//! [`run_resilient_fleet`] layers checkpointing on top: each completed
//! trial is appended to a [`journal`](crate::journal) as it finishes,
//! and a later run with the same configuration resumes from that
//! journal, re-running only the missing indices. Because per-trial
//! metrics round-trip through JSON exactly and merging happens in index
//! order, an interrupted-then-resumed run produces byte-identical
//! artifacts to an uninterrupted one.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;

use pacer_faults::{FaultPlan, FaultSite};
use pacer_governor::{BudgetKind, GovernorConfig, GovernorSummary};
use pacer_lang::ir::CompiledProgram;
use pacer_obs::{Event, EventRing, FaultCounters, GovernorCounters, Metrics};
use pacer_trace::SiteId;

use crate::fleet::{fleet_trial_seed, FleetReport};
use crate::journal::{
    read_journal, rewrite_valid_prefix, EntryFailure, JournalEntry, JournalError, JournalWriter,
};
use crate::observed::run_observed_trial_governed;
use crate::parallel::run_indexed;
use crate::trials::{run_trial_governed, DetectorKind, RaceKey};

/// How many times a failed trial is re-attempted before quarantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; a trial gets `max_retries + 1`
    /// attempts total.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// One retry: enough to get past single-shot injected faults while
    /// quarantining anything persistent quickly.
    fn default() -> Self {
        RetryPolicy { max_retries: 1 }
    }
}

/// The outcome of running one trial under a [`RetryPolicy`].
#[derive(Clone, Debug)]
pub struct Attempted<T> {
    /// The successful attempt's result; `None` when quarantined.
    pub result: Option<T>,
    /// Total attempts made (1 = clean first try).
    pub attempts: u32,
    /// Every failed attempt, in attempt order.
    pub failures: Vec<EntryFailure>,
}

impl<T> Attempted<T> {
    /// Whether the trial exhausted its budget.
    pub fn quarantined(&self) -> bool {
        self.result.is_none()
    }

    /// Failed attempts that carried the injected-fault marker.
    pub fn injected(&self) -> u64 {
        self.failures.iter().filter(|f| f.site.is_some()).count() as u64
    }
}

/// Runs `f` up to `policy.max_retries + 1` times, catching panics, until
/// it succeeds. Both `Err` returns and panics count as failed attempts;
/// each failure is classified by [`FaultSite::classify`] so injected
/// faults are distinguishable from organic bugs.
pub fn attempt_one<T>(
    policy: RetryPolicy,
    mut f: impl FnMut(u32) -> Result<T, String>,
) -> Attempted<T> {
    let mut failures = Vec::new();
    for attempt in 0..=policy.max_retries {
        let outcome = catch_unwind(AssertUnwindSafe(|| f(attempt)));
        let reason = match outcome {
            Ok(Ok(value)) => {
                return Attempted {
                    result: Some(value),
                    attempts: attempt + 1,
                    failures,
                }
            }
            Ok(Err(message)) => message,
            Err(payload) => panic_message(payload.as_ref()),
        };
        let site = FaultSite::classify(&reason).map(|s| s.name().to_string());
        failures.push(EntryFailure {
            attempt,
            reason,
            site,
        });
    }
    Attempted {
        result: None,
        attempts: policy.max_retries + 1,
        failures,
    }
}

/// Silences the global panic hook for the guard's lifetime, so planned
/// (injected) and organic trial panics — which [`attempt_one`] catches
/// and records in the quarantine report — do not spray backtraces on
/// stderr mid-campaign. Re-entrant across threads: a process-wide depth
/// count keeps the hook silenced until the last guard drops, then
/// restores the previous hook.
pub(crate) struct SilencePanics;

struct PanicSilenceState {
    depth: usize,
    prev: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>>,
}

static PANIC_SILENCE: Mutex<PanicSilenceState> = Mutex::new(PanicSilenceState {
    depth: 0,
    prev: None,
});

impl SilencePanics {
    pub(crate) fn new() -> Self {
        let mut state = PANIC_SILENCE.lock().unwrap_or_else(|p| p.into_inner());
        if state.depth == 0 {
            state.prev = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        state.depth += 1;
        SilencePanics
    }
}

impl Drop for SilencePanics {
    fn drop(&mut self) {
        let mut state = PANIC_SILENCE.lock().unwrap_or_else(|p| p.into_inner());
        state.depth -= 1;
        if state.depth == 0 {
            if let Some(prev) = state.prev.take() {
                std::panic::set_hook(prev);
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `count` trials through [`attempt_one`] on the deterministic
/// parallel engine; results are in trial-index order regardless of the
/// job count.
pub fn run_attempts<T: Send>(
    count: usize,
    policy: RetryPolicy,
    f: impl Fn(usize, u32) -> Result<T, String> + Sync,
) -> Vec<Attempted<T>> {
    run_indexed(count, |index| {
        attempt_one(policy, |attempt| f(index, attempt))
    })
}

/// One quarantined trial, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedTrial {
    /// The trial's instance index.
    pub index: u64,
    /// The scheduler seed it ran with (for reproduction).
    pub seed: u64,
    /// Attempts consumed (1 + retries).
    pub attempts: u32,
    /// The final failure message.
    pub reason: String,
    /// Classified fault site, when the failure was injected.
    pub site: Option<String>,
}

/// Every quarantined trial plus the campaign's fault counters, merged in
/// trial-index order.
#[derive(Clone, Debug, Default)]
pub struct QuarantineReport {
    /// Quarantined trials, ascending by index.
    pub trials: Vec<QuarantinedTrial>,
    /// Aggregate fault accounting for the whole campaign.
    pub counters: FaultCounters,
}

impl QuarantineReport {
    /// Whether the campaign completed without quarantining anything.
    pub fn is_clean(&self) -> bool {
        self.trials.is_empty()
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        writeln!(
            f,
            "faults: injected={} hit={} retried={} quarantined={}",
            c.injected, c.hit, c.retried, c.quarantined
        )?;
        for t in &self.trials {
            writeln!(
                f,
                "quarantined trial {} (seed {}, {} attempts, site {}): {}",
                t.index,
                t.seed,
                t.attempts,
                t.site.as_deref().unwrap_or("none"),
                t.reason
            )?;
        }
        Ok(())
    }
}

/// One trial the resource governor degraded, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradedTrial {
    /// The trial's instance index.
    pub index: u64,
    /// The scheduler seed it ran with (for reproduction).
    pub seed: u64,
    /// Sampling rate in effect when the trial ended, in millionths.
    pub final_rate_millionths: u32,
    /// Set when the trial was cancelled cooperatively at the ladder
    /// floor (by which budget); `None` means it finished at a reduced
    /// rate.
    pub cancelled: Option<BudgetKind>,
}

/// Every degraded trial plus the campaign's governor counters, merged in
/// trial-index order — the governed counterpart of [`QuarantineReport`].
#[derive(Clone, Debug, Default)]
pub struct GovernorReport {
    /// Degraded trials, ascending by index.
    pub trials: Vec<DegradedTrial>,
    /// Aggregate governor accounting for the whole campaign.
    pub counters: GovernorCounters,
}

impl GovernorReport {
    /// Whether the governor never had to degrade anything.
    pub fn is_clean(&self) -> bool {
        self.trials.is_empty()
    }

    /// Whether any trial was cancelled at the ladder floor (as opposed
    /// to merely finishing at a reduced rate).
    pub fn any_cancelled(&self) -> bool {
        self.counters.cancelled > 0
    }
}

impl fmt::Display for GovernorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        writeln!(
            f,
            "governor: steps_down={} steps_up={} breaches={} degraded={} cancelled={}",
            c.steps_down, c.steps_up, c.breaches, c.degraded, c.cancelled
        )?;
        for t in &self.trials {
            match t.cancelled {
                Some(kind) => writeln!(
                    f,
                    "degraded trial {} (seed {}): cancelled at floor rate {} by {} budget",
                    t.index,
                    t.seed,
                    t.final_rate_millionths,
                    kind.name()
                )?,
                None => writeln!(
                    f,
                    "degraded trial {} (seed {}): finished at reduced rate {} millionths",
                    t.index, t.seed, t.final_rate_millionths
                )?,
            }
        }
        Ok(())
    }
}

/// Deterministic backoff schedule for artifact-IO retries: how many
/// cooperative yields to spin before attempt `attempt` of trial
/// `trial_index`'s artifact write. The schedule depends only on
/// `(trial_index, attempt)` — never on wall-clock or worker identity —
/// so retried campaigns stay byte-identical at any `--jobs N`. The base
/// delay doubles per attempt; the trial index staggers neighbours so
/// simultaneous retries don't re-collide on a shared sink.
pub fn artifact_io_backoff(trial_index: u64, attempt: u32) -> u32 {
    if attempt == 0 {
        return 0;
    }
    let base = 1u32 << attempt.min(10);
    base + (trial_index % 7) as u32
}

/// Runs `write` (an artifact-IO action for trial `trial_index`) up to
/// `policy.max_retries + 1` times under the deterministic
/// [`artifact_io_backoff`] schedule, yielding the scheduled number of
/// times before each retry. Returns the first success, or every
/// failure's description — the caller quarantines the artifact exactly
/// like a trial that exhausted its budget.
///
/// # Errors
///
/// The failure reason of every attempt, in attempt order, when all
/// attempts fail.
pub fn retry_artifact_io<T>(
    policy: RetryPolicy,
    trial_index: u64,
    mut write: impl FnMut(u32) -> io::Result<T>,
) -> Result<(T, u32), Vec<String>> {
    let mut reasons = Vec::new();
    for attempt in 0..=policy.max_retries {
        for _ in 0..artifact_io_backoff(trial_index, attempt) {
            std::thread::yield_now();
        }
        match write(attempt) {
            Ok(value) => return Ok((value, attempt + 1)),
            Err(e) => reasons.push(e.to_string()),
        }
    }
    Err(reasons)
}

/// A hard engine failure (journal IO/corruption, configuration
/// mismatch) — distinct from quarantines, which are recoverable.
#[derive(Debug)]
pub struct EngineError {
    /// What failed.
    pub message: String,
}

impl EngineError {
    fn new(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for EngineError {}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> Self {
        EngineError::new(e.to_string())
    }
}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::new(format!("journal I/O error: {e}"))
    }
}

/// Configuration for [`run_resilient_fleet`].
#[derive(Clone, Copy, Debug)]
pub struct FleetEngineConfig<'a> {
    /// The workload.
    pub program: &'a CompiledProgram,
    /// Fleet size.
    pub instances: u32,
    /// PACER sampling rate per instance.
    pub rate: f64,
    /// Base scheduler seed; instance `i` runs with
    /// [`fleet_trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Retry budget per trial.
    pub policy: RetryPolicy,
    /// The armed fault plan, if any.
    pub plan: Option<&'a FaultPlan>,
    /// `Some(ring_capacity)` runs observed trials (metrics + event
    /// trace); `None` runs plain trials.
    pub ring_capacity: Option<usize>,
    /// Journal to append completed trials to.
    pub checkpoint: Option<&'a Path>,
    /// Journal to resume completed trials from. A missing file is a
    /// fresh start, not an error.
    pub resume: Option<&'a Path>,
    /// The armed resource governor, if any: budgets checked at GC
    /// boundaries, sampling rate stepped down a ladder under pressure.
    pub governor: Option<&'a GovernorConfig>,
}

/// What a resilient fleet run produced.
#[derive(Clone, Debug)]
pub struct ResilientFleet {
    /// The fleet report over the non-quarantined instances.
    pub report: FleetReport,
    /// Merged metrics snapshot (observed runs only).
    pub metrics: Option<Metrics>,
    /// Concatenated event traces in instance order, with fault events
    /// interleaved after each trial's own events (observed runs only).
    pub events_jsonl: Option<String>,
    /// Quarantines and fault accounting.
    pub quarantine: QuarantineReport,
    /// Degraded trials and governor accounting.
    pub governor: GovernorReport,
    /// How many instances were restored from the resume journal.
    pub resumed: u32,
}

/// What one completed trial contributes to the merge, whether it came
/// from a fresh run or the resume journal.
struct CompletedTrial {
    races: Vec<RaceKey>,
    metrics: Option<Metrics>,
    events_jsonl: Option<String>,
    attempts: u32,
    failures: Vec<EntryFailure>,
    quarantined: bool,
    governor: Option<GovernorSummary>,
}

/// The crash-resilient, checkpointing fleet engine: [`simulate_fleet`]
/// (or its observed variant) with retries, quarantine, fault injection,
/// and resume. With no plan, no quarantines, and no journal, the report
/// is identical to the plain engines'.
///
/// [`simulate_fleet`]: crate::fleet::simulate_fleet
///
/// # Errors
///
/// Hard failures only: journal IO errors, mid-file journal corruption,
/// or a journal that does not match this run's configuration. Trial
/// failures never surface here — they are quarantined.
pub fn run_resilient_fleet(cfg: &FleetEngineConfig<'_>) -> Result<ResilientFleet, EngineError> {
    let _quiet = SilencePanics::new();
    let total = cfg.instances as u64;

    // 1. Load completed trials from the resume journal.
    let mut resumed: BTreeMap<u64, JournalEntry> = BTreeMap::new();
    if let Some(path) = cfg.resume {
        if path.exists() {
            let contents = read_journal(path)?;
            for (i, line) in contents.lines.iter().enumerate() {
                let entry = JournalEntry::decode(line)
                    .map_err(|e| EngineError::new(format!("journal entry {}: {e}", i + 1)))?;
                if entry.index >= total {
                    return Err(EngineError::new(format!(
                        "journal entry {} has index {} but the fleet has {} instance(s); \
                         wrong journal for this configuration",
                        i + 1,
                        entry.index,
                        total
                    )));
                }
                if entry.seed != fleet_trial_seed(cfg.base_seed, entry.index) {
                    return Err(EngineError::new(format!(
                        "journal entry for trial {} was recorded with seed {}, but this run \
                         would use seed {}; wrong journal for this configuration",
                        entry.index,
                        entry.seed,
                        fleet_trial_seed(cfg.base_seed, entry.index)
                    )));
                }
                if cfg.ring_capacity.is_some() && !entry.quarantined && entry.metrics_json.is_none()
                {
                    return Err(EngineError::new(format!(
                        "journal entry for trial {} has no metrics snapshot; it was recorded \
                         without observability and cannot resume an observed run",
                        entry.index
                    )));
                }
                resumed.insert(entry.index, entry);
            }
        }
    }
    let resumed_count = resumed.len() as u32;

    // 2. Open the checkpoint journal. When resuming (or recovering from
    // a partial tail) the file is first rewritten to exactly the valid
    // entries — appending after leftover partial bytes would corrupt the
    // next line.
    let writer: Option<Mutex<JournalWriter>> = match cfg.checkpoint {
        None => None,
        Some(path) => {
            let w = if resumed.is_empty() {
                JournalWriter::create(path)?
            } else {
                let lines: Vec<String> = resumed.values().map(JournalEntry::encode).collect();
                rewrite_valid_prefix(path, &lines)?;
                JournalWriter::append(path)?
            };
            Some(Mutex::new(w))
        }
    };

    // 3. Run the missing indices on the deterministic parallel engine,
    // checkpointing each trial as it completes. Journal append order is
    // scheduling-dependent, but entries carry their index, so the resume
    // and merge paths are order-independent.
    let pending: Vec<u64> = (0..total).filter(|i| !resumed.contains_key(i)).collect();
    let journal_failure: Mutex<Option<io::Error>> = Mutex::new(None);
    let fresh = run_indexed(pending.len(), |slot| {
        let index = pending[slot];
        let seed = fleet_trial_seed(cfg.base_seed, index);
        let attempted = attempt_one(cfg.policy, |attempt| {
            let faults = cfg
                .plan
                .map(|p| p.for_trial(index, attempt))
                .unwrap_or_default();
            let kind = DetectorKind::Pacer { rate: cfg.rate };
            match cfg.ring_capacity {
                Some(ring) => {
                    run_observed_trial_governed(cfg.program, kind, seed, ring, faults, cfg.governor)
                        .map(|t| CompletedTrial {
                            races: t.distinct_races.iter().copied().collect(),
                            metrics: Some(t.metrics),
                            events_jsonl: Some(t.events_jsonl),
                            attempts: 0,
                            failures: Vec::new(),
                            quarantined: false,
                            governor: t.governor,
                        })
                        .map_err(|e| e.to_string())
                }
                None => run_trial_governed(cfg.program, kind, seed, faults, cfg.governor)
                    .map(|t| CompletedTrial {
                        races: t.distinct_races.iter().copied().collect(),
                        metrics: None,
                        events_jsonl: None,
                        attempts: 0,
                        failures: Vec::new(),
                        quarantined: false,
                        governor: t.outcome.governor,
                    })
                    .map_err(|e| e.to_string()),
            }
        });
        if let Some(writer) = &writer {
            let entry = entry_for(&attempted, index, seed);
            let result = writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .write_line(&entry.encode());
            if let Err(e) = result {
                let mut slot = journal_failure
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        attempted
    });
    if let Some(e) = journal_failure
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        return Err(e.into());
    }

    // 4. Merge resumed + fresh trials in index order.
    let mut fresh_by_index: BTreeMap<u64, Attempted<CompletedTrial>> =
        pending.into_iter().zip(fresh).collect();
    let mut reporters: BTreeMap<RaceKey, u32> = BTreeMap::new();
    let mut cumulative = Vec::with_capacity(cfg.instances as usize);
    let mut metrics = cfg.ring_capacity.map(|_| Metrics::default());
    let mut events_jsonl = cfg.ring_capacity.map(|_| String::new());
    let mut quarantine = QuarantineReport::default();
    let mut governor = GovernorReport::default();

    for index in 0..total {
        let seed = fleet_trial_seed(cfg.base_seed, index);
        let trial = if let Some(entry) = resumed.remove(&index) {
            completed_from_entry(entry)?
        } else {
            let attempted = fresh_by_index
                .remove(&index)
                .ok_or_else(|| EngineError::new("internal: missing trial result"))?;
            completed_from_attempted(attempted)
        };

        let injected = trial.failures.iter().filter(|f| f.site.is_some()).count() as u64;
        quarantine.counters.injected += injected;
        if injected > 0 {
            quarantine.counters.hit += 1;
        }
        quarantine.counters.retried += u64::from(trial.attempts.saturating_sub(1));
        if trial.quarantined {
            quarantine.counters.quarantined += 1;
            let last = trial.failures.last();
            quarantine.trials.push(QuarantinedTrial {
                index,
                seed,
                attempts: trial.attempts,
                reason: last
                    .map(|f| f.reason.clone())
                    .unwrap_or_else(|| "unknown failure".to_string()),
                site: last.and_then(|f| f.site.clone()),
            });
        }

        let degraded = trial.governor.as_ref().filter(|g| g.degraded());
        if let Some(g) = trial.governor.as_ref() {
            governor.counters.steps_down += g.steps_down;
            governor.counters.steps_up += g.steps_up;
            governor.counters.breaches += g.breaches;
        }
        if let Some(g) = degraded {
            governor.counters.degraded += 1;
            if g.cancelled.is_some() {
                governor.counters.cancelled += 1;
            }
            governor.trials.push(DegradedTrial {
                index,
                seed,
                final_rate_millionths: g.final_rate_millionths,
                cancelled: g.cancelled,
            });
        }

        for key in &trial.races {
            *reporters.entry(*key).or_default() += 1;
        }
        cumulative.push(reporters.len());

        if let (Some(merged), Some(m)) = (metrics.as_mut(), trial.metrics.as_ref()) {
            merged.merge(m);
        }
        if let Some(out) = events_jsonl.as_mut() {
            if let Some(ev) = trial.events_jsonl.as_ref() {
                out.push_str(ev);
            }
            if !trial.failures.is_empty() || degraded.is_some() {
                let mut ring = EventRing::new(trial.failures.len() + 2);
                for f in &trial.failures {
                    if let Some(site) = &f.site {
                        ring.push(Event::FaultInjected {
                            site: site.clone(),
                            trial: index,
                            attempt: u64::from(f.attempt),
                        });
                    }
                }
                if trial.quarantined {
                    ring.push(Event::TrialQuarantined {
                        trial: index,
                        attempts: u64::from(trial.attempts),
                        site: trial.failures.last().and_then(|f| f.site.clone()),
                    });
                }
                if let Some(g) = degraded {
                    ring.push(Event::TrialDegraded {
                        trial: index,
                        final_rate_millionths: u64::from(g.final_rate_millionths),
                        cancelled: g.cancelled.map(|k| k.name().to_string()),
                    });
                }
                out.push_str(&ring.to_jsonl());
            }
        }
    }

    // Per-trial snapshots never carry fault or governor counters (both
    // are campaign-level concepts), so the merged snapshot takes the
    // deterministic campaign totals.
    if let Some(m) = metrics.as_mut() {
        m.faults = quarantine.counters;
        m.governor = governor.counters;
    }

    Ok(ResilientFleet {
        report: FleetReport {
            instances: cfg.instances,
            rate: cfg.rate,
            reporters,
            cumulative,
        },
        metrics,
        events_jsonl,
        quarantine,
        governor,
        resumed: resumed_count,
    })
}

fn entry_for(attempted: &Attempted<CompletedTrial>, index: u64, seed: u64) -> JournalEntry {
    let mut races: Vec<(u32, u32)> = Vec::new();
    let mut metrics_json = None;
    let mut events_jsonl = None;
    let mut governor = None;
    if let Some(trial) = &attempted.result {
        let keys: BTreeSet<RaceKey> = trial.races.iter().copied().collect();
        races = keys.iter().map(|(a, b)| (a.raw(), b.raw())).collect();
        metrics_json = trial.metrics.as_ref().map(Metrics::to_json);
        events_jsonl = trial.events_jsonl.clone();
        // Notes stay out of the journal: the trial's event trace above
        // already carries them as replayed rate_stepped/budget_breach
        // lines.
        governor = trial.governor.as_ref().map(|g| GovernorSummary {
            notes: Vec::new(),
            ..g.clone()
        });
    }
    JournalEntry {
        index,
        seed,
        races,
        attempts: attempted.attempts,
        failures: attempted.failures.clone(),
        quarantined: attempted.quarantined(),
        metrics_json,
        events_jsonl,
        governor,
    }
}

fn completed_from_attempted(attempted: Attempted<CompletedTrial>) -> CompletedTrial {
    let quarantined = attempted.quarantined();
    let mut trial = attempted.result.unwrap_or(CompletedTrial {
        races: Vec::new(),
        metrics: None,
        events_jsonl: None,
        attempts: 0,
        failures: Vec::new(),
        quarantined: true,
        governor: None,
    });
    trial.attempts = attempted.attempts;
    trial.failures = attempted.failures;
    trial.quarantined = quarantined;
    trial
}

fn completed_from_entry(entry: JournalEntry) -> Result<CompletedTrial, EngineError> {
    let metrics = match &entry.metrics_json {
        None => None,
        Some(json) => Some(Metrics::from_json(json).map_err(|e| {
            EngineError::new(format!(
                "journal entry for trial {}: checkpointed metrics unreadable: {e}",
                entry.index
            ))
        })?),
    };
    Ok(CompletedTrial {
        races: entry
            .races
            .iter()
            .map(|&(a, b)| (SiteId::new(a), SiteId::new(b)))
            .collect(),
        metrics,
        events_jsonl: entry.events_jsonl,
        attempts: entry.attempts,
        failures: entry.failures,
        quarantined: entry.quarantined,
        governor: entry.governor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::simulate_fleet;
    use crate::observed::simulate_fleet_observed;
    use pacer_workloads::{hsqldb, Scale};

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pacer-resilient-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("fleet.journal")
    }

    #[test]
    fn attempt_one_retries_then_succeeds() {
        let a = attempt_one(RetryPolicy { max_retries: 2 }, |attempt| {
            if attempt < 2 {
                Err(format!("injected: detector panic (attempt {attempt})"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(a.result, Some(2));
        assert_eq!(a.attempts, 3);
        assert_eq!(a.failures.len(), 2);
        assert_eq!(a.injected(), 2);
        assert_eq!(a.failures[0].site.as_deref(), Some("detector_panic"));
    }

    #[test]
    fn attempt_one_catches_panics_and_quarantines() {
        let a: Attempted<()> = attempt_one(RetryPolicy { max_retries: 1 }, |_| {
            panic!("organic bug: index out of bounds")
        });
        assert!(a.quarantined());
        assert_eq!(a.attempts, 2);
        assert_eq!(a.injected(), 0, "organic failures are not injected");
        assert!(a.failures[0].reason.contains("index out of bounds"));
        assert_eq!(a.failures[0].site, None);
    }

    #[test]
    fn run_attempts_results_are_in_index_order_at_any_job_count() {
        let run = || {
            run_attempts(12, RetryPolicy { max_retries: 1 }, |index, attempt| {
                if index % 3 == 0 && attempt == 0 {
                    Err("injected: heap OOM budget of 1 bytes exceeded".to_string())
                } else if index % 5 == 0 && index > 0 {
                    Err("persistent failure".to_string())
                } else {
                    Ok(index * 10)
                }
            })
        };
        let seq = run();
        let results: Vec<(Option<usize>, u32)> =
            seq.iter().map(|a| (a.result, a.attempts)).collect();
        assert_eq!(results[0], (Some(0), 2), "index 0 retried once");
        assert_eq!(results[1], (Some(10), 1));
        assert_eq!(results[5], (None, 2), "index 5 quarantined");
        assert_eq!(results[10], (None, 2), "index 10 quarantined");
        assert_eq!(seq.iter().map(Attempted::injected).sum::<u64>(), 4);
    }

    #[test]
    fn clean_resilient_fleet_matches_plain_engines() {
        let program = hsqldb(Scale::Test).compiled();
        let plain = simulate_fleet(&program, 6, 0.25, 3).unwrap();
        let (obs_report, obs_metrics, obs_events) =
            simulate_fleet_observed(&program, 6, 0.25, 3, 1024).unwrap();

        let cfg = FleetEngineConfig {
            program: &program,
            instances: 6,
            rate: 0.25,
            base_seed: 3,
            policy: RetryPolicy::default(),
            plan: None,
            ring_capacity: None,
            checkpoint: None,
            resume: None,
            governor: None,
        };
        let plain_res = run_resilient_fleet(&cfg).unwrap();
        assert_eq!(plain_res.report.reporters, plain.reporters);
        assert_eq!(plain_res.report.cumulative, plain.cumulative);
        assert!(plain_res.quarantine.is_clean());

        let obs_cfg = FleetEngineConfig {
            ring_capacity: Some(1024),
            ..cfg
        };
        let obs_res = run_resilient_fleet(&obs_cfg).unwrap();
        assert_eq!(obs_res.report.reporters, obs_report.reporters);
        assert_eq!(
            obs_res.metrics.as_ref().unwrap().to_json(),
            obs_metrics.to_json(),
            "clean resilient run's metrics are byte-identical to the plain engine's"
        );
        assert_eq!(obs_res.events_jsonl.as_deref(), Some(obs_events.as_str()));
    }

    #[test]
    fn fault_campaign_quarantines_deterministically() {
        let program = hsqldb(Scale::Test).compiled();
        // Panic every 3rd trial's detector on every attempt: those trials
        // exhaust retries and quarantine; the rest are untouched.
        let plan = FaultPlan::parse("detector-panic every=3\n").unwrap();
        let cfg = FleetEngineConfig {
            program: &program,
            instances: 9,
            rate: 0.25,
            base_seed: 3,
            policy: RetryPolicy { max_retries: 1 },
            plan: Some(&plan),
            ring_capacity: Some(1024),
            checkpoint: None,
            resume: None,
            governor: None,
        };
        let r = run_resilient_fleet(&cfg).unwrap();
        assert_eq!(r.quarantine.counters.quarantined, 3, "trials 0, 3, 6");
        assert_eq!(r.quarantine.counters.retried, 3, "one retry each");
        assert_eq!(
            r.quarantine.counters.injected, 6,
            "two failed attempts each"
        );
        assert_eq!(r.quarantine.counters.hit, 3);
        let indices: Vec<u64> = r.quarantine.trials.iter().map(|t| t.index).collect();
        assert_eq!(indices, vec![0, 3, 6]);
        for t in &r.quarantine.trials {
            assert_eq!(t.site.as_deref(), Some("detector_panic"));
        }
        let m = r.metrics.as_ref().unwrap();
        assert_eq!(m.faults, r.quarantine.counters);
        assert_eq!(
            m.runtime.trials, 6,
            "quarantined trials contribute no metrics"
        );
        let events = r.events_jsonl.as_deref().unwrap();
        assert_eq!(events.matches("\"ev\":\"fault_injected\"").count(), 6);
        assert_eq!(events.matches("\"ev\":\"trial_quarantined\"").count(), 3);
    }

    #[test]
    fn checkpoint_and_resume_are_byte_identical() {
        let program = hsqldb(Scale::Test).compiled();
        let plan = FaultPlan::parse("detector-panic every=4 limit=1\n").unwrap();
        let base = FleetEngineConfig {
            program: &program,
            instances: 8,
            rate: 0.25,
            base_seed: 3,
            policy: RetryPolicy { max_retries: 2 },
            plan: Some(&plan),
            ring_capacity: Some(1024),
            checkpoint: None,
            resume: None,
            governor: None,
        };

        // Uninterrupted run: the reference output.
        let full = run_resilient_fleet(&base).unwrap();

        // Interrupted run: checkpoint, truncate the journal mid-file
        // (simulating a crash), then resume.
        let path = temp_journal("resume");
        let _ = std::fs::remove_file(&path);
        let interrupted = FleetEngineConfig {
            checkpoint: Some(&path),
            ..base
        };
        run_resilient_fleet(&interrupted).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let resumed_cfg = FleetEngineConfig {
            checkpoint: Some(&path),
            resume: Some(&path),
            ..base
        };
        let resumed = run_resilient_fleet(&resumed_cfg).unwrap();
        assert!(resumed.resumed > 0, "some trials came from the journal");
        assert!(
            (resumed.resumed as u32) < 8,
            "truncation lost some trials, which were re-run"
        );

        assert_eq!(resumed.report.reporters, full.report.reporters);
        assert_eq!(resumed.report.cumulative, full.report.cumulative);
        assert_eq!(
            resumed.metrics.as_ref().unwrap().to_json(),
            full.metrics.as_ref().unwrap().to_json(),
            "resumed metrics snapshot is byte-identical"
        );
        assert_eq!(resumed.events_jsonl, full.events_jsonl);
        assert_eq!(resumed.quarantine.trials, full.quarantine.trials);

        // The journal is now complete; resuming again runs nothing new
        // and still reproduces the same artifacts.
        let replay = run_resilient_fleet(&resumed_cfg).unwrap();
        assert_eq!(replay.resumed, 8);
        assert_eq!(
            replay.metrics.as_ref().unwrap().to_json(),
            full.metrics.as_ref().unwrap().to_json()
        );
        assert_eq!(replay.events_jsonl, full.events_jsonl);
    }

    #[test]
    fn artifact_io_backoff_depends_only_on_inputs() {
        // First attempt never waits; retries double and stagger by trial.
        assert_eq!(artifact_io_backoff(0, 0), 0);
        assert_eq!(artifact_io_backoff(5, 0), 0);
        assert_eq!(artifact_io_backoff(0, 1), 2);
        assert_eq!(artifact_io_backoff(0, 2), 4);
        assert_eq!(artifact_io_backoff(3, 1), 2 + 3);
        assert_eq!(artifact_io_backoff(7, 1), 2, "stagger wraps mod 7");
        // The exponential base caps at 2^10 for absurd attempt counts.
        assert_eq!(artifact_io_backoff(0, 30), 1 << 10);
        // Pure function of (trial, attempt): repeat calls agree.
        assert_eq!(artifact_io_backoff(11, 4), artifact_io_backoff(11, 4));
    }

    #[test]
    fn retry_artifact_io_returns_first_success_or_all_reasons() {
        let policy = RetryPolicy { max_retries: 2 };
        let ok = retry_artifact_io(policy, 4, |attempt| {
            if attempt < 2 {
                Err(io::Error::other(format!("transient (attempt {attempt})")))
            } else {
                Ok(attempt * 10)
            }
        });
        assert_eq!(ok.unwrap(), (20, 3), "succeeded on the third attempt");

        let err: Result<((), u32), _> = retry_artifact_io(policy, 4, |attempt| {
            Err(io::Error::other(format!("disk full (attempt {attempt})")))
        });
        let reasons = err.unwrap_err();
        assert_eq!(reasons.len(), 3, "every attempt's reason is kept");
        assert!(reasons[2].contains("attempt 2"));
    }

    #[test]
    fn governed_checkpoint_resume_is_byte_identical() {
        // Heavy enough to cross several full-GC boundaries (one per
        // ~16 KiB allocated), so a tight metadata budget actually walks
        // the rate ladder and the journaled trials carry governor
        // summaries and replayed rate_stepped events.
        let src = "
            shared x;
            fn w() {
                let i = 0;
                while (i < 800) {
                    let o = new obj;
                    o.f = i;
                    x = x + 1;
                    i = i + 1;
                }
            }
            fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
        ";
        let program = pacer_lang::compile(&pacer_lang::parse(src).unwrap()).unwrap();
        let mut governor = GovernorConfig::for_rate(0.25);
        governor.mem_budget_bytes = Some(128);
        let base = FleetEngineConfig {
            program: &program,
            instances: 6,
            rate: 0.25,
            base_seed: 5,
            policy: RetryPolicy::default(),
            plan: None,
            ring_capacity: Some(1024),
            checkpoint: None,
            resume: None,
            governor: Some(&governor),
        };

        let full = run_resilient_fleet(&base).unwrap();
        assert!(full.quarantine.is_clean());
        assert!(
            full.governor.counters.steps_down > 0,
            "metadata pressure stepped the rate: {:?}",
            full.governor.counters
        );
        assert!(!full.governor.trials.is_empty());

        let path = temp_journal("governed-resume");
        let _ = std::fs::remove_file(&path);
        let interrupted = FleetEngineConfig {
            checkpoint: Some(&path),
            ..base
        };
        run_resilient_fleet(&interrupted).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let resumed_cfg = FleetEngineConfig {
            checkpoint: Some(&path),
            resume: Some(&path),
            ..base
        };
        let resumed = run_resilient_fleet(&resumed_cfg).unwrap();
        assert!(resumed.resumed > 0);
        assert_eq!(
            resumed.governor.trials, full.governor.trials,
            "degraded-trial report survives resume"
        );
        assert_eq!(resumed.governor.counters, full.governor.counters);
        assert_eq!(
            resumed.metrics.as_ref().unwrap().to_json(),
            full.metrics.as_ref().unwrap().to_json(),
            "governed metrics snapshot is byte-identical after resume"
        );
        assert_eq!(
            resumed.events_jsonl, full.events_jsonl,
            "replayed governor events are byte-identical after resume"
        );
    }

    #[test]
    fn mismatched_journal_is_a_hard_error() {
        let program = hsqldb(Scale::Test).compiled();
        let path = temp_journal("mismatch");
        let _ = std::fs::remove_file(&path);
        let cfg = FleetEngineConfig {
            program: &program,
            instances: 4,
            rate: 0.25,
            base_seed: 3,
            policy: RetryPolicy::default(),
            plan: None,
            ring_capacity: None,
            checkpoint: Some(&path),
            resume: None,
            governor: None,
        };
        run_resilient_fleet(&cfg).unwrap();

        // Wrong base seed → seed mismatch.
        let wrong_seed = FleetEngineConfig {
            base_seed: 4,
            resume: Some(&path),
            ..cfg
        };
        let err = run_resilient_fleet(&wrong_seed).unwrap_err();
        assert!(err.message.contains("seed"), "{err}");

        // Smaller fleet → index out of range.
        let wrong_size = FleetEngineConfig {
            instances: 2,
            resume: Some(&path),
            ..cfg
        };
        let err = run_resilient_fleet(&wrong_size).unwrap_err();
        assert!(err.message.contains("instance"), "{err}");

        // Observed resume from a plain journal → missing metrics.
        let wants_metrics = FleetEngineConfig {
            ring_capacity: Some(1024),
            resume: Some(&path),
            ..cfg
        };
        let err = run_resilient_fleet(&wants_metrics).unwrap_err();
        assert!(err.message.contains("metrics"), "{err}");
    }
}
