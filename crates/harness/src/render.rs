//! Plain-text rendering of tables and figure data series.

use std::fmt::Write as _;

/// Renders an aligned ASCII table. The first row is the header.
///
/// # Examples
///
/// ```
/// let text = pacer_harness::render::table(
///     &["program", "races"],
///     &[vec!["eclipse".into(), "77".into()]],
/// );
/// assert!(text.contains("program"));
/// assert!(text.contains("eclipse"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:>pad$}  ");
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    render_row(&mut out, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders one data series of a figure as `x<TAB>y` rows under a title —
/// directly plottable, and diffable in CI.
pub fn series(title: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.6}\t{y:.6}");
    }
    out
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a slowdown factor ("1.52x").
pub fn slowdown(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a large count with thousands separators ("14,170K" style used
/// by Table 3 when `k` is set).
pub fn count(n: u64, k: bool) -> String {
    let n = if k { n / 1000 } else { n };
    let s = n.to_string();
    let mut grouped = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(c);
    }
    if k {
        grouped.push('K');
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn series_is_tab_separated() {
        let s = series("fig3 eclipse", &[(0.01, 0.012), (0.03, 0.031)]);
        assert!(s.starts_with("# fig3 eclipse\n"));
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("0.010000\t0.012000"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.523), "52.3%");
        assert_eq!(slowdown(1.5), "1.50x");
        assert_eq!(count(14_170_000, true), "14,170K");
        assert_eq!(count(1234, false), "1,234");
        assert_eq!(count(5, false), "5");
    }
}
