//! Workload characterization: Tables 1, 2, and 3.

use pacer_core::PacerStats;
use pacer_lang::ir::CompiledProgram;
use pacer_runtime::VmError;

use crate::detection::RaceCensus;
use crate::parallel::try_run_indexed;
use crate::trials::{run_trial, DetectorKind};

/// One row of Table 1: effective vs. specified sampling rates.
#[derive(Clone, Debug)]
pub struct EffectiveRateRow {
    /// Specified (target) rate.
    pub specified: f64,
    /// Mean effective rate over the trials.
    pub mean: f64,
    /// Standard deviation of the effective rate.
    pub std_dev: f64,
    /// Trials measured.
    pub trials: u32,
}

/// Measures effective sampling rates for one specified rate (Table 1).
///
/// # Errors
///
/// Propagates the first VM error.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn effective_rates(
    program: &CompiledProgram,
    specified: f64,
    trials: u32,
    base_seed: u64,
) -> Result<EffectiveRateRow, VmError> {
    assert!(trials > 0, "need at least one trial");
    let rates: Vec<f64> = try_run_indexed(trials as usize, |i| {
        run_trial(
            program,
            DetectorKind::Pacer { rate: specified },
            base_seed + 31 * i as u64,
        )
        .map(|r| r.effective_rate.unwrap_or(0.0))
    })?;
    Ok(EffectiveRateRow {
        specified,
        mean: crate::math::mean(&rates),
        std_dev: crate::math::std_dev(&rates),
        trials,
    })
}

/// One row of Table 2: thread counts and race counts at occurrence
/// thresholds.
#[derive(Clone, Debug)]
pub struct ThreadsAndRacesRow {
    /// Threads started (Table 2 "Total").
    pub threads_total: usize,
    /// Maximum live threads (Table 2 "Max live").
    pub max_live: usize,
    /// Distinct races seen in ≥ 1 of the full-rate trials.
    pub races_ge1: usize,
    /// Distinct races seen in ≥ 5 trials.
    pub races_ge5: usize,
    /// Distinct races seen in ≥ half the trials (the ≥ 25-of-50 column).
    pub races_ge_half: usize,
    /// Full-rate trials run.
    pub trials: u32,
}

/// Computes Table 2's row for a program from a full-rate census plus one
/// instrumented run for thread counts.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn threads_and_races(
    program: &CompiledProgram,
    census: &RaceCensus,
    seed: u64,
) -> Result<ThreadsAndRacesRow, VmError> {
    let probe = run_trial(program, DetectorKind::Uninstrumented, seed)?;
    Ok(ThreadsAndRacesRow {
        threads_total: probe.outcome.threads_started,
        max_live: probe.outcome.max_live_threads,
        races_ge1: census.races_with_at_least(1).len(),
        races_ge5: census.races_with_at_least(5.min(census.trials)).len(),
        races_ge_half: census.evaluation_races().len(),
        trials: census.trials,
    })
}

/// Table 3's data: PACER operation counts averaged over trials at one rate.
///
/// # Errors
///
/// Propagates the first VM error.
///
/// # Panics
///
/// Panics if `trials == 0`, or if a PACER trial fails to return stats
/// (impossible with [`DetectorKind::Pacer`]).
pub fn operation_counts(
    program: &CompiledProgram,
    rate: f64,
    trials: u32,
    base_seed: u64,
) -> Result<PacerStats, VmError> {
    assert!(trials > 0, "need at least one trial");
    let per_trial = try_run_indexed(trials as usize, |i| {
        run_trial(
            program,
            DetectorKind::Pacer { rate },
            base_seed + 17 * i as u64,
        )
        .map(|r| r.pacer_stats.expect("pacer trial has stats"))
    })?;
    let mut total = PacerStats::default();
    for stats in per_trial {
        total += stats;
    }
    // Report per-trial averages by dividing the counters.
    Ok(scale_stats(total, trials as u64))
}

fn scale_stats(mut s: PacerStats, by: u64) -> PacerStats {
    s.joins.sampling_slow /= by;
    s.joins.sampling_fast /= by;
    s.joins.non_sampling_slow /= by;
    s.joins.non_sampling_fast /= by;
    s.copies.sampling_deep /= by;
    s.copies.sampling_shallow /= by;
    s.copies.non_sampling_deep /= by;
    s.copies.non_sampling_shallow /= by;
    s.reads.sampling_slow /= by;
    s.reads.non_sampling_slow /= by;
    s.reads.non_sampling_fast /= by;
    s.writes.sampling_slow /= by;
    s.writes.non_sampling_slow /= by;
    s.writes.non_sampling_fast /= by;
    s.cow_clones /= by;
    s.sample_periods /= by;
    s.sampled_sync_ops /= by;
    s.unsampled_sync_ops /= by;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_workloads::{hsqldb, pseudojbb, Scale};

    #[test]
    fn effective_rate_tracks_specified_rate() {
        let program = hsqldb(Scale::Small).compiled();
        let row = effective_rates(&program, 0.25, 4, 9).unwrap();
        assert!(
            (0.10..0.45).contains(&row.mean),
            "mean effective rate {} far from 0.25",
            row.mean
        );
        assert!(row.std_dev < 0.25);
    }

    #[test]
    fn thread_counts_flow_through() {
        let w = pseudojbb(Scale::Test);
        let program = w.compiled();
        let census = RaceCensus::collect(&program, 4, 0).unwrap();
        let row = threads_and_races(&program, &census, 0).unwrap();
        assert_eq!(row.threads_total, w.threads_total);
        assert!(row.races_ge1 >= row.races_ge5);
        assert!(row.races_ge5 >= row.races_ge_half);
        assert!(row.races_ge_half > 0);
    }

    #[test]
    fn operation_counts_show_fast_non_sampling_periods() {
        // §5.4's headline: non-sampling joins are almost entirely fast and
        // non-sampling copies almost entirely shallow. Long-lived workers
        // (xalan) converge hard; the session-churning hsqldb keeps paying
        // first-communication joins and converges less tightly.
        let program = pacer_workloads::xalan(Scale::Small).compiled();
        let stats = operation_counts(&program, 0.03, 3, 5).unwrap();
        let frac = stats.non_sampling_fast_join_fraction().unwrap();
        // Each sampling period refreshes every thread's version (sbegin),
        // forcing one round of re-mixing; with our scaled-down windows that
        // keeps the fraction a bit below the paper's ~99.9%.
        assert!(frac > 0.8, "xalan non-sampling fast-join fraction {frac}");
        assert_eq!(stats.copies.non_sampling_deep, 0);
        assert!(stats.reads.non_sampling_fast > stats.reads.non_sampling_slow);

        let program = hsqldb(Scale::Small).compiled();
        let stats = operation_counts(&program, 0.03, 3, 5).unwrap();
        // hsqldb's constant session churn plus per-period version
        // refreshes makes it the least-converging workload (it is also the
        // paper's lowest ratio). The fraction grows with window size; our
        // scaled-down windows keep it just above half.
        let frac = stats.non_sampling_fast_join_fraction().unwrap();
        assert!(frac > 0.5, "hsqldb non-sampling fast-join fraction {frac}");
    }
}
